//! The long-lived admission engine: batched request application,
//! dirty-island re-analysis, warm-started fixpoints, transactional rollback.

use crate::dirty::Islands;
use crate::request::{AdmissionRequest, EpochOutcome, RejectReason, Verdict};
use hsched_analysis::{
    analyze_resumed, parallel_map, AnalysisConfig, SchedulabilityReport, TaskResult,
    TransactionVerdict, WarmStart,
};
use hsched_model::{ComponentInstance, NodeId, System, SystemBuilder};
use hsched_numeric::{Rational, Time};
use hsched_platform::{Platform, PlatformId, PlatformSet, ServiceModel};
use hsched_supply::BoundedDelay;
use hsched_transaction::{flatten_annotated, FlattenOptions, TransactionSet};
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Tuning knobs of the controller. The defaults enable every optimization;
/// benchmarks and the equivalence tests switch individual layers off to
/// measure and validate them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AdmissionPolicy {
    /// Re-analyze only the interference islands a batch touches. Off =
    /// every commit re-analyzes the full system (the from-scratch baseline).
    pub dirty_tracking: bool,
    /// Resume the holistic fixpoint from the previous epoch's converged
    /// jitters when the batch is purely additive (exact; see
    /// [`WarmStart`]).
    pub warm_start: bool,
    /// Reject on the necessary condition `U_k ≤ α_k` before running any
    /// fixpoint (uses checked arithmetic, so hostile magnitudes reject
    /// instead of panicking).
    pub utilization_precheck: bool,
    /// Worker threads for analyzing independent dirty islands in parallel
    /// (`0` = all cores, `1` = sequential). Within an island the analysis
    /// itself runs single-threaded; islands are the parallel grain.
    pub island_threads: usize,
    /// When flattening an [`AdmissionRequest::AddInstance`], also generate
    /// sporadic transactions for unbound provided methods (the external
    /// service surface), mirroring `FlattenOptions::external_stimuli`.
    pub external_stimuli: bool,
}

impl Default for AdmissionPolicy {
    fn default() -> AdmissionPolicy {
        AdmissionPolicy {
            dirty_tracking: true,
            warm_start: true,
            utilization_precheck: true,
            island_threads: 0,
            external_stimuli: true,
        }
    }
}

/// Counters accumulated over the controller's lifetime.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ControllerStats {
    /// Commits processed (admitted + rejected).
    pub epochs: u64,
    /// Batches admitted.
    pub admitted: u64,
    /// Batches rejected.
    pub rejected: u64,
    /// Transactions re-analyzed across all epochs.
    pub transactions_analyzed: u64,
    /// Transactions whose cached results were reused (the incremental win).
    pub analyses_avoided: u64,
    /// Epochs in which at least one island warm-started.
    pub warm_epochs: u64,
}

/// Cached per-transaction analysis outcome, index-aligned with the set.
#[derive(Debug, Clone, PartialEq)]
struct TxOutcome {
    tasks: Vec<TaskResult>,
    verdict: TransactionVerdict,
    converged: bool,
    bounded: bool,
}

/// Book-keeping carried alongside each live transaction.
#[derive(Debug, Clone, PartialEq)]
struct Entry {
    /// The component instance that spawned this transaction (instance-level
    /// requests), or `None` for bare transaction-level arrivals.
    origin: Option<String>,
    /// Analysis outcome; always `Some` between commits.
    outcome: Option<TxOutcome>,
}

/// A long-lived, stateful online admission engine.
///
/// The controller owns the live [`TransactionSet`] (and a component-level
/// [`System`] mirror for instance requests). Each [`commit`] applies a batch
/// of [`AdmissionRequest`]s, re-analyzes exactly the interference islands
/// the batch touches (warm-starting purely additive batches from the
/// previous fixpoint), and either admits the batch or rolls the state back
/// byte-identically.
///
/// See the crate docs for the full lifecycle.
///
/// [`commit`]: AdmissionController::commit
#[derive(Debug, Clone)]
pub struct AdmissionController {
    set: TransactionSet,
    system: System,
    config: AnalysisConfig,
    policy: AdmissionPolicy,
    entries: Vec<Entry>,
    epoch: u64,
    stats: ControllerStats,
}

impl AdmissionController {
    /// Starts a controller over an already-flattened transaction set,
    /// running one full analysis to seed the cache. The initial system may
    /// be unschedulable — the controller reports it faithfully, and only
    /// batches whose *post-state* is schedulable are admitted.
    pub fn new(
        set: TransactionSet,
        config: AnalysisConfig,
        policy: AdmissionPolicy,
    ) -> Result<AdmissionController, String> {
        let mut controller = AdmissionController {
            entries: set
                .transactions()
                .iter()
                .map(|_| Entry {
                    origin: None,
                    outcome: None,
                })
                .collect(),
            set,
            system: System::default(),
            config,
            policy,
            epoch: 0,
            stats: ControllerStats::default(),
        };
        // Seed per island, not as one big group: `absorb` stores the
        // report's converged/diverged flags into every member entry, so a
        // whole-system seed would poison clean islands with another
        // island's divergence (wedging later commits that heal it).
        let all_platforms: Vec<PlatformId> = (0..controller.set.platforms().len())
            .map(PlatformId)
            .collect();
        let mut islands = Islands::of(&controller.set);
        let groups = islands.dirty_groups(&controller.set, &all_platforms);
        let inputs: Vec<GroupInput> = groups
            .iter()
            .map(|group| controller.group_input(group, false))
            .collect();
        let results = parallel_map(&inputs, controller.policy.island_threads, |input| {
            controller.guarded_analyze(input)
        });
        for (input, result) in inputs.iter().zip(results) {
            let report = result.map_err(|r| format!("initial analysis failed: {r}"))?;
            controller.absorb(&input.indices, &report);
        }
        Ok(controller)
    }

    /// Starts a controller from a component system, flattening it and
    /// remembering which instance originated each transaction (so those
    /// instances can later depart via
    /// [`AdmissionRequest::RemoveInstance`]).
    pub fn from_system(
        system: System,
        platforms: PlatformSet,
        config: AnalysisConfig,
        policy: AdmissionPolicy,
    ) -> Result<AdmissionController, String> {
        let options = FlattenOptions {
            external_stimuli: policy.external_stimuli,
        };
        let (set, origins) =
            flatten_annotated(&system, &platforms, options).map_err(|e| e.to_string())?;
        let mut controller = AdmissionController::new(set, config, policy)?;
        for (entry, origin) in controller.entries.iter_mut().zip(origins) {
            entry.origin = Some(system.instances[origin.0].name.clone());
        }
        controller.system = system;
        Ok(controller)
    }

    /// The live transaction set.
    pub fn current_set(&self) -> &TransactionSet {
        &self.set
    }

    /// The component-level mirror (instances added/removed via requests).
    pub fn system(&self) -> &System {
        &self.system
    }

    /// Epochs committed so far.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Lifetime counters.
    pub fn stats(&self) -> ControllerStats {
        self.stats
    }

    /// `true` when every live transaction meets its deadline under the
    /// cached converged analysis.
    pub fn schedulable(&self) -> bool {
        self.entries.iter().all(|e| {
            e.outcome
                .as_ref()
                .is_some_and(|o| o.verdict.schedulable && o.converged && o.bounded)
        })
    }

    /// Assembles the current cached state into a full
    /// [`SchedulabilityReport`]. The report's iteration trace is empty (the
    /// numbers come from per-island analyses at different epochs).
    ///
    /// Whenever the live state is schedulable — which every admitted epoch
    /// guarantees — the per-task responses, jitters and verdicts are
    /// exactly those a from-scratch [`hsched_analysis::analyze_with`] of
    /// [`Self::current_set`] would produce (the property tests enforce
    /// this). If the controller was *seeded* with a system containing a
    /// divergent island, verdicts stay island-local and therefore finer
    /// than the offline analysis, whose global iteration bails out at the
    /// first divergence and marks even unaffected transactions
    /// unschedulable; the report-level `converged`/`diverged` flags agree
    /// in both views.
    pub fn report(&self) -> SchedulabilityReport {
        let mut tasks = Vec::with_capacity(self.entries.len());
        let mut verdicts = Vec::with_capacity(self.entries.len());
        let mut converged = true;
        let mut diverged = false;
        for entry in &self.entries {
            let outcome = entry.outcome.as_ref().expect("outcome cached at rest");
            tasks.push(outcome.tasks.clone());
            verdicts.push(outcome.verdict.clone());
            converged &= outcome.converged;
            diverged |= !outcome.bounded;
        }
        SchedulabilityReport {
            tasks,
            verdicts,
            trace: Vec::new(),
            converged,
            diverged,
        }
    }

    /// Submits a single request as its own epoch.
    pub fn admit(&mut self, request: AdmissionRequest) -> EpochOutcome {
        self.commit(std::slice::from_ref(&request))
    }

    /// Applies a batch of requests as one epoch: all requests are applied,
    /// the affected interference islands are re-analyzed (in parallel, warm
    /// where exact), and the batch is admitted iff the post-change system
    /// is schedulable. On any rejection the controller's state is restored
    /// byte-identically.
    pub fn commit(&mut self, batch: &[AdmissionRequest]) -> EpochOutcome {
        self.epoch += 1;
        self.stats.epochs += 1;
        let snapshot = (self.set.clone(), self.system.clone(), self.entries.clone());
        let additive = batch.iter().all(AdmissionRequest::is_additive);

        let mut seeds: Vec<PlatformId> = Vec::new();
        for request in batch {
            if let Err(message) = self.apply(request, &mut seeds) {
                return self.reject(snapshot, batch, RejectReason::Structural(message));
            }
        }

        if self.policy.utilization_precheck {
            match self.checked_overload() {
                Ok(overloaded) if !overloaded.is_empty() => {
                    return self.reject(
                        snapshot,
                        batch,
                        RejectReason::Overload {
                            platforms: overloaded,
                        },
                    );
                }
                Err(message) => {
                    return self.reject(snapshot, batch, RejectReason::Numeric(message));
                }
                Ok(_) => {}
            }
        }

        let groups: Vec<Vec<usize>> = if self.policy.dirty_tracking {
            Islands::of(&self.set).dirty_groups(&self.set, &seeds)
        } else if self.set.transactions().is_empty() {
            Vec::new()
        } else {
            vec![(0..self.set.transactions().len()).collect()]
        };
        let analyzed: usize = groups.iter().map(Vec::len).sum();
        let total = self.set.transactions().len();
        let islands = groups.len();

        let inputs: Vec<GroupInput> = groups
            .iter()
            .map(|group| self.group_input(group, additive && self.policy.warm_start))
            .collect();
        let warm_started = inputs.iter().any(|input| input.warm.is_some());
        let results: Vec<Result<SchedulabilityReport, RejectReason>> =
            parallel_map(&inputs, self.policy.island_threads, |input| {
                self.guarded_analyze(input)
            });

        for (input, result) in inputs.iter().zip(results) {
            match result {
                Ok(report) => self.absorb(&input.indices, &report),
                Err(reason) => return self.reject(snapshot, batch, reason),
            }
        }

        self.stats.transactions_analyzed += analyzed as u64;
        self.stats.analyses_avoided += (total - analyzed) as u64;
        if warm_started {
            self.stats.warm_epochs += 1;
        }

        let misses: Vec<String> = self
            .entries
            .iter()
            .filter_map(|e| {
                let o = e.outcome.as_ref().expect("outcome cached after absorb");
                (!(o.verdict.schedulable && o.converged && o.bounded))
                    .then(|| o.verdict.name.clone())
            })
            .collect();
        if !misses.is_empty() {
            let mut outcome = self.reject(snapshot, batch, RejectReason::Unschedulable { misses });
            // The fixpoints did run before the verdict turned the batch away;
            // report the work (and the post-application population it ran
            // over) even though the state was rolled back.
            outcome.analyzed_transactions = analyzed;
            outcome.total_transactions = total;
            outcome.islands = islands;
            outcome.warm_started = warm_started;
            return outcome;
        }

        self.stats.admitted += 1;
        EpochOutcome {
            epoch: self.epoch,
            verdict: Verdict::Admitted,
            requests: batch.len(),
            analyzed_transactions: analyzed,
            total_transactions: total,
            islands,
            warm_started,
        }
    }

    /// Applies one request to the live state, recording the platforms whose
    /// islands become dirty. Errors leave partially applied state behind —
    /// the caller rolls back from its snapshot.
    fn apply(
        &mut self,
        request: &AdmissionRequest,
        seeds: &mut Vec<PlatformId>,
    ) -> Result<(), String> {
        match request {
            AdmissionRequest::AddTransaction(tx) => {
                if self.set.transaction_index(&tx.name).is_some() {
                    return Err(format!("transaction `{}` already live", tx.name));
                }
                seeds.extend(tx.tasks().iter().map(|t| t.platform));
                self.set.push_transaction(tx.clone())?;
                self.entries.push(Entry {
                    origin: None,
                    outcome: None,
                });
                Ok(())
            }
            AdmissionRequest::RemoveTransaction { name } => {
                let index = self
                    .set
                    .transaction_index(name)
                    .ok_or_else(|| format!("no transaction named `{name}`"))?;
                if let Some(instance) = &self.entries[index].origin {
                    return Err(format!(
                        "transaction `{name}` belongs to instance `{instance}`; remove the instance"
                    ));
                }
                let removed = self.set.remove_transaction(index)?;
                seeds.extend(removed.tasks().iter().map(|t| t.platform));
                self.entries.remove(index);
                Ok(())
            }
            AdmissionRequest::Retune {
                platform,
                alpha,
                delta,
                beta,
            } => {
                let current = self
                    .set
                    .platforms()
                    .get(*platform)
                    .ok_or_else(|| format!("platform {platform} out of range"))?;
                let model = BoundedDelay::new(*alpha, *delta, *beta)?;
                let retuned = Platform::new(
                    current.name().to_string(),
                    current.kind(),
                    ServiceModel::Linear(model),
                );
                self.set.replace_platform(*platform, retuned)?;
                seeds.push(*platform);
                Ok(())
            }
            AdmissionRequest::AddInstance {
                name,
                class,
                platform,
                node,
            } => {
                if self.system.instance_by_name(name).is_some() {
                    return Err(format!("instance `{name}` already live"));
                }
                if !class.required.is_empty() {
                    return Err(format!(
                        "class `{}` has required methods; only self-contained classes \
                         can be admitted as single instances",
                        class.name
                    ));
                }
                if self.set.platforms().get(*platform).is_none() {
                    return Err(format!("platform {platform} out of range"));
                }
                let mut builder = SystemBuilder::new();
                let class_idx = builder.add_class(class.clone());
                builder.instantiate(name.clone(), class_idx, *platform, *node);
                let staged = builder.build();
                let options = FlattenOptions {
                    external_stimuli: self.policy.external_stimuli,
                };
                let (subset, _) = flatten_annotated(&staged, self.set.platforms(), options)
                    .map_err(|e| e.to_string())?;
                for tx in subset.transactions() {
                    if self.set.transaction_index(&tx.name).is_some() {
                        return Err(format!("transaction `{}` already live", tx.name));
                    }
                }
                for tx in subset.transactions() {
                    seeds.extend(tx.tasks().iter().map(|t| t.platform));
                    self.set.push_transaction(tx.clone())?;
                    self.entries.push(Entry {
                        origin: Some(name.clone()),
                        outcome: None,
                    });
                }
                // Reuse a structurally identical class so instance churn
                // (add/remove/add …) does not grow the class list without
                // bound in a long-lived controller.
                let class_idx = self
                    .system
                    .classes
                    .iter()
                    .position(|existing| existing == class)
                    .unwrap_or_else(|| {
                        self.system.classes.push(class.clone());
                        self.system.classes.len() - 1
                    });
                self.system.instances.push(ComponentInstance {
                    name: name.clone(),
                    class: class_idx,
                    platform: *platform,
                    node: NodeId(*node),
                });
                Ok(())
            }
            AdmissionRequest::RemoveInstance { name } => {
                self.system.remove_instance_by_name(name)?;
                let mut index = 0;
                while index < self.entries.len() {
                    if self.entries[index].origin.as_deref() == Some(name.as_str()) {
                        let removed = self.set.remove_transaction(index)?;
                        seeds.extend(removed.tasks().iter().map(|t| t.platform));
                        self.entries.remove(index);
                    } else {
                        index += 1;
                    }
                }
                Ok(())
            }
        }
    }

    /// Necessary-condition check `U_k ≤ α_k` with fallible arithmetic:
    /// hostile magnitudes surface as an `Err` (→ numeric rejection) instead
    /// of a panic.
    fn checked_overload(&self) -> Result<Vec<String>, String> {
        let platforms = self.set.platforms();
        let mut utilization = vec![Rational::ZERO; platforms.len()];
        for tx in self.set.transactions() {
            for task in tx.tasks() {
                let u = task.wcet.try_div(tx.period).map_err(|e| e.to_string())?;
                let k = task.platform.0;
                utilization[k] = utilization[k].try_add(u).map_err(|e| e.to_string())?;
            }
        }
        Ok(utilization
            .iter()
            .enumerate()
            .filter(|(k, &u)| u > platforms[PlatformId(*k)].alpha())
            .map(|(k, _)| platforms[PlatformId(k)].name().to_string())
            .collect())
    }

    /// Builds the island sub-problem: the member transactions over the full
    /// platform set, plus a warm-start seed when every retained member's
    /// cached fixpoint converged (new members seed at zero, which is the
    /// cold value — mixing is still exact, see [`WarmStart`]).
    fn group_input(&self, indices: &[usize], warm: bool) -> GroupInput {
        let transactions = indices
            .iter()
            .map(|&i| self.set.transactions()[i].clone())
            .collect();
        let sub = TransactionSet::new(self.set.platforms().clone(), transactions)
            .expect("island members reference live platforms");
        let warm = if warm {
            let all_converged = indices.iter().all(|&i| match &self.entries[i].outcome {
                Some(outcome) => outcome.converged && outcome.bounded,
                None => true, // new arrival: cold coordinate
            });
            all_converged.then(|| WarmStart {
                jitters: indices
                    .iter()
                    .map(|&i| match &self.entries[i].outcome {
                        Some(outcome) => outcome.tasks.iter().map(|t| t.jitter).collect(),
                        None => vec![Time::ZERO; self.set.transactions()[i].len()],
                    })
                    .collect(),
            })
        } else {
            None
        };
        GroupInput {
            indices: indices.to_vec(),
            set: sub,
            warm,
        }
    }

    /// Runs one island's analysis, converting panics (exact-arithmetic
    /// overflow on hostile workloads) and analysis errors into rejection
    /// reasons. Islands run single-threaded internally; `commit`
    /// parallelizes across islands.
    fn guarded_analyze(&self, input: &GroupInput) -> Result<SchedulabilityReport, RejectReason> {
        let config = AnalysisConfig {
            threads: 1,
            ..self.config.clone()
        };
        install_quiet_panic_hook();
        SUPPRESS_PANIC_OUTPUT.set(true);
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            analyze_resumed(&input.set, &config, input.warm.as_ref())
        }));
        SUPPRESS_PANIC_OUTPUT.set(false);
        match outcome {
            Ok(Ok(report)) => Ok(report),
            Ok(Err(error)) => Err(RejectReason::Analysis(error.to_string())),
            Err(payload) => Err(RejectReason::Numeric(panic_message(payload.as_ref()))),
        }
    }

    /// Writes an island report back into the per-transaction cache.
    fn absorb(&mut self, indices: &[usize], report: &SchedulabilityReport) {
        for (pos, &index) in indices.iter().enumerate() {
            self.entries[index].outcome = Some(TxOutcome {
                tasks: report.tasks[pos].clone(),
                verdict: report.verdicts[pos].clone(),
                converged: report.converged,
                bounded: !report.diverged,
            });
        }
    }

    fn reject(
        &mut self,
        snapshot: (TransactionSet, System, Vec<Entry>),
        batch: &[AdmissionRequest],
        reason: RejectReason,
    ) -> EpochOutcome {
        let total = snapshot.0.transactions().len();
        (self.set, self.system, self.entries) = snapshot;
        self.stats.rejected += 1;
        EpochOutcome {
            epoch: self.epoch,
            verdict: Verdict::Rejected(reason),
            requests: batch.len(),
            analyzed_transactions: 0,
            total_transactions: total,
            islands: 0,
            warm_started: false,
        }
    }
}

/// One island's analysis job, prepared under `&self` so islands can run in
/// parallel worker threads.
struct GroupInput {
    indices: Vec<usize>,
    set: TransactionSet,
    warm: Option<WarmStart>,
}

thread_local! {
    /// Set while this thread's panic is expected and will be converted to a
    /// rejection — the hook below then swallows the default stderr report.
    static SUPPRESS_PANIC_OUTPUT: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

/// Installs (once, process-wide) a panic hook that forwards to the previous
/// hook except for panics the admission engine is about to catch and turn
/// into [`RejectReason::Numeric`] — a long-lived controller must not spray
/// a backtrace to stderr for every hostile request it gracefully rejects.
fn install_quiet_panic_hook() {
    static HOOK: std::sync::Once = std::sync::Once::new();
    HOOK.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if !SUPPRESS_PANIC_OUTPUT.get() {
                previous(info);
            }
        }));
    });
}

/// Best-effort extraction of a panic payload's message.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else {
        "analysis panicked".to_string()
    }
}
