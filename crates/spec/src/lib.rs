//! The `.hsc` component specification language — a concrete syntax for the
//! paper's pseudo object-oriented notation (Figures 1 and 2).
//!
//! A specification declares component classes, platforms, instances, and
//! bindings:
//!
//! ```text
//! class SensorReading {
//!     provided read() mit 50;
//!     thread Thread1 periodic period 15 priority 2 {
//!         task acquire wcet 1 bcet 0.25;
//!     }
//!     thread Thread2 realizes read priority 1 {
//!         task serve_read wcet 1 bcet 0.8;
//!     }
//! }
//!
//! platform Pi1 cpu alpha 0.4 delta 1 beta 1;
//! instance Sensor1 : SensorReading on Pi1 node 0;
//! bind Integrator.readSensor1 -> Sensor1.read;
//! ```
//!
//! [`parse_str`] produces a ([`System`], [`PlatformSet`]) pair ready for
//! validation and flattening; [`to_source`] pretty-prints a system back to
//! the language (round-trip tested).
//!
//! The grammar (EBNF-ish):
//!
//! ```text
//! spec      := item*
//! item      := class | platform | instance | bind
//! class     := "class" IDENT "{" member* "}"
//! member    := "provided" IDENT "(" ")" "mit" NUM ";"
//!            | "required" IDENT "(" ")" [ "mit" NUM ] ";"
//!            | "scheduler" ("fixed_priority" | "edf") ";"
//!            | thread
//! thread    := "thread" IDENT activation "priority" INT "{" action* "}"
//! activation:= "periodic" "period" NUM [ "deadline" NUM ]
//!            | "realizes" IDENT
//! action    := "task" IDENT "wcet" NUM [ "bcet" NUM ] ";"
//!            | "call" IDENT ";"
//! platform  := "platform" IDENT ("cpu" | "network") backing ";"
//! backing   := "alpha" NUM "delta" NUM "beta" NUM
//!            | "server" "budget" NUM "period" NUM
//! instance  := "instance" IDENT ":" IDENT "on" IDENT "node" INT ";"
//! bind      := "bind" IDENT "." IDENT "->" IDENT "." IDENT [ via ] ";"
//! via       := "via" IDENT "priority" INT
//!              "request" "wcet" NUM "bcet" NUM
//!              "response" "wcet" NUM "bcet" NUM
//! ```
//!
//! Numbers are decimal (`2.5`) or fractional (`5/2`), parsed exactly.
//! Comments run from `//` to end of line.

mod lexer;
mod parser;
mod printer;

pub use lexer::{Lexer, Token, TokenKind};
pub use parser::{parse_str, ParseError};
pub use printer::to_source;

use hsched_model::System;
use hsched_platform::PlatformSet;

/// Parses and validates in one step, turning validation errors into
/// [`ParseError`]s carrying the full message list.
pub fn parse_and_validate(source: &str) -> Result<(System, PlatformSet), ParseError> {
    let (system, platforms) = parse_str(source)?;
    let report = system.validate();
    if !report.is_ok() {
        let msgs: Vec<String> = report.errors.iter().map(|e| e.to_string()).collect();
        return Err(ParseError::semantic(format!(
            "specification is inconsistent:\n  {}",
            msgs.join("\n  ")
        )));
    }
    Ok((system, platforms))
}

#[cfg(test)]
mod roundtrip_tests {
    use super::*;

    const PAPER: &str = r#"
// The paper's Figure 1 + Figure 2 system.
class SensorReading {
    provided read() mit 50;
    thread Thread1 periodic period 15 priority 2 {
        task acquire wcet 1 bcet 0.25;
    }
    thread Thread2 realizes read priority 1 {
        task serve_read wcet 1 bcet 0.8;
    }
}

class SensorIntegration {
    provided read() mit 70;
    required readSensor1();
    required readSensor2();
    thread Thread1 realizes read priority 1 {
        task serve_read wcet 7 bcet 5;
    }
    thread Thread2 periodic period 50 priority 2 {
        task init wcet 1 bcet 0.8;
        call readSensor1;
        call readSensor2;
        task compute wcet 1 bcet 0.8;
    }
}

platform Pi1 cpu alpha 0.4 delta 1 beta 1;
platform Pi2 cpu alpha 0.4 delta 1 beta 1;
platform Pi3 cpu alpha 0.2 delta 2 beta 1;

instance Sensor1 : SensorReading on Pi1 node 0;
instance Sensor2 : SensorReading on Pi2 node 0;
instance Integrator : SensorIntegration on Pi3 node 0;

bind Integrator.readSensor1 -> Sensor1.read;
bind Integrator.readSensor2 -> Sensor2.read;
"#;

    #[test]
    fn paper_spec_parses_and_validates() {
        let (system, platforms) = parse_and_validate(PAPER).unwrap();
        assert_eq!(system.classes.len(), 2);
        assert_eq!(system.instances.len(), 3);
        assert_eq!(system.bindings.len(), 2);
        assert_eq!(platforms.len(), 3);
    }

    #[test]
    fn paper_spec_flattens_like_the_builder_version() {
        use hsched_transaction::{flatten, FlattenOptions};
        let (system, platforms) = parse_and_validate(PAPER).unwrap();
        let set = flatten(&system, &platforms, FlattenOptions::default()).unwrap();
        assert_eq!(set.transactions().len(), 4);
        let names: Vec<&str> = set.transactions().iter().map(|t| t.name.as_str()).collect();
        assert!(names.contains(&"Integrator.Thread2"));
        assert!(names.contains(&"Integrator.read"));
    }

    #[test]
    fn print_parse_roundtrip() {
        let (system, platforms) = parse_str(PAPER).unwrap();
        let printed = to_source(&system, &platforms);
        let (system2, platforms2) = parse_str(&printed).unwrap();
        assert_eq!(system, system2, "system round-trip");
        assert_eq!(platforms, platforms2, "platforms round-trip");
    }
}
