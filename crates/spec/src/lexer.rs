//! Tokenizer for the `.hsc` language.

use hsched_numeric::Rational;
use std::fmt;

/// Token classes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (`class`, `SensorReading`, …).
    Ident(String),
    /// Exact number (`15`, `0.25`, `5/2`).
    Number(Rational),
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `;`
    Semi,
    /// `:`
    Colon,
    /// `.`
    Dot,
    /// `->`
    Arrow,
    /// End of input.
    Eof,
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenKind::Ident(s) => write!(f, "`{s}`"),
            TokenKind::Number(n) => write!(f, "number {n}"),
            TokenKind::LBrace => write!(f, "`{{`"),
            TokenKind::RBrace => write!(f, "`}}`"),
            TokenKind::LParen => write!(f, "`(`"),
            TokenKind::RParen => write!(f, "`)`"),
            TokenKind::Semi => write!(f, "`;`"),
            TokenKind::Colon => write!(f, "`:`"),
            TokenKind::Dot => write!(f, "`.`"),
            TokenKind::Arrow => write!(f, "`->`"),
            TokenKind::Eof => write!(f, "end of input"),
        }
    }
}

/// A token with its source position (1-based).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// Kind and payload.
    pub kind: TokenKind,
    /// Line number, starting at 1.
    pub line: u32,
    /// Column number, starting at 1.
    pub col: u32,
}

/// Streaming tokenizer.
pub struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
    col: u32,
}

impl<'a> Lexer<'a> {
    /// Creates a lexer over the source text.
    pub fn new(source: &'a str) -> Lexer<'a> {
        Lexer {
            src: source.as_bytes(),
            pos: 0,
            line: 1,
            col: 1,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(b)
    }

    fn skip_trivia(&mut self) {
        loop {
            match self.peek() {
                Some(b) if b.is_ascii_whitespace() => {
                    self.bump();
                }
                Some(b'/') if self.src.get(self.pos + 1) == Some(&b'/') => {
                    while let Some(b) = self.peek() {
                        if b == b'\n' {
                            break;
                        }
                        self.bump();
                    }
                }
                _ => break,
            }
        }
    }

    /// Produces the next token, or an error message with position.
    pub fn next_token(&mut self) -> Result<Token, (String, u32, u32)> {
        self.skip_trivia();
        let (line, col) = (self.line, self.col);
        let Some(b) = self.peek() else {
            return Ok(Token {
                kind: TokenKind::Eof,
                line,
                col,
            });
        };
        let kind = match b {
            b'{' => {
                self.bump();
                TokenKind::LBrace
            }
            b'}' => {
                self.bump();
                TokenKind::RBrace
            }
            b'(' => {
                self.bump();
                TokenKind::LParen
            }
            b')' => {
                self.bump();
                TokenKind::RParen
            }
            b';' => {
                self.bump();
                TokenKind::Semi
            }
            b':' => {
                self.bump();
                TokenKind::Colon
            }
            b'.' if !self
                .src
                .get(self.pos + 1)
                .is_some_and(|c| c.is_ascii_digit()) =>
            {
                self.bump();
                TokenKind::Dot
            }
            b'-' if self.src.get(self.pos + 1) == Some(&b'>') => {
                self.bump();
                self.bump();
                TokenKind::Arrow
            }
            b if b.is_ascii_digit() || b == b'.' => {
                let start = self.pos;
                while let Some(c) = self.peek() {
                    if c.is_ascii_digit() || c == b'.' || c == b'/' {
                        // A `/` only continues the number if a digit follows
                        // (so `5/2` lexes as one number but `a/b` won't
                        // arise — identifiers can't contain `/` anyway).
                        if c == b'/'
                            && !self
                                .src
                                .get(self.pos + 1)
                                .is_some_and(|d| d.is_ascii_digit())
                        {
                            break;
                        }
                        self.bump();
                    } else {
                        break;
                    }
                }
                let text = std::str::from_utf8(&self.src[start..self.pos]).expect("ascii slice");
                match text.parse::<Rational>() {
                    Ok(n) => TokenKind::Number(n),
                    Err(e) => return Err((format!("bad number `{text}`: {e}"), line, col)),
                }
            }
            b if b.is_ascii_alphabetic() || b == b'_' => {
                let start = self.pos;
                while let Some(c) = self.peek() {
                    if c.is_ascii_alphanumeric() || c == b'_' {
                        self.bump();
                    } else {
                        break;
                    }
                }
                let text = std::str::from_utf8(&self.src[start..self.pos])
                    .expect("ascii slice")
                    .to_string();
                TokenKind::Ident(text)
            }
            other => {
                return Err((
                    format!("unexpected character `{}`", other as char),
                    line,
                    col,
                ))
            }
        };
        Ok(Token { kind, line, col })
    }

    /// Tokenizes the whole input.
    pub fn tokenize(mut self) -> Result<Vec<Token>, (String, u32, u32)> {
        let mut out = Vec::new();
        loop {
            let tok = self.next_token()?;
            let eof = tok.kind == TokenKind::Eof;
            out.push(tok);
            if eof {
                return Ok(out);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hsched_numeric::rat;

    fn kinds(src: &str) -> Vec<TokenKind> {
        Lexer::new(src)
            .tokenize()
            .unwrap()
            .into_iter()
            .map(|t| t.kind)
            .collect()
    }

    #[test]
    fn basic_tokens() {
        assert_eq!(
            kinds("class X { }"),
            vec![
                TokenKind::Ident("class".into()),
                TokenKind::Ident("X".into()),
                TokenKind::LBrace,
                TokenKind::RBrace,
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn numbers_exact() {
        assert_eq!(
            kinds("15 0.25 5/2"),
            vec![
                TokenKind::Number(rat(15, 1)),
                TokenKind::Number(rat(1, 4)),
                TokenKind::Number(rat(5, 2)),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn arrow_and_punctuation() {
        assert_eq!(
            kinds("a.b -> c.d;"),
            vec![
                TokenKind::Ident("a".into()),
                TokenKind::Dot,
                TokenKind::Ident("b".into()),
                TokenKind::Arrow,
                TokenKind::Ident("c".into()),
                TokenKind::Dot,
                TokenKind::Ident("d".into()),
                TokenKind::Semi,
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn comments_skipped() {
        assert_eq!(
            kinds("x // comment ; { }\ny"),
            vec![
                TokenKind::Ident("x".into()),
                TokenKind::Ident("y".into()),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn positions_tracked() {
        let toks = Lexer::new("a\n  b").tokenize().unwrap();
        assert_eq!((toks[0].line, toks[0].col), (1, 1));
        assert_eq!((toks[1].line, toks[1].col), (2, 3));
    }

    #[test]
    fn bad_character_reported() {
        let err = Lexer::new("a @ b").tokenize().unwrap_err();
        assert!(err.0.contains("unexpected character"));
        assert_eq!((err.1, err.2), (1, 3));
    }

    #[test]
    fn leading_dot_number() {
        assert_eq!(
            kinds(".5"),
            vec![TokenKind::Number(rat(1, 2)), TokenKind::Eof]
        );
    }
}
