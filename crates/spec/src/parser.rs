//! Recursive-descent parser building `hsched-model` structures.

use crate::lexer::{Lexer, Token, TokenKind};
use hsched_model::{
    Action, ComponentClass, LocalScheduler, ProvidedMethod, RequiredMethod, RpcLink, System,
    SystemBuilder, ThreadSpec,
};
use hsched_numeric::Rational;
use hsched_platform::{Platform, PlatformSet};
use std::collections::HashMap;
use std::fmt;

/// A parse (or post-parse resolution) failure with source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Human-readable message.
    pub message: String,
    /// 1-based line, 0 for semantic errors without a position.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
}

impl ParseError {
    pub(crate) fn semantic(message: String) -> ParseError {
        ParseError {
            message,
            line: 0,
            col: 0,
        }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line > 0 {
            write!(f, "{}:{}: {}", self.line, self.col, self.message)
        } else {
            write!(f, "{}", self.message)
        }
    }
}

impl std::error::Error for ParseError {}

/// Parses a complete `.hsc` specification.
pub fn parse_str(source: &str) -> Result<(System, PlatformSet), ParseError> {
    let tokens = Lexer::new(source)
        .tokenize()
        .map_err(|(message, line, col)| ParseError { message, line, col })?;
    Parser::new(tokens).parse()
}

/// A pending binding, resolved after all instances are known.
struct PendingBind {
    from_instance: String,
    required: String,
    to_instance: String,
    provided: String,
    link: Option<PendingLink>,
    line: u32,
    col: u32,
}

struct PendingLink {
    network: String,
    priority: u32,
    request: (Rational, Rational),
    response: (Rational, Rational),
}

struct PendingInstance {
    name: String,
    class: String,
    platform: String,
    node: usize,
    line: u32,
    col: u32,
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn new(tokens: Vec<Token>) -> Parser {
        Parser { tokens, pos: 0 }
    }

    fn peek(&self) -> &Token {
        &self.tokens[self.pos]
    }

    fn bump(&mut self) -> Token {
        let t = self.tokens[self.pos].clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn error<T>(&self, message: impl Into<String>) -> Result<T, ParseError> {
        let t = self.peek();
        Err(ParseError {
            message: message.into(),
            line: t.line,
            col: t.col,
        })
    }

    fn expect(&mut self, kind: &TokenKind) -> Result<Token, ParseError> {
        if &self.peek().kind == kind {
            Ok(self.bump())
        } else {
            self.error(format!("expected {kind}, found {}", self.peek().kind))
        }
    }

    fn ident(&mut self) -> Result<String, ParseError> {
        match &self.peek().kind {
            TokenKind::Ident(s) => {
                let s = s.clone();
                self.bump();
                Ok(s)
            }
            other => self.error(format!("expected identifier, found {other}")),
        }
    }

    /// Consumes the given keyword (an identifier with fixed spelling).
    fn keyword(&mut self, word: &str) -> Result<(), ParseError> {
        match &self.peek().kind {
            TokenKind::Ident(s) if s == word => {
                self.bump();
                Ok(())
            }
            other => self.error(format!("expected `{word}`, found {other}")),
        }
    }

    fn at_keyword(&self, word: &str) -> bool {
        matches!(&self.peek().kind, TokenKind::Ident(s) if s == word)
    }

    fn number(&mut self) -> Result<Rational, ParseError> {
        match &self.peek().kind {
            TokenKind::Number(n) => {
                let n = *n;
                self.bump();
                Ok(n)
            }
            other => self.error(format!("expected a number, found {other}")),
        }
    }

    fn integer(&mut self) -> Result<i128, ParseError> {
        let n = self.number()?;
        if !n.is_integer() {
            return self.error(format!("expected an integer, found {n}"));
        }
        Ok(n.numer())
    }

    fn parse(mut self) -> Result<(System, PlatformSet), ParseError> {
        let mut builder = SystemBuilder::new();
        let mut platforms = PlatformSet::new();
        let mut platform_ids = HashMap::new();
        let mut instances: Vec<PendingInstance> = Vec::new();
        let mut binds: Vec<PendingBind> = Vec::new();

        loop {
            match &self.peek().kind {
                TokenKind::Eof => break,
                TokenKind::Ident(word) => match word.as_str() {
                    "class" => {
                        let class = self.parse_class()?;
                        builder.add_class(class);
                    }
                    "platform" => {
                        let (name, platform) = self.parse_platform()?;
                        let id = platforms.add(platform);
                        platform_ids.insert(name, id);
                    }
                    "instance" => instances.push(self.parse_instance()?),
                    "bind" => binds.push(self.parse_bind()?),
                    other => {
                        return self.error(format!(
                            "expected `class`, `platform`, `instance` or `bind`, found `{other}`"
                        ))
                    }
                },
                other => {
                    return self.error(format!("expected a top-level declaration, found {other}"))
                }
            }
        }

        // Resolve instances.
        let mut instance_ids = HashMap::new();
        for inst in instances {
            let Some(class) = builder.class_by_name(&inst.class) else {
                return Err(ParseError {
                    message: format!("unknown class `{}`", inst.class),
                    line: inst.line,
                    col: inst.col,
                });
            };
            let Some(&platform) = platform_ids.get(&inst.platform) else {
                return Err(ParseError {
                    message: format!("unknown platform `{}`", inst.platform),
                    line: inst.line,
                    col: inst.col,
                });
            };
            let id = builder.instantiate(inst.name.clone(), class, platform, inst.node);
            instance_ids.insert(inst.name, id);
        }

        // Resolve bindings.
        for b in binds {
            let err = |msg: String| ParseError {
                message: msg,
                line: b.line,
                col: b.col,
            };
            let &from = instance_ids
                .get(&b.from_instance)
                .ok_or_else(|| err(format!("unknown instance `{}`", b.from_instance)))?;
            let &to = instance_ids
                .get(&b.to_instance)
                .ok_or_else(|| err(format!("unknown instance `{}`", b.to_instance)))?;
            match b.link {
                None => {
                    builder.bind(from, b.required, to, b.provided);
                }
                Some(link) => {
                    let &network = platform_ids
                        .get(&link.network)
                        .ok_or_else(|| err(format!("unknown platform `{}`", link.network)))?;
                    builder.bind_remote(
                        from,
                        b.required,
                        to,
                        b.provided,
                        RpcLink {
                            network,
                            request_wcet: link.request.0,
                            request_bcet: link.request.1,
                            response_wcet: link.response.0,
                            response_bcet: link.response.1,
                            priority: link.priority,
                        },
                    );
                }
            }
        }

        Ok((builder.build(), platforms))
    }

    fn parse_class(&mut self) -> Result<ComponentClass, ParseError> {
        self.keyword("class")?;
        let name = self.ident()?;
        let mut class = ComponentClass::new(name);
        self.expect(&TokenKind::LBrace)?;
        loop {
            if self.peek().kind == TokenKind::RBrace {
                self.bump();
                break;
            }
            match &self.peek().kind {
                TokenKind::Ident(word) => match word.as_str() {
                    "provided" => {
                        self.bump();
                        let m = self.ident()?;
                        self.expect(&TokenKind::LParen)?;
                        self.expect(&TokenKind::RParen)?;
                        self.keyword("mit")?;
                        let mit = self.number()?;
                        self.expect(&TokenKind::Semi)?;
                        class.provided.push(ProvidedMethod::new(m, mit));
                    }
                    "required" => {
                        self.bump();
                        let m = self.ident()?;
                        self.expect(&TokenKind::LParen)?;
                        self.expect(&TokenKind::RParen)?;
                        let method = if self.at_keyword("mit") {
                            self.bump();
                            let mit = self.number()?;
                            RequiredMethod::new(m, mit)
                        } else {
                            RequiredMethod::derived(m)
                        };
                        self.expect(&TokenKind::Semi)?;
                        class.required.push(method);
                    }
                    "scheduler" => {
                        self.bump();
                        let which = self.ident()?;
                        class.scheduler = match which.as_str() {
                            "fixed_priority" => LocalScheduler::FixedPriority,
                            "edf" => LocalScheduler::EarliestDeadlineFirst,
                            other => {
                                return self.error(format!(
                                    "unknown scheduler `{other}` (expected `fixed_priority` or `edf`)"
                                ))
                            }
                        };
                        self.expect(&TokenKind::Semi)?;
                    }
                    "thread" => {
                        let t = self.parse_thread()?;
                        class.threads.push(t);
                    }
                    other => {
                        return self.error(format!(
                            "expected `provided`, `required`, `scheduler`, `thread` or `}}`, found `{other}`"
                        ))
                    }
                },
                other => return self.error(format!("unexpected {other} in class body")),
            }
        }
        Ok(class)
    }

    fn parse_thread(&mut self) -> Result<ThreadSpec, ParseError> {
        self.keyword("thread")?;
        let name = self.ident()?;
        enum Act {
            Periodic(Rational, Option<Rational>),
            Realizes(String),
        }
        let activation = if self.at_keyword("periodic") {
            self.bump();
            self.keyword("period")?;
            let period = self.number()?;
            let deadline = if self.at_keyword("deadline") {
                self.bump();
                Some(self.number()?)
            } else {
                None
            };
            Act::Periodic(period, deadline)
        } else if self.at_keyword("realizes") {
            self.bump();
            Act::Realizes(self.ident()?)
        } else {
            return self.error(format!(
                "expected `periodic` or `realizes`, found {}",
                self.peek().kind
            ));
        };
        self.keyword("priority")?;
        let priority = self.integer()?;
        if priority < 0 || priority > u32::MAX as i128 {
            return self.error("priority out of range");
        }
        self.expect(&TokenKind::LBrace)?;
        let mut body = Vec::new();
        loop {
            if self.peek().kind == TokenKind::RBrace {
                self.bump();
                break;
            }
            if self.at_keyword("task") {
                self.bump();
                let tname = self.ident()?;
                self.keyword("wcet")?;
                let wcet = self.number()?;
                let bcet = if self.at_keyword("bcet") {
                    self.bump();
                    self.number()?
                } else {
                    wcet
                };
                self.expect(&TokenKind::Semi)?;
                body.push(Action::task(tname, wcet, bcet));
            } else if self.at_keyword("call") {
                self.bump();
                let m = self.ident()?;
                self.expect(&TokenKind::Semi)?;
                body.push(Action::call(m));
            } else {
                return self.error(format!(
                    "expected `task`, `call` or `}}`, found {}",
                    self.peek().kind
                ));
            }
        }
        Ok(match activation {
            Act::Periodic(period, Some(deadline)) => {
                ThreadSpec::periodic_with_deadline(name, period, deadline, priority as u32, body)
            }
            Act::Periodic(period, None) => {
                ThreadSpec::periodic(name, period, priority as u32, body)
            }
            Act::Realizes(m) => ThreadSpec::realizes(name, m, priority as u32, body),
        })
    }

    fn parse_platform(&mut self) -> Result<(String, Platform), ParseError> {
        self.keyword("platform")?;
        let name = self.ident()?;
        let kind = self.ident()?;
        let is_network = match kind.as_str() {
            "cpu" => false,
            "network" => true,
            other => return self.error(format!("expected `cpu` or `network`, found `{other}`")),
        };
        let platform = if self.at_keyword("alpha") {
            self.bump();
            let alpha = self.number()?;
            self.keyword("delta")?;
            let delta = self.number()?;
            self.keyword("beta")?;
            let beta = self.number()?;
            let result = if is_network {
                Platform::network(name.clone(), alpha, delta, beta)
            } else {
                Platform::linear(name.clone(), alpha, delta, beta)
            };
            match result {
                Ok(p) => p,
                Err(e) => return self.error(e),
            }
        } else if self.at_keyword("server") {
            self.bump();
            self.keyword("budget")?;
            let budget = self.number()?;
            self.keyword("period")?;
            let period = self.number()?;
            match Platform::server(name.clone(), budget, period) {
                Ok(p) => p,
                Err(e) => return self.error(e),
            }
        } else {
            return self.error(format!(
                "expected `alpha …` or `server …`, found {}",
                self.peek().kind
            ));
        };
        self.expect(&TokenKind::Semi)?;
        Ok((name, platform))
    }

    fn parse_instance(&mut self) -> Result<PendingInstance, ParseError> {
        let at = self.peek().clone();
        self.keyword("instance")?;
        let name = self.ident()?;
        self.expect(&TokenKind::Colon)?;
        let class = self.ident()?;
        self.keyword("on")?;
        let platform = self.ident()?;
        self.keyword("node")?;
        let node = self.integer()?;
        if node < 0 {
            return self.error("node index must be non-negative");
        }
        self.expect(&TokenKind::Semi)?;
        Ok(PendingInstance {
            name,
            class,
            platform,
            node: node as usize,
            line: at.line,
            col: at.col,
        })
    }

    fn parse_bind(&mut self) -> Result<PendingBind, ParseError> {
        let at = self.peek().clone();
        self.keyword("bind")?;
        let from_instance = self.ident()?;
        self.expect(&TokenKind::Dot)?;
        let required = self.ident()?;
        self.expect(&TokenKind::Arrow)?;
        let to_instance = self.ident()?;
        self.expect(&TokenKind::Dot)?;
        let provided = self.ident()?;
        let link = if self.at_keyword("via") {
            self.bump();
            let network = self.ident()?;
            self.keyword("priority")?;
            let priority = self.integer()?;
            if priority < 0 || priority > u32::MAX as i128 {
                return self.error("priority out of range");
            }
            self.keyword("request")?;
            self.keyword("wcet")?;
            let req_w = self.number()?;
            self.keyword("bcet")?;
            let req_b = self.number()?;
            self.keyword("response")?;
            self.keyword("wcet")?;
            let resp_w = self.number()?;
            self.keyword("bcet")?;
            let resp_b = self.number()?;
            Some(PendingLink {
                network,
                priority: priority as u32,
                request: (req_w, req_b),
                response: (resp_w, resp_b),
            })
        } else {
            None
        };
        self.expect(&TokenKind::Semi)?;
        Ok(PendingBind {
            from_instance,
            required,
            to_instance,
            provided,
            link,
            line: at.line,
            col: at.col,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hsched_numeric::rat;

    #[test]
    fn minimal_class() {
        let src = r#"
            class C {
                thread T periodic period 10 priority 1 {
                    task a wcet 1;
                }
            }
        "#;
        let (system, _) = parse_str(src).unwrap();
        assert_eq!(system.classes.len(), 1);
        let t = &system.classes[0].threads[0];
        assert!(t.is_periodic());
        // bcet defaults to wcet.
        match &t.body[0] {
            Action::Execute { wcet, bcet, .. } => {
                assert_eq!(wcet, bcet);
            }
            _ => panic!(),
        }
    }

    #[test]
    fn platform_kinds() {
        let src = r#"
            platform A cpu alpha 0.4 delta 1 beta 1;
            platform N network alpha 0.5 delta 2 beta 0;
            platform S cpu server budget 2 period 5;
        "#;
        let (_, platforms) = parse_str(src).unwrap();
        assert_eq!(platforms.len(), 3);
        let (_, a) = platforms.by_name("A").unwrap();
        assert_eq!(a.alpha(), rat(2, 5));
        let (_, n) = platforms.by_name("N").unwrap();
        assert_eq!(n.kind(), hsched_platform::PlatformKind::Network);
        let (_, s) = platforms.by_name("S").unwrap();
        assert_eq!(s.alpha(), rat(2, 5));
        assert_eq!(s.delta(), rat(6, 1));
    }

    #[test]
    fn remote_binding_with_link() {
        let src = r#"
            class Server {
                provided get() mit 100;
                thread R realizes get priority 1 { task s wcet 1 bcet 0.5; }
            }
            class Client {
                required get();
                thread P periodic period 100 priority 1 { call get; }
            }
            platform P1 cpu alpha 1 delta 0 beta 0;
            platform P2 cpu alpha 1 delta 0 beta 0;
            platform NET network alpha 0.5 delta 1 beta 0;
            instance S : Server on P1 node 0;
            instance C : Client on P2 node 1;
            bind C.get -> S.get via NET priority 3
                request wcet 0.5 bcet 0.25 response wcet 0.5 bcet 0.25;
        "#;
        let (system, platforms) = parse_str(src).unwrap();
        assert!(system.validate().is_ok());
        let b = &system.bindings[0];
        let link = b.link.as_ref().unwrap();
        assert_eq!(link.priority, 3);
        assert_eq!(link.request_wcet, rat(1, 2));
        assert_eq!(platforms[link.network].name(), "NET");
    }

    #[test]
    fn error_positions() {
        let err = parse_str("class {").unwrap_err();
        assert_eq!(err.line, 1);
        assert!(err.message.contains("identifier"));

        let err = parse_str("class C {\n  banana x;\n}").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.message.contains("banana"));
    }

    #[test]
    fn unknown_references_reported() {
        let err = parse_str("instance X : Nope on P node 0;").unwrap_err();
        assert!(err.message.contains("unknown class"));

        let err = parse_str(
            "class C { thread T periodic period 1 priority 1 { task a wcet 1; } }\ninstance X : C on P node 0;",
        )
        .unwrap_err();
        assert!(err.message.contains("unknown platform"));
    }

    #[test]
    fn scheduler_keyword() {
        let src =
            "class C { scheduler edf; thread T periodic period 5 priority 1 { task a wcet 1; } }";
        let (system, _) = parse_str(src).unwrap();
        assert_eq!(
            system.classes[0].scheduler,
            LocalScheduler::EarliestDeadlineFirst
        );
        let err = parse_str("class C { scheduler banana; }").unwrap_err();
        assert!(err.message.contains("unknown scheduler"));
    }

    #[test]
    fn explicit_deadline() {
        let src =
            "class C { thread T periodic period 10 deadline 8 priority 1 { task a wcet 1; } }";
        let (system, _) = parse_str(src).unwrap();
        match system.classes[0].threads[0].activation {
            hsched_model::ThreadActivation::Periodic { period, deadline } => {
                assert_eq!(period, rat(10, 1));
                assert_eq!(deadline, rat(8, 1));
            }
            _ => panic!(),
        }
    }

    #[test]
    fn required_with_explicit_mit() {
        let src =
            "class C { required m() mit 25; thread T periodic period 50 priority 1 { call m; } }";
        let (system, _) = parse_str(src).unwrap();
        assert_eq!(system.classes[0].required[0].mit, Some(rat(25, 1)));
    }
}
