//! Pretty-printer: renders a system back to `.hsc` source (round-trips
//! through [`crate::parse_str`]).

use hsched_model::{Action, LocalScheduler, System, ThreadActivation};
use hsched_platform::{PlatformKind, PlatformSet, ServiceModel};
use std::fmt::Write as _;

/// Renders `system` + `platforms` as `.hsc` source.
///
/// Only the constructs expressible in the language are emitted: `Linear` and
/// `Server` platform models (TDMA/quantized platforms are printed as their
/// linear abstraction, with a comment).
pub fn to_source(system: &System, platforms: &PlatformSet) -> String {
    let mut out = String::new();

    for class in &system.classes {
        let _ = writeln!(out, "class {} {{", class.name);
        for p in &class.provided {
            let _ = writeln!(out, "    provided {}() mit {};", p.name, p.mit);
        }
        for r in &class.required {
            match r.mit {
                Some(mit) => {
                    let _ = writeln!(out, "    required {}() mit {};", r.name, mit);
                }
                None => {
                    let _ = writeln!(out, "    required {}();", r.name);
                }
            }
        }
        if class.scheduler == LocalScheduler::EarliestDeadlineFirst {
            let _ = writeln!(out, "    scheduler edf;");
        }
        for t in &class.threads {
            match &t.activation {
                ThreadActivation::Periodic { period, deadline } => {
                    if deadline == period {
                        let _ = write!(out, "    thread {} periodic period {}", t.name, period);
                    } else {
                        let _ = write!(
                            out,
                            "    thread {} periodic period {} deadline {}",
                            t.name, period, deadline
                        );
                    }
                }
                ThreadActivation::Realizes(m) => {
                    let _ = write!(out, "    thread {} realizes {}", t.name, m.0);
                }
            }
            let _ = writeln!(out, " priority {} {{", t.priority);
            for a in &t.body {
                match a {
                    Action::Execute { name, wcet, bcet } => {
                        if wcet == bcet {
                            let _ = writeln!(out, "        task {name} wcet {wcet};");
                        } else {
                            let _ = writeln!(out, "        task {name} wcet {wcet} bcet {bcet};");
                        }
                    }
                    Action::Call(m) => {
                        let _ = writeln!(out, "        call {};", m.0);
                    }
                }
            }
            let _ = writeln!(out, "    }}");
        }
        let _ = writeln!(out, "}}");
        let _ = writeln!(out);
    }

    for (_, p) in platforms.iter() {
        let kind = match p.kind() {
            PlatformKind::Cpu => "cpu",
            PlatformKind::Network => "network",
        };
        match p.model() {
            ServiceModel::Server(s) => {
                let _ = writeln!(
                    out,
                    "platform {} {kind} server budget {} period {};",
                    p.name(),
                    s.budget(),
                    s.period()
                );
            }
            ServiceModel::Linear(_) => {
                let _ = writeln!(
                    out,
                    "platform {} {kind} alpha {} delta {} beta {};",
                    p.name(),
                    p.alpha(),
                    p.delta(),
                    p.beta()
                );
            }
            _ => {
                let _ = writeln!(
                    out,
                    "platform {} {kind} alpha {} delta {} beta {}; // linearized from {:?}",
                    p.name(),
                    p.alpha(),
                    p.delta(),
                    p.beta(),
                    p.model()
                );
            }
        }
    }
    let _ = writeln!(out);

    for (_, inst) in system.instances() {
        let class = &system.classes[inst.class].name;
        let platform = platforms[inst.platform].name();
        let _ = writeln!(
            out,
            "instance {} : {class} on {platform} node {};",
            inst.name, inst.node.0
        );
    }
    let _ = writeln!(out);

    for b in &system.bindings {
        let from = &system.instances[b.from.0].name;
        let to = &system.instances[b.to.0].name;
        match &b.link {
            None => {
                let _ = writeln!(out, "bind {from}.{} -> {to}.{};", b.required, b.provided);
            }
            Some(link) => {
                let net = platforms[link.network].name();
                let _ = writeln!(
                    out,
                    "bind {from}.{} -> {to}.{} via {net} priority {}\n    request wcet {} bcet {} response wcet {} bcet {};",
                    b.required,
                    b.provided,
                    link.priority,
                    link.request_wcet,
                    link.request_bcet,
                    link.response_wcet,
                    link.response_bcet
                );
            }
        }
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_str;
    use hsched_model::SystemBuilder;
    use hsched_numeric::rat;
    use hsched_platform::{Platform, PlatformSet, ServiceModel};
    use hsched_supply::TdmaSupply;

    #[test]
    fn non_linear_models_print_as_linearization() {
        // TDMA has no spec syntax: it prints as its linear abstraction with
        // a trailing comment, and the output still parses.
        let mut platforms = PlatformSet::new();
        let tdma = TdmaSupply::new(rat(10, 1), vec![(rat(0, 1), rat(2, 1))]).unwrap();
        platforms.add(Platform::new(
            "part",
            hsched_platform::PlatformKind::Cpu,
            ServiceModel::Tdma(tdma),
        ));
        let system = SystemBuilder::new().build();
        let printed = to_source(&system, &platforms);
        assert!(printed.contains("// linearized from"));
        let (_, platforms2) = parse_str(&printed).unwrap();
        let (_, p) = platforms2.by_name("part").unwrap();
        assert_eq!(p.alpha(), rat(1, 5));
        assert_eq!(p.delta(), rat(8, 1));
    }

    #[test]
    fn printed_source_is_stable() {
        let src = r#"
            class Server {
                provided get() mit 100;
                thread R realizes get priority 1 { task s wcet 1 bcet 0.5; }
            }
            class Client {
                required get();
                scheduler edf;
                thread P periodic period 100 deadline 80 priority 2 { call get; task post wcet 2; }
            }
            platform P1 cpu server budget 2 period 5;
            platform P2 cpu alpha 1 delta 0 beta 0;
            platform NET network alpha 0.5 delta 1 beta 0;
            instance S : Server on P1 node 0;
            instance C : Client on P2 node 1;
            bind C.get -> S.get via NET priority 3
                request wcet 0.5 bcet 0.25 response wcet 0.5 bcet 0.25;
        "#;
        let (sys1, plat1) = parse_str(src).unwrap();
        let printed1 = to_source(&sys1, &plat1);
        let (sys2, plat2) = parse_str(&printed1).unwrap();
        let printed2 = to_source(&sys2, &plat2);
        assert_eq!(sys1, sys2);
        assert_eq!(plat1, plat2);
        assert_eq!(printed1, printed2, "printing is idempotent");
    }
}
