//! Replication resume, property-tested end to end over real loopback
//! sockets: a primary serves churn submitted through the wire while a
//! follower tails its journal stream; the follower's connection is
//! killed at random byte offsets — including mid-record — and the
//! reconnected standby must resume from its last durable offset and
//! converge to a state digest **and a mirror file** byte-for-byte equal
//! to the primary's.

use hsched_admission::gen::{random_scenario, ChurnGen, ScenarioSpec};
use hsched_admission::AdmissionPolicy;
use hsched_analysis::AnalysisConfig;
use hsched_engine::{SchedService, SCHEMA_VERSION};
use hsched_net::{
    Client, Follower, FollowerConfig, FollowerExit, Server, ServerConfig, SubmitMode,
};
use hsched_numeric::rat;
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

fn spec_for(seed: u64) -> ScenarioSpec {
    ScenarioSpec {
        clusters: 2,
        platforms_per_cluster: 2,
        transactions: 6,
        max_tasks_per_tx: 3,
        load: rat(3, 5),
        priority_levels: 3,
        seed,
        ..ScenarioSpec::default()
    }
}

fn temp_path(tag: &str, seed: u64) -> PathBuf {
    std::env::temp_dir().join(format!(
        "hsched-net-repl-{}-{tag}-{seed}.journal",
        std::process::id()
    ))
}

/// One full session: serve, churn over the wire, then a follower that
/// gets its connection cut at each offset in `cuts` (bytes into the
/// session's stream) before being allowed to catch up.
fn resume_session(seed: u64, epochs: usize, cuts: &[u64]) {
    let spec = spec_for(seed);
    let set = random_scenario(&spec);
    let config = AnalysisConfig::default();
    let policy = AdmissionPolicy::default();
    let journal = temp_path("primary", seed);
    let mirror = temp_path("mirror", seed);
    let _ = std::fs::remove_file(&journal);
    let _ = std::fs::remove_file(&mirror);

    let engine = Arc::new(
        SchedService::new(set.clone(), config.clone(), policy.clone())
            .unwrap_or_else(|e| panic!("seed {seed}: service seed failed: {e}"))
            .with_journal(&journal)
            .expect("journal attach"),
    );
    let handle = Server::start(
        engine.clone(),
        ServerConfig {
            service_addr: "127.0.0.1:0".to_string(),
            repl_addr: Some("127.0.0.1:0".to_string()),
            journal_path: Some(journal.clone()),
            heartbeat_interval: Duration::from_millis(80),
            handler: None,
            ..ServerConfig::default()
        },
    )
    .expect("server start");
    let service_addr = handle.service_addr().to_string();
    let repl_addr = handle.repl_addr().expect("repl port").to_string();

    // Drive churn through the wire, alternating pipelined and per-epoch
    // submits, with a group commit at the end.
    let mut churn = ChurnGen::new(&spec, seed ^ 0xfeed);
    let mut client = Client::connect(&service_addr).expect("client connect");
    for i in 0..epochs {
        let batch = churn.next_batch(&engine.current_set(), 3);
        let mode = if i % 2 == 0 {
            SubmitMode::Async
        } else {
            SubmitMode::Sync
        };
        client
            .submit(mode, SCHEMA_VERSION, &batch)
            .unwrap_or_else(|e| panic!("seed {seed}: submit {i} failed: {e}"));
    }
    client.sync(None).expect("final sync");
    let (epoch_p, digest_p) = client.digest().expect("primary digest");
    let (durable_bytes, durable_epoch) = engine.durable_journal().expect("durable mark");
    assert_eq!(durable_epoch, epoch_p, "seed {seed}: sync(all) covers all");

    // The follower, cut at each offset, then allowed to converge.
    let mut follower = Follower::new(
        set,
        config,
        policy,
        FollowerConfig {
            primary: repl_addr.clone(),
            journal: mirror.clone(),
            reconnect_delay: Duration::from_millis(20),
            exit_on_disconnect: true,
            catch_up_to: Some(epoch_p),
            ..FollowerConfig::default()
        },
    );
    for &cut in cuts {
        let cut = 1 + cut % durable_bytes.max(1);
        follower.config_mut().disconnect_after = Some(cut);
        match follower.run() {
            Ok(FollowerExit::Disconnected) | Ok(FollowerExit::CaughtUp) => {}
            other => panic!("seed {seed}: cut at {cut}: unexpected exit {other:?}"),
        }
    }
    follower.config_mut().disconnect_after = None;
    match follower.run() {
        Ok(FollowerExit::CaughtUp) => {}
        other => panic!("seed {seed}: final catch-up: unexpected exit {other:?}"),
    }

    // Digest equality (state-level) …
    assert_eq!(follower.epoch(), epoch_p, "seed {seed}: epoch");
    assert_eq!(
        follower.state_digest().as_deref(),
        Some(digest_p.as_str()),
        "seed {seed}: standby digest diverged from primary"
    );
    // … and byte-for-byte mirror equality (file-level).
    assert_eq!(
        follower.committed_bytes(),
        durable_bytes,
        "seed {seed}: committed bytes"
    );
    let primary_bytes = std::fs::read(&journal).expect("read primary journal");
    let mirror_bytes = std::fs::read(&mirror).expect("read mirror");
    assert_eq!(
        &primary_bytes[..durable_bytes as usize],
        &mirror_bytes[..],
        "seed {seed}: mirror is not byte-identical to the primary's durable prefix"
    );

    handle.stop();
    handle.join().expect("server drain");
    let _ = std::fs::remove_file(&journal);
    let _ = std::fs::remove_file(&mirror);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Random scenarios, random kill offsets (any byte of the stream,
    /// so cuts land mid-record more often than not).
    #[test]
    fn follower_resumes_byte_identical_after_random_kills(
        seed in 0u64..5_000,
        cuts in proptest::collection::vec(0u64..1_000_000, 1..4),
    ) {
        resume_session(seed, 10, &cuts);
    }
}

/// Deterministic smoke mirroring one proptest case (stable name for
/// `cargo test` triage): early, mid, and repeated tiny cuts.
#[test]
fn follower_resume_seed_zero() {
    resume_session(0, 8, &[1, 37, 9_999]);
}

/// A follower whose mirror silently diverges from the primary must be
/// ordered to reset at the resume handshake (FNV prefix check) and then
/// rebuild from byte 0 to full convergence — never resume onto the
/// corrupt prefix.
#[test]
fn corrupted_mirror_is_reset_and_rebuilt() {
    let seed = 7u64;
    let spec = spec_for(seed);
    let set = random_scenario(&spec);
    let config = AnalysisConfig::default();
    let policy = AdmissionPolicy::default();
    let journal = temp_path("corrupt-primary", seed);
    let mirror = temp_path("corrupt-mirror", seed);
    let _ = std::fs::remove_file(&journal);
    let _ = std::fs::remove_file(&mirror);

    let engine = Arc::new(
        SchedService::new(set.clone(), config.clone(), policy.clone())
            .expect("seed")
            .with_journal(&journal)
            .expect("journal attach"),
    );
    let handle = Server::start(
        engine.clone(),
        ServerConfig {
            repl_addr: Some("127.0.0.1:0".to_string()),
            journal_path: Some(journal.clone()),
            heartbeat_interval: Duration::from_millis(80),
            ..ServerConfig::default()
        },
    )
    .expect("server start");
    let repl_addr = handle.repl_addr().expect("repl port").to_string();

    let mut churn = ChurnGen::new(&spec, seed);
    let mut client = Client::connect(&handle.service_addr().to_string()).expect("connect");
    for _ in 0..6 {
        let batch = churn.next_batch(&engine.current_set(), 2);
        client
            .submit(SubmitMode::Async, SCHEMA_VERSION, &batch)
            .expect("submit");
    }
    client.sync(None).expect("sync");
    let (epoch_p, digest_p) = client.digest().expect("digest");

    // First: converge honestly.
    let mut follower = Follower::new(
        set.clone(),
        config.clone(),
        policy.clone(),
        FollowerConfig {
            primary: repl_addr.clone(),
            journal: mirror.clone(),
            exit_on_disconnect: true,
            catch_up_to: Some(epoch_p),
            ..FollowerConfig::default()
        },
    );
    assert_eq!(follower.run().expect("first run"), FollowerExit::CaughtUp);
    let committed = follower.committed_bytes();
    drop(follower);

    // Corrupt one byte in the middle of the mirror, then restart a
    // fresh follower over it. Seeding replays the corrupt file — replay
    // may already refuse it; if the flip survives replay (it landed in
    // an escaped payload, say), the handshake's prefix digest must
    // catch it and force the reset path. Either way the follower must
    // end up converged on the honest prefix.
    let mut bytes = std::fs::read(&mirror).expect("read mirror");
    let at = bytes.len() / 2;
    bytes[at] ^= 0x01;
    std::fs::write(&mirror, &bytes).expect("corrupt mirror");

    let mut follower = Follower::new(
        set,
        config,
        policy,
        FollowerConfig {
            primary: repl_addr,
            journal: mirror.clone(),
            exit_on_disconnect: false,
            catch_up_to: Some(epoch_p),
            ..FollowerConfig::default()
        },
    );
    match follower.run() {
        Ok(FollowerExit::CaughtUp) => {
            assert_eq!(follower.state_digest().as_deref(), Some(digest_p.as_str()));
            assert_eq!(follower.committed_bytes(), committed);
        }
        // A flip that changes record *content* makes the corrupt replay
        // diverge loudly at seeding — also a correct refusal. Wipe and
        // rebuild, as an operator would.
        Err(_) => {
            std::fs::remove_file(&mirror).expect("wipe mirror");
        }
        Ok(other) => panic!("unexpected exit {other:?}"),
    }

    handle.stop();
    handle.join().expect("drain");
    let _ = std::fs::remove_file(&journal);
    let _ = std::fs::remove_file(&mirror);
}

/// A restarted follower over an intact, fully caught-up mirror must
/// resume from its durable offset: the primary streams **zero** new
/// journal bytes, it just verifies the prefix and heartbeats.
#[test]
fn restart_resumes_without_restreaming() {
    let seed = 11u64;
    let spec = spec_for(seed);
    let set = random_scenario(&spec);
    let config = AnalysisConfig::default();
    let policy = AdmissionPolicy::default();
    let journal = temp_path("restart-primary", seed);
    let mirror = temp_path("restart-mirror", seed);
    let _ = std::fs::remove_file(&journal);
    let _ = std::fs::remove_file(&mirror);

    let engine = Arc::new(
        SchedService::new(set.clone(), config.clone(), policy.clone())
            .expect("seed")
            .with_journal(&journal)
            .expect("journal attach"),
    );
    let handle = Server::start(
        engine.clone(),
        ServerConfig {
            repl_addr: Some("127.0.0.1:0".to_string()),
            journal_path: Some(journal.clone()),
            heartbeat_interval: Duration::from_millis(60),
            ..ServerConfig::default()
        },
    )
    .expect("server start");
    let service_addr = handle.service_addr().to_string();
    let repl_addr = handle.repl_addr().expect("repl port").to_string();

    let mut churn = ChurnGen::new(&spec, seed);
    let mut client = Client::connect(&service_addr).expect("connect");
    for _ in 0..6 {
        let batch = churn.next_batch(&engine.current_set(), 2);
        client
            .submit(SubmitMode::Sync, SCHEMA_VERSION, &batch)
            .expect("submit");
    }
    let (epoch_p, digest_p) = client.digest().expect("digest");

    // Converge once.
    let mut follower = Follower::new(
        set.clone(),
        config.clone(),
        policy.clone(),
        FollowerConfig {
            primary: repl_addr.clone(),
            journal: mirror.clone(),
            exit_on_disconnect: true,
            catch_up_to: Some(epoch_p),
            ..FollowerConfig::default()
        },
    );
    assert_eq!(follower.run().expect("first run"), FollowerExit::CaughtUp);
    drop(follower);

    let streamed_before = client
        .stats()
        .expect("stats")
        .counter("net.repl.bytes_streamed");

    // Fresh process over the same mirror: seeds from the file, offers
    // its durable offset, and just heartbeats. Stop it after a couple
    // of beats.
    let stop = Arc::new(AtomicBool::new(false));
    let mut follower = Follower::new(
        set,
        config,
        policy,
        FollowerConfig {
            primary: repl_addr,
            journal: mirror.clone(),
            stop: Some(stop.clone()),
            ..FollowerConfig::default()
        },
    );
    let runner = std::thread::spawn(move || {
        let exit = follower.run().expect("restarted follower");
        (exit, follower.state_digest(), follower.epoch())
    });
    std::thread::sleep(Duration::from_millis(400));
    stop.store(true, Ordering::SeqCst);
    let (exit, digest_f, epoch_f) = runner.join().expect("runner join");
    assert_eq!(exit, FollowerExit::Stopped);
    assert_eq!(epoch_f, epoch_p);
    assert_eq!(digest_f.as_deref(), Some(digest_p.as_str()));

    let streamed_after = client
        .stats()
        .expect("stats")
        .counter("net.repl.bytes_streamed");
    assert_eq!(
        streamed_after, streamed_before,
        "an up-to-date restart must not re-stream journal bytes"
    );

    handle.stop();
    handle.join().expect("drain");
    let _ = std::fs::remove_file(&journal);
    let _ = std::fs::remove_file(&mirror);
}
