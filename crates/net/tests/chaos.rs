//! Chaos gate: seeded fault plans (torn frames, dropped connections,
//! journal stalls, fsync failure) driven through a live primary+standby
//! pair over real loopback sockets. The invariant under every plan:
//! **every epoch a client observed as durable survives** — into the
//! primary's replayed journal, and into the standby promoted after the
//! primary is taken down — and the promoted digest is bit-for-bit the
//! digest of replaying the primary's own journal.
//!
//! Every case prints its seed and the exact fault-plan spec on failure;
//! re-running with the same seed reproduces the same injection decisions
//! (`hsched-faults` draws from one seeded PRNG stream).
//!
//! The fault plan is process-global, so the whole suite runs inside one
//! `#[test]` — parallel test threads would trample each other's plans.
//! Case count scales with `HSCHED_PROPTEST_CASES` (default 3).

use hsched_admission::gen::{random_scenario, ChurnGen, ScenarioSpec};
use hsched_admission::AdmissionPolicy;
use hsched_analysis::AnalysisConfig;
use hsched_engine::{EngineOp, EngineRequest, SchedService, SCHEMA_VERSION};
use hsched_faults::{FaultPlan, Site};
use hsched_net::{
    Follower, FollowerConfig, FollowerExit, RetryClient, RetryPolicy, Server, ServerConfig,
    SubmitMode, WireError,
};
use hsched_numeric::rat;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

fn spec_for(seed: u64) -> ScenarioSpec {
    ScenarioSpec {
        clusters: 2,
        platforms_per_cluster: 2,
        transactions: 6,
        max_tasks_per_tx: 3,
        load: rat(3, 5),
        priority_levels: 3,
        seed,
        ..ScenarioSpec::default()
    }
}

fn temp_path(tag: &str, seed: u64) -> PathBuf {
    std::env::temp_dir().join(format!(
        "hsched-net-chaos-{}-{tag}-{seed}.journal",
        std::process::id()
    ))
}

fn cases() -> u64 {
    std::env::var("HSCHED_PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(3)
}

fn retry_policy() -> RetryPolicy {
    RetryPolicy {
        attempts: 10,
        base_delay: Duration::from_millis(10),
        max_delay: Duration::from_millis(250),
        timeout: Some(Duration::from_secs(10)),
    }
}

/// Wire/connection chaos with a standby in tow: budgeted frame tears,
/// dropped frames, refused accepts/dials, and journal write stalls. The
/// retrying client must land every epoch; the follower must converge
/// through the noise; the standby promoted after the primary stops must
/// replay to exactly the digest the primary's journal replays to.
fn wire_chaos_case(seed: u64) {
    let plan = hsched_faults::install(
        FaultPlan::new(seed)
            .with_budget(Site::FramePartial, 40, 6)
            .with_budget(Site::FrameDrop, 40, 6)
            .with_budget(Site::FrameStall, 20, 4)
            .with_budget(Site::ConnAccept, 120, 2)
            .with_budget(Site::ConnDial, 120, 2)
            .with_budget(Site::JournalDelay, 30, 4),
    );
    let ctx = format!("seed {seed} plan `{}`", plan.spec());

    let spec = spec_for(seed);
    let set = random_scenario(&spec);
    let config = AnalysisConfig::default();
    let policy = AdmissionPolicy::default();
    let journal = temp_path("wire-primary", seed);
    let mirror = temp_path("wire-mirror", seed);
    let _ = std::fs::remove_file(&journal);
    let _ = std::fs::remove_file(&mirror);

    let engine = Arc::new(
        SchedService::new(set.clone(), config.clone(), policy.clone())
            .unwrap_or_else(|e| panic!("{ctx}: seed failed: {e}"))
            .with_journal(&journal)
            .expect("journal attach"),
    );
    let handle = Server::start(
        engine.clone(),
        ServerConfig {
            repl_addr: Some("127.0.0.1:0".to_string()),
            journal_path: Some(journal.clone()),
            heartbeat_interval: Duration::from_millis(60),
            ..ServerConfig::default()
        },
    )
    .expect("server start");
    let service_addr = handle.service_addr().to_string();
    let repl_addr = handle.repl_addr().expect("repl port").to_string();

    // Sync-mode submits through the retry client: an Ok reply means the
    // epoch is durable on the primary. Faults tear connections mid-frame;
    // the idempotency tickets make the retries safe.
    let mut churn = ChurnGen::new(&spec, seed ^ 0xfeed);
    let mut client = RetryClient::new(service_addr, retry_policy());
    let mut acked = Vec::new();
    for i in 0..10usize {
        let batch = churn.next_batch(&engine.current_set(), 3);
        let reply = client
            .submit(SubmitMode::Sync, SCHEMA_VERSION, &batch)
            .unwrap_or_else(|e| panic!("{ctx}: submit {i} failed after retries: {e}"));
        acked.push(reply.epoch);
    }
    let durable = client
        .sync(None)
        .unwrap_or_else(|e| panic!("{ctx}: sync: {e}"));
    let max_acked = acked.iter().copied().max().unwrap_or(0);
    assert!(
        durable >= max_acked,
        "{ctx}: sync(all) below an acked epoch"
    );

    // Surface check: the fault counters ride the stats frame. The plan
    // keeps firing while the reply crosses the (faulty) wire, so the
    // snapshot is a lower bound on the live count, never above it.
    let stats = client
        .stats()
        .unwrap_or_else(|e| panic!("{ctx}: stats: {e}"));
    for site in Site::ALL {
        let name = format!("net.faults.{}", site.name());
        assert!(
            stats.counters().any(|(n, _)| n == name),
            "{ctx}: {name} missing from the stats frame"
        );
        assert!(
            stats.counter(&name) <= plan.injected(site),
            "{ctx}: {name} above the plan's own count"
        );
    }

    // A standby converges through the same noisy wire.
    let mut follower = Follower::new(
        set.clone(),
        config.clone(),
        policy.clone(),
        FollowerConfig {
            primary: repl_addr,
            journal: mirror.clone(),
            reconnect_delay: Duration::from_millis(20),
            catch_up_to: Some(durable),
            ..FollowerConfig::default()
        },
    );
    match follower.run() {
        Ok(FollowerExit::CaughtUp) => {}
        other => panic!("{ctx}: follower exit {other:?}"),
    }

    // Take the primary down, then promote the standby and hold it to the
    // journal's own truth: replaying the primary's journal file is the
    // reference state (the in-memory engine is gone with the "crash").
    handle.stop();
    handle
        .join()
        .unwrap_or_else(|e| panic!("{ctx}: drain: {e}"));
    let (reference, _) = SchedService::replay_standby(set, config, policy, &journal)
        .unwrap_or_else(|e| panic!("{ctx}: reference replay: {e}"));

    let (promoted, stats) = follower
        .promote()
        .unwrap_or_else(|e| panic!("{ctx}: promotion refused: {e}"));
    assert!(
        promoted.epoch() >= max_acked,
        "{ctx}: promoted standby at epoch {} lost acked epoch {max_acked}",
        promoted.epoch()
    );
    assert_eq!(
        promoted.state_digest(),
        reference.state_digest(),
        "{ctx}: promoted digest diverged from the primary's journal replay \
         ({} tail records, {} repaired bytes)",
        stats.tail_records,
        stats.repaired_bytes
    );

    // The promoted journal is attached and alive: it must accept and
    // journal fresh epochs (admitted or rejected — either proves it).
    let batch = churn.next_batch(&promoted.current_set(), 2);
    promoted
        .submit(&EngineRequest {
            version: SCHEMA_VERSION,
            ops: batch.into_iter().map(EngineOp::Admission).collect(),
        })
        .unwrap_or_else(|e| panic!("{ctx}: promoted primary refuses commits: {e}"));

    hsched_faults::clear();
    let _ = std::fs::remove_file(&journal);
    let _ = std::fs::remove_file(&mirror);
}

/// Journal chaos: a budget-1 fsync failure wedges durability mid-run.
/// Acked epochs (durable before the wedge) must survive into the
/// journal's replay; everything after the wedge must fail loudly
/// (non-retryable `journal` errors), never report durability, and never
/// corrupt the acked prefix. Returns how many epochs were acked before
/// the wedge (the suite asserts the coverage was not all-vacuous —
/// whether a given seed's fault fires on the first or a later fsync is
/// the plan's deterministic choice).
fn fsync_wedge_case(seed: u64) -> usize {
    let plan = hsched_faults::install(
        FaultPlan::new(seed)
            // Fires on one mid-run fsync: per-mille 300 ≈ the 3rd-ish
            // group commit, budget 1 caps it to a single failure.
            .with_budget(Site::JournalFsync, 300, 1),
    );
    let ctx = format!("seed {seed} plan `{}`", plan.spec());

    let spec = spec_for(seed);
    let set = random_scenario(&spec);
    let config = AnalysisConfig::default();
    let policy = AdmissionPolicy::default();
    let journal = temp_path("wedge-primary", seed);
    let _ = std::fs::remove_file(&journal);

    let engine = Arc::new(
        SchedService::new(set.clone(), config.clone(), policy.clone())
            .unwrap_or_else(|e| panic!("{ctx}: seed failed: {e}"))
            .with_journal(&journal)
            .expect("journal attach"),
    );
    let handle = Server::start(engine.clone(), ServerConfig::default()).expect("server start");
    let service_addr = handle.service_addr().to_string();

    let mut churn = ChurnGen::new(&spec, seed ^ 0xbeef);
    let mut client = RetryClient::new(service_addr, retry_policy());
    let mut acked = Vec::new();
    let mut wedged = false;
    for i in 0..12usize {
        let batch = churn.next_batch(&engine.current_set(), 2);
        match client.submit(SubmitMode::Sync, SCHEMA_VERSION, &batch) {
            Ok(reply) => {
                assert!(!wedged, "{ctx}: durability reported after the fsync wedge");
                acked.push(reply.epoch);
            }
            Err(WireError::Remote { code, message }) if code == hsched_net::code::JOURNAL => {
                // The injected fsync failure poisoned the journal — every
                // later durability claim must keep failing.
                assert!(
                    message.contains("injected fault") || wedged,
                    "{ctx}: submit {i}: unexpected journal error `{message}`"
                );
                wedged = true;
            }
            Err(e) => panic!("{ctx}: submit {i}: unexpected error {e}"),
        }
    }
    assert!(
        wedged,
        "{ctx}: the budgeted fsync fault never fired in 12 epochs"
    );

    handle.stop();
    // The final drain sync hits the poisoned journal — that is the drain
    // reporting the truth, not a test failure.
    let _ = handle.join();

    // Replay must recover at least every acked epoch; a torn tail past
    // the acked prefix (the unsynced epochs) is repaired, not fatal.
    let max_acked = acked.iter().copied().max().unwrap_or(0);
    let (recovered, stats) = SchedService::replay(set, config, policy, &journal)
        .unwrap_or_else(|e| panic!("{ctx}: replay after wedge: {e}"));
    assert!(
        recovered.epoch() >= max_acked,
        "{ctx}: replay reaches epoch {}, below acked {max_acked} \
         ({} repaired bytes)",
        recovered.epoch(),
        stats.repaired_bytes
    );

    hsched_faults::clear();
    let _ = std::fs::remove_file(&journal);
    acked.len()
}

/// The whole chaos suite in one test: the fault plan is process-global
/// state, so cases must run sequentially.
#[test]
fn chaos_plans_preserve_acked_epochs() {
    let mut acked_before_wedge = 0usize;
    for case in 0..cases() {
        wire_chaos_case(0x5eed_0000 + case);
        acked_before_wedge += fsync_wedge_case(0xfa11_5eed + case);
    }
    assert!(
        acked_before_wedge > 0,
        "every wedge case lost its fsync on the very first commit — \
         the acked-prefix invariant was never exercised; change the seeds"
    );
    hsched_faults::clear();
}
