//! The service port end to end over loopback: remote submits match
//! local ones, typed error codes cross the wire, a malformed frame
//! drops exactly one connection, and a drain leaves everything durable.

use hsched_admission::gen::{random_scenario, ChurnGen, ScenarioSpec};
use hsched_admission::AdmissionPolicy;
use hsched_analysis::AnalysisConfig;
use hsched_engine::{SchedService, SCHEMA_VERSION};
use hsched_net::{
    code, read_frame, write_frame, Client, FrameRead, Server, ServerConfig, SubmitMode, WireError,
};
use hsched_numeric::rat;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

fn spec_for(seed: u64) -> ScenarioSpec {
    ScenarioSpec {
        clusters: 2,
        platforms_per_cluster: 2,
        transactions: 6,
        max_tasks_per_tx: 3,
        load: rat(3, 5),
        priority_levels: 3,
        seed,
        ..ScenarioSpec::default()
    }
}

fn temp_journal(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "hsched-net-loopback-{}-{tag}.journal",
        std::process::id()
    ))
}

struct Harness {
    engine: Arc<SchedService>,
    handle: hsched_net::ServerHandle,
    journal: PathBuf,
}

fn start(seed: u64, tag: &str) -> Harness {
    let spec = spec_for(seed);
    let set = random_scenario(&spec);
    let journal = temp_journal(tag);
    let _ = std::fs::remove_file(&journal);
    let engine = Arc::new(
        SchedService::new(set, AnalysisConfig::default(), AdmissionPolicy::default())
            .expect("seed")
            .with_journal(&journal)
            .expect("journal"),
    );
    let handle = Server::start(
        engine.clone(),
        ServerConfig {
            heartbeat_interval: Duration::from_millis(100),
            ..ServerConfig::default()
        },
    )
    .expect("server start");
    Harness {
        engine,
        handle,
        journal,
    }
}

/// Remote submits settle the same epochs, with the same verdicts and
/// digests, as the engine reports locally.
#[test]
fn remote_submits_match_local_state() {
    let h = start(21, "match");
    let addr = h.handle.service_addr().to_string();
    let spec = spec_for(21);
    let mut churn = ChurnGen::new(&spec, 21);
    let mut client = Client::connect(&addr).expect("connect");
    let mut epochs = Vec::new();
    for i in 0..8 {
        let batch = churn.next_batch(&h.engine.current_set(), 3);
        let mode = if i % 2 == 0 {
            SubmitMode::Async
        } else {
            SubmitMode::Sync
        };
        let epoch = client
            .submit(mode, SCHEMA_VERSION, &batch)
            .expect("remote submit");
        assert_eq!(epoch.requests, batch.len());
        if !epoch.admitted {
            let reason = epoch.reason.as_ref().expect("rejected epoch has reason");
            assert!(reason.code > 0, "reason carries a stable code");
        }
        epochs.push(epoch);
    }
    // Tickets are the service's: strictly increasing, 1..=8.
    let tickets: Vec<u64> = epochs.iter().map(|e| e.epoch).collect();
    assert_eq!(tickets, (1..=8).collect::<Vec<u64>>());
    let covered = client.sync(None).expect("sync all");
    assert_eq!(covered, 8);
    let (epoch, digest) = client.digest().expect("remote digest");
    assert_eq!(epoch, h.engine.epoch());
    assert_eq!(digest, h.engine.state_digest());

    // The remote stats snapshot carries all layers plus the wire's own
    // counters, histograms bucket-exact.
    let snap = client.stats().expect("stats");
    assert_eq!(snap.counter("engine.epochs_settled"), 8);
    assert!(snap.counter("net.frames_in") >= 10);
    assert!(snap.counter("net.connections") >= 1);
    client.quit().expect("quit");
    h.handle.stop();
    h.handle.join().expect("drain");
    let _ = std::fs::remove_file(&h.journal);
}

/// Typed error codes: an unsupported schema version comes back as a
/// typed `error` frame with the stable code — and the connection
/// survives to serve the corrected retry.
#[test]
fn engine_errors_are_typed_and_nonfatal() {
    let h = start(22, "typed");
    let addr = h.handle.service_addr().to_string();
    let mut client = Client::connect(&addr).expect("connect");
    match client.submit(SubmitMode::Sync, 99, &[]) {
        Err(WireError::Remote { code: c, .. }) => assert_eq!(c, code::UNSUPPORTED_VERSION),
        other => panic!("expected UNSUPPORTED_VERSION, got {other:?}"),
    }
    // Same connection, valid version: still serving.
    let epoch = client
        .submit(SubmitMode::Sync, SCHEMA_VERSION, &[])
        .expect("empty batch after error");
    assert_eq!(epoch.epoch, 1);
    h.handle.stop();
    h.handle.join().expect("drain");
    let _ = std::fs::remove_file(&h.journal);
}

/// A protocol-violating frame gets a typed `error` reply and costs that
/// connection — and only that connection; the listener and every other
/// connection keep serving.
#[test]
fn malformed_frame_drops_only_its_connection() {
    let h = start(23, "malformed");
    let addr = h.handle.service_addr().to_string();
    let mut healthy = Client::connect(&addr).expect("healthy connect");

    // A raw socket speaking nonsense.
    let mut rogue = std::net::TcpStream::connect(&addr).expect("rogue connect");
    match read_frame(&mut rogue, None).expect("greeting") {
        FrameRead::Frame(g) => assert!(g.starts_with("hsched-net")),
        other => panic!("expected greeting, got {other:?}"),
    }
    write_frame(&mut rogue, "warble 3 5").expect("send nonsense");
    match read_frame(&mut rogue, None).expect("error frame") {
        FrameRead::Frame(payload) => {
            assert!(payload.starts_with(&format!("error {} ", code::MALFORMED)));
        }
        other => panic!("expected error frame, got {other:?}"),
    }
    // The server hangs up on us…
    match read_frame(&mut rogue, None) {
        Ok(FrameRead::Eof) | Err(_) => {}
        other => panic!("expected EOF after violation, got {other:?}"),
    }

    // …while the healthy connection (and new ones) keep working.
    let epoch = healthy
        .submit(SubmitMode::Sync, SCHEMA_VERSION, &[])
        .expect("healthy submit");
    assert_eq!(epoch.epoch, 1);
    let mut fresh = Client::connect(&addr).expect("fresh connect");
    fresh.digest().expect("fresh digest");

    let rejects = fresh
        .stats()
        .expect("stats")
        .counter("net.malformed_rejects");
    assert_eq!(rejects, 1);
    h.handle.stop();
    h.handle.join().expect("drain");
    let _ = std::fs::remove_file(&h.journal);
}

/// A drain with pipelined (unsynced) epochs in flight must leave every
/// settled epoch durable: join issues the final `sync(u64::MAX)`, and a
/// cold replay of the journal reproduces the pre-shutdown digest.
#[test]
fn drain_syncs_pipelined_epochs() {
    let seed = 24u64;
    let spec = spec_for(seed);
    let set = random_scenario(&spec);
    let journal = temp_journal("drain");
    let _ = std::fs::remove_file(&journal);
    let engine = Arc::new(
        SchedService::new(
            set.clone(),
            AnalysisConfig::default(),
            AdmissionPolicy::default(),
        )
        .expect("seed")
        .with_journal(&journal)
        .expect("journal"),
    );
    let handle = Server::start(engine.clone(), ServerConfig::default()).expect("server start");
    let addr = handle.service_addr().to_string();

    let mut churn = ChurnGen::new(&spec, seed);
    let mut client = Client::connect(&addr).expect("connect");
    for _ in 0..5 {
        let batch = churn.next_batch(&engine.current_set(), 2);
        client
            .submit(SubmitMode::Async, SCHEMA_VERSION, &batch)
            .expect("pipelined submit");
    }
    let digest_before = engine.state_digest();
    // No explicit sync — the drain owes us durability.
    handle.stop();
    let synced = handle.join().expect("drain");
    assert_eq!(synced, 5, "drain group-committed every settled epoch");
    drop(client);

    let (replayed, stats) = SchedService::replay(
        set,
        AnalysisConfig::default(),
        AdmissionPolicy::default(),
        &journal,
    )
    .expect("cold replay");
    assert_eq!(stats.tail_records, 5);
    assert_eq!(replayed.state_digest(), digest_before);
    let _ = std::fs::remove_file(&journal);
}
