//! hsched-net: the socket front end and journal-streaming replication.
//!
//! Everything here is dependency-free networking over `std::net` and
//! threads — the engine's admission pipeline already scales across
//! threads behind `&self`, so a thread-per-connection server is the
//! whole story: each connection pipelines through
//! [`hsched_engine::SchedService::submit_async`] and group-commits with
//! [`hsched_engine::SchedService::sync`], exactly like a local thread.
//!
//! Three roles, all speaking the length-prefixed frame protocol of
//! `docs/WIRE_PROTOCOL.md`:
//!
//! * **Primary** ([`Server`]): `hsched serve` — a service port for
//!   remote admission, and optionally a replication port that streams
//!   raw journal bytes to warm standbys.
//! * **Follower** ([`Follower`]): `hsched follow` — mirrors the journal
//!   byte-for-byte, applies records through streaming replay as they
//!   arrive, cross-checks the primary's digest heartbeats, resumes from
//!   its last durable offset after a disconnect, and refuses divergence
//!   loudly.
//! * **Client** ([`Client`]): `hsched admit --remote` / `hsched stats
//!   --remote` — request scripts over the wire, with typed error codes.

#![warn(missing_docs)]

pub mod client;
pub mod error;
pub mod follower;
pub mod frame;
pub mod metrics;
pub mod proto;
pub mod repl;
pub mod server;
pub mod signal;

pub use client::{Client, RetryClient, RetryPolicy};
pub use error::{code, engine_code, reason, reason_code, retry_after_hint, retryable, WireError};
pub use follower::{Follower, FollowerConfig, FollowerExit};
pub use frame::{queue_frame, read_frame, write_frame, FrameRead, MAX_FRAME_BYTES};
pub use metrics::NetMetrics;
pub use proto::{reason_kind, RemoteEpoch, RemoteReason, SubmitMode};
pub use repl::fnv1a_64;
pub use server::{
    ConnCtx, ConnHandler, DedupTable, Server, ServerConfig, ServerHandle, ShedPolicy,
};
