//! Length-prefixed framing: every message on every wire is one frame — a
//! 4-byte big-endian payload length followed by that many bytes of UTF-8
//! text. The first line of the payload is the frame keyword and its
//! arguments; some frames carry further lines (request batches, raw
//! journal bytes — the journal grammar percent-escapes everything outside
//! printable ASCII, so raw records embed in UTF-8 losslessly).
//!
//! Reads are interruption-aware: a reader with a socket read timeout
//! reports [`FrameRead::Idle`] when *no* byte of a frame has arrived
//! (letting connection loops poll a shutdown flag between frames), keeps
//! waiting through mid-frame timeouts, and distinguishes a clean EOF at a
//! frame boundary from a connection torn mid-frame — the latter is a
//! typed error, mirroring the journal's torn-tail discipline at the
//! socket boundary.

use crate::error::{code, WireError};
use std::io::{Read, Write};
use std::sync::atomic::{AtomicBool, Ordering};

/// Hard cap on a single frame's payload. Large enough for any request
/// batch or replication chunk the protocol produces (chunks are capped
/// far below this), small enough that a malformed length prefix cannot
/// balloon an allocation.
pub const MAX_FRAME_BYTES: usize = 16 << 20;

/// Outcome of one [`read_frame`] call.
#[derive(Debug)]
pub enum FrameRead {
    /// One complete frame payload.
    Frame(String),
    /// The socket timed out before the first byte of a frame — no data
    /// lost, poll your shutdown flag and call again.
    Idle,
    /// The peer closed the connection cleanly at a frame boundary.
    Eof,
}

enum Progress {
    Done,
    Idle,
    Eof,
}

fn read_full(
    stream: &mut impl Read,
    buf: &mut [u8],
    at_boundary: bool,
    stop: Option<&AtomicBool>,
) -> Result<Progress, WireError> {
    let mut filled = 0usize;
    while filled < buf.len() {
        match stream.read(&mut buf[filled..]) {
            Ok(0) => {
                return if filled == 0 && at_boundary {
                    Ok(Progress::Eof)
                } else {
                    Err(WireError::Protocol(
                        "connection closed mid-frame".to_string(),
                    ))
                };
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                if filled == 0 && at_boundary {
                    return Ok(Progress::Idle);
                }
                // Mid-frame timeout: the peer is slow, not gone — keep
                // waiting unless a shutdown was requested.
                if stop.is_some_and(|flag| flag.load(Ordering::SeqCst)) {
                    return Err(WireError::Protocol(
                        "shutdown requested mid-frame".to_string(),
                    ));
                }
            }
            Err(e) => return Err(WireError::Io(e)),
        }
    }
    Ok(Progress::Done)
}

/// Reads one frame. `stop` (optional) is consulted on mid-frame timeouts
/// so a draining server does not hang on a half-sent frame forever.
pub fn read_frame(
    stream: &mut impl Read,
    stop: Option<&AtomicBool>,
) -> Result<FrameRead, WireError> {
    if hsched_faults::hit(hsched_faults::Site::FrameStall) {
        hsched_faults::stall();
    }
    if hsched_faults::hit(hsched_faults::Site::FrameDrop) {
        return Err(WireError::Io(hsched_faults::injected_io_error(
            "connection dropped before frame read",
        )));
    }
    let mut len_buf = [0u8; 4];
    match read_full(stream, &mut len_buf, true, stop)? {
        Progress::Eof => return Ok(FrameRead::Eof),
        Progress::Idle => return Ok(FrameRead::Idle),
        Progress::Done => {}
    }
    let len = u32::from_be_bytes(len_buf) as usize;
    if len > MAX_FRAME_BYTES {
        return Err(WireError::remote(
            code::MALFORMED,
            format!("frame of {len} bytes exceeds the {MAX_FRAME_BYTES}-byte cap"),
        ));
    }
    let mut payload = vec![0u8; len];
    match read_full(stream, &mut payload, false, stop)? {
        Progress::Done => {}
        _ => unreachable!("read_full mid-frame never reports Idle/Eof"),
    }
    let text = String::from_utf8(payload)
        .map_err(|_| WireError::remote(code::MALFORMED, "frame payload is not UTF-8"))?;
    Ok(FrameRead::Frame(text))
}

/// Writes one frame and flushes; returns the bytes put on the wire
/// (4-byte prefix + payload) for traffic accounting.
pub fn write_frame(stream: &mut impl Write, payload: &str) -> Result<u64, WireError> {
    let n = queue_frame(stream, payload)?;
    stream.flush()?;
    Ok(n)
}

/// Writes one frame *without* flushing — the pipelining half for buffered
/// writers (`BufWriter`): queue several frames, flush once before the
/// next read. Prefix and payload go down as a single `write_all`, so an
/// unbuffered caller still pays one syscall per frame, not two. Returns
/// the bytes queued (4-byte prefix + payload) for traffic accounting.
pub fn queue_frame(stream: &mut impl Write, payload: &str) -> Result<u64, WireError> {
    if payload.len() > MAX_FRAME_BYTES {
        return Err(WireError::remote(
            code::MALFORMED,
            format!(
                "refusing to send a {}-byte frame (cap {MAX_FRAME_BYTES})",
                payload.len()
            ),
        ));
    }
    let mut buf = Vec::with_capacity(4 + payload.len());
    buf.extend_from_slice(&(payload.len() as u32).to_be_bytes());
    buf.extend_from_slice(payload.as_bytes());
    if hsched_faults::hit(hsched_faults::Site::FrameStall) {
        hsched_faults::stall();
    }
    if hsched_faults::hit(hsched_faults::Site::FrameDrop) {
        return Err(WireError::Io(hsched_faults::injected_io_error(
            "connection dropped before frame write",
        )));
    }
    if hsched_faults::hit(hsched_faults::Site::FramePartial) {
        // Half the frame reaches the wire, then the connection dies — the
        // peer sees a mid-frame tear (`Protocol`), this side an I/O error.
        let _ = stream.write_all(&buf[..buf.len() / 2]);
        let _ = stream.flush();
        return Err(WireError::Io(hsched_faults::injected_io_error(
            "partial frame write",
        )));
    }
    stream.write_all(&buf)?;
    Ok(4 + payload.len() as u64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_round_trip() {
        let mut wire = Vec::new();
        let n = write_frame(&mut wire, "hello line\nsecond line").unwrap();
        assert_eq!(n as usize, wire.len());
        write_frame(&mut wire, "").unwrap();
        let mut reader = std::io::Cursor::new(wire);
        match read_frame(&mut reader, None).unwrap() {
            FrameRead::Frame(text) => assert_eq!(text, "hello line\nsecond line"),
            other => panic!("expected frame, got {other:?}"),
        }
        match read_frame(&mut reader, None).unwrap() {
            FrameRead::Frame(text) => assert_eq!(text, ""),
            other => panic!("expected frame, got {other:?}"),
        }
        assert!(matches!(
            read_frame(&mut reader, None).unwrap(),
            FrameRead::Eof
        ));
    }

    #[test]
    fn truncated_frame_is_a_typed_error_not_a_hang() {
        let mut wire = Vec::new();
        write_frame(&mut wire, "a complete frame").unwrap();
        write_frame(&mut wire, "this one gets torn").unwrap();
        wire.truncate(wire.len() - 5);
        let mut reader = std::io::Cursor::new(wire);
        assert!(matches!(
            read_frame(&mut reader, None).unwrap(),
            FrameRead::Frame(_)
        ));
        assert!(matches!(
            read_frame(&mut reader, None),
            Err(WireError::Protocol(_))
        ));
    }

    #[test]
    fn oversized_length_prefix_is_rejected_before_allocation() {
        let mut wire = (u32::MAX).to_be_bytes().to_vec();
        wire.extend_from_slice(b"junk");
        let mut reader = std::io::Cursor::new(wire);
        match read_frame(&mut reader, None) {
            Err(WireError::Remote { code: c, .. }) => assert_eq!(c, code::MALFORMED),
            other => panic!("expected malformed, got {other:?}"),
        }
    }

    #[test]
    fn non_utf8_payload_is_malformed() {
        let mut wire = 2u32.to_be_bytes().to_vec();
        wire.extend_from_slice(&[0xff, 0xfe]);
        let mut reader = std::io::Cursor::new(wire);
        match read_frame(&mut reader, None) {
            Err(WireError::Remote { code: c, .. }) => assert_eq!(c, code::MALFORMED),
            other => panic!("expected malformed, got {other:?}"),
        }
    }
}
