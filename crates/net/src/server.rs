//! The serving primary: a TCP front end over one [`SchedService`].
//!
//! Two listeners, both thread-per-connection over the framing in
//! [`crate::frame`]:
//!
//! * the **service port** speaks the request/response grammar
//!   ([`crate::proto`]) — submits pipeline through
//!   [`SchedService::submit_async`] and group-commit through
//!   [`SchedService::sync`], so N connections submitting concurrently get
//!   the same amortized-fsync behaviour local threads do;
//! * the **replication port** ([`crate::repl`]) streams raw journal bytes
//!   to warm standbys.
//!
//! Shutdown is graceful by construction: every accept loop and every
//! connection loop polls one shared stop flag between frames, `join`
//! drains them all and then issues a final `sync(u64::MAX)` so nothing a
//! client saw settled is lost.

use crate::error::{code, WireError};
use crate::frame::{queue_frame, read_frame, write_frame, FrameRead};
use crate::metrics::NetMetrics;
use crate::proto;
use crate::repl;
use hsched_engine::{EngineOp, EngineRequest, SchedService};
use std::collections::{HashMap, VecDeque};
use std::io::Write as _;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// How long a blocked accept/read sleeps before re-checking the stop
/// flag. Short enough that shutdown feels immediate, long enough to stay
/// invisible in profiles.
pub const POLL_INTERVAL: Duration = Duration::from_millis(25);

/// Admission backpressure: how many issued-but-not-yet-durable epochs the
/// server tolerates before it *sheds* new submits with a retryable
/// [`code::OVERLOADED`] error instead of letting every connection pile up
/// behind the same fsync queue. Shedding keeps the server responsive
/// (sync/stats/digest still answer) and pushes the waiting to clients,
/// who hold the `retry-after-ms` hint.
#[derive(Debug, Clone)]
pub struct ShedPolicy {
    /// Pending-epoch cap ([`SchedService::pending_epochs`] at or above
    /// this sheds).
    pub max_pending: u64,
    /// The advisory `retry-after-ms=` hint shed replies carry.
    pub retry_after_ms: u64,
}

impl Default for ShedPolicy {
    fn default() -> ShedPolicy {
        ShedPolicy {
            max_pending: 512,
            retry_after_ms: 50,
        }
    }
}

/// Remembered epoch replies keyed by client idempotency ticket, so a
/// retried-but-already-committed submit is recognized and answered with
/// its original reply instead of committing twice. Bounded FIFO: the
/// oldest entry falls out past `cap` — a retry arriving *that* late gets
/// recommitted, which the protocol accepts (tickets protect the retry
/// window, not forever).
pub struct DedupTable {
    cap: usize,
    inner: Mutex<(HashMap<String, String>, VecDeque<String>)>,
}

impl DedupTable {
    /// A table remembering up to `cap` replies.
    pub fn new(cap: usize) -> DedupTable {
        DedupTable {
            cap,
            inner: Mutex::new((HashMap::new(), VecDeque::new())),
        }
    }

    /// The stored reply for `ticket`, if still remembered.
    pub fn lookup(&self, ticket: &str) -> Option<String> {
        self.inner
            .lock()
            .expect("dedup table poisoned")
            .0
            .get(ticket)
            .cloned()
    }

    /// Remembers `reply` under `ticket`, evicting the oldest entry past
    /// the cap.
    pub fn record(&self, ticket: &str, reply: &str) {
        let mut inner = self.inner.lock().expect("dedup table poisoned");
        let (map, order) = &mut *inner;
        if map.insert(ticket.to_string(), reply.to_string()).is_none() {
            order.push_back(ticket.to_string());
            while order.len() > self.cap {
                if let Some(evicted) = order.pop_front() {
                    map.remove(&evicted);
                }
            }
        }
    }
}

impl std::fmt::Debug for DedupTable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.lock().expect("dedup table poisoned");
        write!(f, "DedupTable({}/{})", inner.0.len(), self.cap)
    }
}

/// Everything a connection handler can reach: the engine, the wire
/// telemetry sink, and the server's stop flag.
pub struct ConnCtx {
    /// The engine this server fronts.
    pub engine: Arc<SchedService>,
    /// Wire-layer telemetry (shared by every connection).
    pub metrics: Arc<NetMetrics>,
    /// Set when the server is draining; handlers finish the in-flight
    /// frame and close.
    pub stop: Arc<AtomicBool>,
    /// Admission backpressure policy for submit frames.
    pub shed: ShedPolicy,
    /// Ticket → stored-reply dedup for retried submits.
    pub dedup: Arc<DedupTable>,
}

/// A pluggable per-connection protocol: the default is the framed
/// envelope handler ([`handle_service_conn`]); the CLI swaps in a
/// JSON-lines handler for `hsched serve --json-lines`.
pub type ConnHandler = Arc<dyn Fn(TcpStream, &ConnCtx) + Send + Sync>;

/// Server configuration. `service_addr` is required; replication needs
/// both `repl_addr` and `journal_path` (the streamer reads raw bytes
/// straight from the journal file).
pub struct ServerConfig {
    /// Bind address of the service port (use port 0 to let the OS pick).
    pub service_addr: String,
    /// Bind address of the replication port, if this primary feeds
    /// standbys.
    pub repl_addr: Option<String>,
    /// Path of the engine's attached journal (required with `repl_addr`).
    pub journal_path: Option<PathBuf>,
    /// Heartbeat cadence: how often the server drains for a consistent
    /// `(epoch, digest)` pair and offers it to followers. Heartbeats
    /// quiesce the pipeline — keep this well above the epoch rate.
    pub heartbeat_interval: Duration,
    /// Connection protocol override (`None` = the framed envelope
    /// handler).
    pub handler: Option<ConnHandler>,
    /// Admission backpressure (see [`ShedPolicy`]).
    pub shed: ShedPolicy,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            service_addr: "127.0.0.1:0".to_string(),
            repl_addr: None,
            journal_path: None,
            heartbeat_interval: Duration::from_millis(500),
            handler: None,
            shed: ShedPolicy::default(),
        }
    }
}

impl std::fmt::Debug for ServerConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServerConfig")
            .field("service_addr", &self.service_addr)
            .field("repl_addr", &self.repl_addr)
            .field("journal_path", &self.journal_path)
            .field("heartbeat_interval", &self.heartbeat_interval)
            .field("handler", &self.handler.as_ref().map(|_| "<custom>"))
            .field("shed", &self.shed)
            .finish()
    }
}

struct Shared {
    ctx: ConnCtx,
    conns: Mutex<Vec<JoinHandle<()>>>,
}

/// A running server. Dropping the handle does *not* stop the server —
/// call [`ServerHandle::stop`] then [`ServerHandle::join`].
pub struct ServerHandle {
    service_addr: SocketAddr,
    repl_addr: Option<SocketAddr>,
    shared: Arc<Shared>,
    accepts: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound service address.
    pub fn service_addr(&self) -> SocketAddr {
        self.service_addr
    }

    /// The bound replication address, if replication is on.
    pub fn repl_addr(&self) -> Option<SocketAddr> {
        self.repl_addr
    }

    /// The server's stop flag (shared with every connection thread).
    pub fn stop_flag(&self) -> Arc<AtomicBool> {
        self.shared.ctx.stop.clone()
    }

    /// Requests a drain: accept loops stop accepting, connection loops
    /// close after their in-flight frame. Idempotent.
    pub fn stop(&self) {
        self.shared.ctx.stop.store(true, Ordering::SeqCst);
    }

    /// Drains the server: joins the accept loops, then every connection
    /// thread, then issues the final group commit so every settled epoch
    /// is durable before the process exits. Returns the last synced
    /// epoch.
    pub fn join(self) -> Result<u64, WireError> {
        self.stop();
        for accept in self.accepts {
            let _ = accept.join();
        }
        let conns = {
            let mut held = self.shared.conns.lock().expect("conn registry poisoned");
            std::mem::take(&mut *held)
        };
        for conn in conns {
            let _ = conn.join();
        }
        self.shared
            .ctx
            .engine
            .sync(u64::MAX)
            .map_err(WireError::from_engine)
    }
}

/// The server front door: binds the listener(s), spawns the accept
/// loops (and, with replication configured, the heartbeat thread and the
/// durable-mark subscription), and returns a handle.
pub struct Server;

impl Server {
    /// Starts serving `engine` per `config`.
    pub fn start(
        engine: Arc<SchedService>,
        config: ServerConfig,
    ) -> Result<ServerHandle, WireError> {
        let metrics = Arc::new(NetMetrics::new());
        let stop = Arc::new(AtomicBool::new(false));
        let shared = Arc::new(Shared {
            ctx: ConnCtx {
                engine: engine.clone(),
                metrics: metrics.clone(),
                stop: stop.clone(),
                shed: config.shed.clone(),
                dedup: Arc::new(DedupTable::new(1024)),
            },
            conns: Mutex::new(Vec::new()),
        });
        let handler: ConnHandler = config
            .handler
            .unwrap_or_else(|| Arc::new(handle_service_conn));

        let listener = TcpListener::bind(&config.service_addr)?;
        let service_addr = listener.local_addr()?;
        let mut accepts = Vec::new();
        {
            let shared = shared.clone();
            accepts.push(std::thread::spawn(move || {
                accept_loop(listener, shared, move |stream, ctx| handler(stream, ctx));
            }));
        }

        let mut repl_addr = None;
        if let Some(addr) = &config.repl_addr {
            let journal_path = config.journal_path.clone().ok_or_else(|| {
                WireError::Protocol("replication requires the journal path".to_string())
            })?;
            let repl = Arc::new(repl::ReplShared::install(
                &engine,
                journal_path,
                config.heartbeat_interval,
                stop.clone(),
            )?);
            let listener = TcpListener::bind(addr)?;
            repl_addr = Some(listener.local_addr()?);
            let shared2 = shared.clone();
            accepts.push(std::thread::spawn(move || {
                accept_loop(listener, shared2, move |stream, ctx| {
                    repl::handle_follower_conn(stream, ctx, &repl)
                });
            }));
        }

        Ok(ServerHandle {
            service_addr,
            repl_addr,
            shared,
            accepts,
        })
    }
}

fn accept_loop(
    listener: TcpListener,
    shared: Arc<Shared>,
    handle: impl Fn(TcpStream, &ConnCtx) + Send + Sync + 'static,
) {
    let handle = Arc::new(handle);
    if listener.set_nonblocking(true).is_err() {
        return;
    }
    while !shared.ctx.stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                if hsched_faults::hit(hsched_faults::Site::ConnAccept) {
                    // Injected accept failure: the connection is dropped
                    // before the greeting, as if the listener backlog
                    // overflowed — the client sees an immediate EOF.
                    drop(stream);
                    continue;
                }
                // The accepted socket inherits nonblocking on some
                // platforms; connection loops want timeout-based reads.
                if stream.set_nonblocking(false).is_err() {
                    continue;
                }
                let _ = stream.set_nodelay(true);
                shared.ctx.metrics.connections.incr();
                let shared2 = shared.clone();
                let handle2 = handle.clone();
                let conn = std::thread::spawn(move || {
                    handle2(stream, &shared2.ctx);
                });
                shared
                    .conns
                    .lock()
                    .expect("conn registry poisoned")
                    .push(conn);
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(POLL_INTERVAL);
            }
            Err(_) => std::thread::sleep(POLL_INTERVAL),
        }
    }
}

/// What a dispatched frame asks the connection loop to do next.
enum Flow {
    /// Send this payload and keep the connection.
    Reply(String),
    /// Close the connection cleanly (the `quit` frame).
    Quit,
}

/// The default service-port connection: greet, then a frame loop.
/// Engine errors become typed `error` frames and the connection
/// survives; grammar violations become one `error` frame and drop
/// **only this connection** — the accept loop and every sibling keep
/// running.
///
/// Both halves are buffered: a pipelining client's burst of frames comes
/// up in a handful of reads, and the matching replies queue in the write
/// buffer until the inbound buffer drains — the flush happens exactly
/// when the loop is about to block on the socket, so lockstep clients
/// still get every reply immediately and a burst pays one flush, not one
/// per frame.
pub fn handle_service_conn(stream: TcpStream, ctx: &ConnCtx) {
    if stream.set_read_timeout(Some(POLL_INTERVAL * 4)).is_err() {
        return;
    }
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = std::io::BufReader::new(read_half);
    let mut writer = std::io::BufWriter::new(stream);
    match write_frame(&mut writer, proto::SERVICE_GREETING) {
        Ok(n) => {
            ctx.metrics.frames_out.incr();
            ctx.metrics.bytes_out.add(n);
        }
        Err(_) => return,
    }
    loop {
        // About to touch the socket: release every queued reply first.
        if reader.buffer().is_empty() && writer.flush().is_err() {
            return;
        }
        let payload = match read_frame(&mut reader, Some(&ctx.stop)) {
            Ok(FrameRead::Frame(payload)) => payload,
            Ok(FrameRead::Idle) => {
                if ctx.stop.load(Ordering::SeqCst) {
                    return;
                }
                continue;
            }
            Ok(FrameRead::Eof) => return,
            Err(e) => {
                ctx.metrics.malformed_rejects.incr();
                let _ = write_frame(&mut writer, &proto::encode_error(&e));
                return;
            }
        };
        ctx.metrics.frames_in.incr();
        ctx.metrics.bytes_in.add(4 + payload.len() as u64);
        match dispatch(ctx, &payload) {
            Ok(Flow::Reply(reply)) => match queue_frame(&mut writer, &reply) {
                Ok(n) => {
                    ctx.metrics.frames_out.incr();
                    ctx.metrics.bytes_out.add(n);
                }
                Err(_) => return,
            },
            Ok(Flow::Quit) => {
                let _ = writer.flush();
                return;
            }
            Err(e) => {
                // Grammar violation: report it, drop this connection.
                ctx.metrics.malformed_rejects.incr();
                let _ = write_frame(&mut writer, &proto::encode_error(&e));
                return;
            }
        }
    }
}

fn dispatch(ctx: &ConnCtx, payload: &str) -> Result<Flow, WireError> {
    match proto::keyword(payload) {
        "submit" => {
            let (mode, version, batch, ticket) = proto::parse_submit(payload)?;
            // A retried ticket whose reply we remember: replay the stored
            // reply; the batch must NOT commit a second time.
            if let Some(id) = &ticket {
                if let Some(stored) = ctx.dedup.lookup(id) {
                    ctx.metrics.dedup_hits.incr();
                    return Ok(Flow::Reply(stored));
                }
            }
            // Admission backpressure: shed rather than queue behind the
            // fsync backlog. Checked *after* dedup — replaying a stored
            // reply adds no load.
            let pending = ctx.engine.pending_epochs();
            if pending >= ctx.shed.max_pending {
                ctx.engine.note_shed();
                ctx.metrics.shed_replies.incr();
                return Ok(Flow::Reply(proto::encode_error(&WireError::remote(
                    code::OVERLOADED,
                    format!(
                        "server overloaded: {pending} epochs pending (cap {}); retry-after-ms={}",
                        ctx.shed.max_pending, ctx.shed.retry_after_ms
                    ),
                ))));
            }
            let request = EngineRequest {
                version,
                ops: batch.into_iter().map(EngineOp::Admission).collect(),
            };
            let outcome = match mode {
                proto::SubmitMode::Sync => ctx.engine.submit(&request),
                proto::SubmitMode::Async => ctx
                    .engine
                    .submit_async(&request)
                    .map(|ticket| ticket.response),
            };
            Ok(Flow::Reply(match outcome {
                Ok(response) => {
                    let reply = proto::encode_epoch(&response);
                    // Only committed epochs are remembered: an engine
                    // error consumes no epoch, so retrying it is safe
                    // without dedup.
                    if let Some(id) = &ticket {
                        ctx.dedup.record(id, &reply);
                    }
                    reply
                }
                // Engine errors are request-scoped: typed frame, keep the
                // connection.
                Err(e) => proto::encode_error(&WireError::from_engine(e)),
            }))
        }
        "sync" => {
            let watermark = proto::parse_sync(payload)?;
            Ok(Flow::Reply(match ctx.engine.sync(watermark) {
                Ok(covered) => proto::encode_synced(covered),
                Err(e) => proto::encode_error(&WireError::from_engine(e)),
            }))
        }
        "stats" => {
            let mut snap = ctx.engine.metrics();
            snap.merge(&ctx.metrics.snapshot());
            Ok(Flow::Reply(proto::encode_stats(&snap)))
        }
        "digest" => {
            let (epoch, digest) = ctx.engine.epoch_digest();
            Ok(Flow::Reply(proto::encode_digest(epoch, &digest)))
        }
        "quit" => Ok(Flow::Quit),
        other => Err(WireError::remote(
            code::MALFORMED,
            format!("unknown frame keyword `{other}`"),
        )),
    }
}
