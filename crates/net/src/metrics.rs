//! Per-connection and replication telemetry (`net.*`), built on the same
//! always-on counters/histograms every other layer uses. A serving
//! primary merges this sink into the engine's snapshot for `stats`
//! frames, so a remote `hsched stats --remote` sees engine, admission,
//! analysis, *and* wire counters in one envelope.

use hsched_telemetry::{Counter, Histogram, MetricsSnapshot};

/// The wire layer's telemetry sink (one per server, shared by every
/// connection thread).
#[derive(Debug, Default)]
pub struct NetMetrics {
    /// Connections accepted (service + replication ports).
    pub connections: Counter,
    /// Frames received.
    pub frames_in: Counter,
    /// Frames sent.
    pub frames_out: Counter,
    /// Bytes received (prefix + payload).
    pub bytes_in: Counter,
    /// Bytes sent (prefix + payload).
    pub bytes_out: Counter,
    /// Malformed or protocol-violating frames that dropped a connection.
    pub malformed_rejects: Counter,
    /// Raw journal bytes streamed to followers.
    pub repl_bytes_streamed: Counter,
    /// Replication lag per follower ack, in *records* (primary's durable
    /// epoch minus the follower's applied epoch at ack time).
    pub repl_lag_records: Histogram,
}

impl NetMetrics {
    /// Fresh zeroed sink.
    pub fn new() -> NetMetrics {
        NetMetrics::default()
    }

    /// Point-in-time snapshot under the `net.` prefix.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let mut snap = MetricsSnapshot::default();
        snap.put_counter("net.connections", self.connections.get());
        snap.put_counter("net.frames_in", self.frames_in.get());
        snap.put_counter("net.frames_out", self.frames_out.get());
        snap.put_counter("net.bytes_in", self.bytes_in.get());
        snap.put_counter("net.bytes_out", self.bytes_out.get());
        snap.put_counter("net.malformed_rejects", self.malformed_rejects.get());
        snap.put_counter("net.repl.bytes_streamed", self.repl_bytes_streamed.get());
        snap.put_histogram("net.repl.lag_records", self.repl_lag_records.snapshot());
        snap
    }
}
