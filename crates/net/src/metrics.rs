//! Per-connection and replication telemetry (`net.*`), built on the same
//! always-on counters/histograms every other layer uses. A serving
//! primary merges this sink into the engine's snapshot for `stats`
//! frames, so a remote `hsched stats --remote` sees engine, admission,
//! analysis, *and* wire counters in one envelope.

use hsched_telemetry::{Counter, Histogram, MetricsSnapshot};

/// The wire layer's telemetry sink (one per server, shared by every
/// connection thread).
#[derive(Debug, Default)]
pub struct NetMetrics {
    /// Connections accepted (service + replication ports).
    pub connections: Counter,
    /// Frames received.
    pub frames_in: Counter,
    /// Frames sent.
    pub frames_out: Counter,
    /// Bytes received (prefix + payload).
    pub bytes_in: Counter,
    /// Bytes sent (prefix + payload).
    pub bytes_out: Counter,
    /// Malformed or protocol-violating frames that dropped a connection.
    pub malformed_rejects: Counter,
    /// Raw journal bytes streamed to followers.
    pub repl_bytes_streamed: Counter,
    /// Replication lag per follower ack, in *records* (primary's durable
    /// epoch minus the follower's applied epoch at ack time).
    pub repl_lag_records: Histogram,
    /// Retries performed by [`crate::RetryClient`]s wired to this sink
    /// (reconnects and re-sends after transient failures).
    pub client_retries: Counter,
    /// Submissions answered with [`crate::code::OVERLOADED`] (shed under
    /// admission backpressure).
    pub shed_replies: Counter,
    /// Submit frames whose idempotency ticket matched a stored reply —
    /// a retried batch recognized instead of recommitted.
    pub dedup_hits: Counter,
}

impl NetMetrics {
    /// Fresh zeroed sink.
    pub fn new() -> NetMetrics {
        NetMetrics::default()
    }

    /// Point-in-time snapshot under the `net.` prefix.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let mut snap = MetricsSnapshot::default();
        snap.put_counter("net.connections", self.connections.get());
        snap.put_counter("net.frames_in", self.frames_in.get());
        snap.put_counter("net.frames_out", self.frames_out.get());
        snap.put_counter("net.bytes_in", self.bytes_in.get());
        snap.put_counter("net.bytes_out", self.bytes_out.get());
        snap.put_counter("net.malformed_rejects", self.malformed_rejects.get());
        snap.put_counter("net.repl.bytes_streamed", self.repl_bytes_streamed.get());
        snap.put_histogram("net.repl.lag_records", self.repl_lag_records.snapshot());
        snap.put_counter("net.client.retries", self.client_retries.get());
        snap.put_counter("net.shed.replies", self.shed_replies.get());
        snap.put_counter("net.dedup.hits", self.dedup_hits.get());
        // When a fault plan is active, surface its per-site injection
        // counts so an operator (or the chaos gate) can see what actually
        // fired — `net.faults.journal.torn`, `net.faults.frame.drop`, ….
        if let Some(plan) = hsched_faults::active() {
            for site in hsched_faults::Site::ALL {
                snap.put_counter(&format!("net.faults.{}", site.name()), plan.injected(site));
            }
        }
        snap
    }
}
