//! Journal-streaming replication, primary side.
//!
//! One [`ReplShared`] per server holds the pieces every follower
//! connection shares:
//!
//! * a **durable mark** — the `(bytes, epoch)` high-water pair, advanced
//!   by a single [`SchedService::subscribe_durable`] registration made at
//!   server start (journal subscriptions cannot be removed, so
//!   per-connection registrations would leak one closure per follower
//!   ever seen);
//! * the latest **heartbeat** — a consistent `(epoch, digest)` pair
//!   refreshed at low rate by one server-level thread (digests quiesce
//!   the pipeline; per-follower digests would multiply that cost).
//!
//! Each follower connection gets its own streamer loop that reads raw
//! bytes straight from the journal file — replication ships the journal
//! *verbatim*, so a follower's mirror is byte-identical to the primary's
//! prefix and `hsched replay` of either file is interchangeable.
//!
//! Resume: the follower's `follow <offset> <fnv16>` handshake claims it
//! already holds `offset` bytes whose FNV-1a digest is `fnv16`. The
//! primary accepts only if its own first `offset` bytes hash identically
//! — otherwise (diverged mirror, compacted journal) it orders a `reset`
//! and the follower rebuilds from byte 0. Acceptance is cheap relative
//! to re-streaming a long journal and makes mid-record disconnects safe:
//! the follower re-offers its last *committed* prefix, never a torn one.

use crate::error::{code, WireError};
use crate::frame::{read_frame, write_frame, FrameRead};
use crate::proto;
use crate::server::{ConnCtx, POLL_INTERVAL};
use hsched_engine::{DurableMark, SchedService};
use std::io::{Read, Seek, SeekFrom};
use std::net::TcpStream;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

/// Upper bound on one `jbytes` chunk (journal bytes per frame). Well
/// under [`crate::frame::MAX_FRAME_BYTES`]; a long catch-up is simply
/// many chunks.
pub const CHUNK_BYTES: u64 = 256 * 1024;

/// FNV-1a 64-bit digest (the replication prefix check). Matches the
/// engine's digest primitive: offset basis `0xcbf29ce484222325`, prime
/// `0x100000001b3`.
pub fn fnv1a_64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &byte in bytes {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x100_0000_01b3);
    }
    hash
}

/// FNV-1a 64 of the first `prefix` bytes of the file at `path`, streamed
/// (a journal can be long; nothing here holds it in memory).
pub fn file_prefix_digest(path: &std::path::Path, prefix: u64) -> Result<u64, WireError> {
    let mut file = std::fs::File::open(path)?;
    let mut remaining = prefix;
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    let mut buf = [0u8; 8192];
    while remaining > 0 {
        let want = buf.len().min(remaining as usize);
        let got = file.read(&mut buf[..want])?;
        if got == 0 {
            return Err(WireError::remote(
                code::BAD_OFFSET,
                format!("journal holds fewer than {prefix} bytes"),
            ));
        }
        for &byte in &buf[..got] {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x100_0000_01b3);
        }
        remaining -= got as u64;
    }
    Ok(hash)
}

struct MarkState {
    mark: Mutex<DurableMark>,
    advanced: Condvar,
}

/// Replication state shared by every follower connection of one server.
pub struct ReplShared {
    engine: Arc<SchedService>,
    journal_path: PathBuf,
    marks: Arc<MarkState>,
    heartbeat: Arc<Mutex<Option<(u64, String)>>>,
}

impl ReplShared {
    /// Wires replication into a serving engine: registers the one
    /// durable-mark subscriber and spawns the heartbeat thread (which
    /// also group-commits settled epochs at each beat, so pipelined
    /// submits reach followers even if no client ever sends `sync`).
    /// Errors if the engine has no attached journal.
    pub fn install(
        engine: &Arc<SchedService>,
        journal_path: PathBuf,
        heartbeat_interval: Duration,
        stop: Arc<AtomicBool>,
    ) -> Result<ReplShared, WireError> {
        let (bytes, epoch) = engine.durable_journal().ok_or_else(|| {
            WireError::remote(
                code::JOURNAL,
                "replication requires an engine with an attached journal",
            )
        })?;
        let marks = Arc::new(MarkState {
            mark: Mutex::new(DurableMark { bytes, epoch }),
            advanced: Condvar::new(),
        });
        {
            let marks = marks.clone();
            engine
                .subscribe_durable(Arc::new(move |new: DurableMark| {
                    let mut mark = marks.mark.lock().expect("durable mark poisoned");
                    // Subscribers can observe marks out of order (the
                    // notifications run outside the engine's core lock),
                    // so the shared mark is a component-wise running max.
                    // Compaction *shrinks* the prefix; streamers detect
                    // that through the engine's compaction counter, not
                    // through this mark.
                    if new.bytes > mark.bytes || new.epoch > mark.epoch {
                        mark.bytes = mark.bytes.max(new.bytes);
                        mark.epoch = mark.epoch.max(new.epoch);
                        marks.advanced.notify_all();
                    }
                }))
                .map_err(WireError::from_engine)?;
        }
        let heartbeat = Arc::new(Mutex::new(None));
        {
            let engine = engine.clone();
            let heartbeat = heartbeat.clone();
            std::thread::spawn(move || {
                while !stop.load(Ordering::SeqCst) {
                    // Group-commit whatever settled, then capture one
                    // consistent (epoch, digest) pair for followers to
                    // cross-check against. A poisoned journal stops the
                    // beats; followers notice the silence, operators
                    // notice the submit errors.
                    if engine.sync(u64::MAX).is_err() {
                        return;
                    }
                    let pair = engine.epoch_digest();
                    *heartbeat.lock().expect("heartbeat pair poisoned") = Some(pair);
                    let mut slept = Duration::ZERO;
                    while slept < heartbeat_interval && !stop.load(Ordering::SeqCst) {
                        std::thread::sleep(POLL_INTERVAL);
                        slept += POLL_INTERVAL;
                    }
                }
            });
        }
        Ok(ReplShared {
            engine: engine.clone(),
            journal_path,
            marks,
            heartbeat,
        })
    }

    fn compaction_count(&self) -> u64 {
        self.engine.metrics().counter("engine.journal.compactions")
    }

    fn current_mark(&self) -> DurableMark {
        *self.marks.mark.lock().expect("durable mark poisoned")
    }
}

fn send(stream: &mut TcpStream, ctx: &ConnCtx, payload: &str) -> Result<(), WireError> {
    let n = write_frame(stream, payload)?;
    ctx.metrics.frames_out.incr();
    ctx.metrics.bytes_out.add(n);
    Ok(())
}

/// One follower connection: handshake (greet, verify the resume offer),
/// then the streamer loop — ship new durable bytes as `jbytes` chunks,
/// relay heartbeats, absorb `ack`s into the lag histogram, and order a
/// `reset` if the journal is compacted out from under the stream.
pub fn handle_follower_conn(mut stream: TcpStream, ctx: &ConnCtx, repl: &ReplShared) {
    if stream.set_read_timeout(Some(POLL_INTERVAL)).is_err() {
        return;
    }
    if send(&mut stream, ctx, proto::REPL_GREETING).is_err() {
        return;
    }
    // Handshake: wait for the follower's resume offer.
    let offer = loop {
        match read_frame(&mut stream, Some(&ctx.stop)) {
            Ok(FrameRead::Frame(payload)) => break payload,
            Ok(FrameRead::Idle) => {
                if ctx.stop.load(Ordering::SeqCst) {
                    return;
                }
            }
            Ok(FrameRead::Eof) | Err(_) => return,
        }
    };
    ctx.metrics.frames_in.incr();
    ctx.metrics.bytes_in.add(4 + offer.len() as u64);
    let (offset, claimed) = match proto::parse_follow(&offer) {
        Ok(parsed) => parsed,
        Err(e) => {
            ctx.metrics.malformed_rejects.incr();
            let _ = send(&mut stream, ctx, &proto::encode_error(&e));
            return;
        }
    };
    let mark = {
        // The subscription mark only moves on syncs after install; fold
        // in the live engine view so a fresh server accepts immediately.
        let live = repl.engine.durable_journal().unwrap_or((0, 0));
        let mut mark = repl.current_mark();
        mark.bytes = mark.bytes.max(live.0);
        mark.epoch = mark.epoch.max(live.1);
        mark
    };
    if offset > mark.bytes {
        let _ = send(
            &mut stream,
            ctx,
            &proto::encode_reset(&format!(
                "resume offset {offset} is past the durable prefix ({} bytes)",
                mark.bytes
            )),
        );
        return;
    }
    match file_prefix_digest(&repl.journal_path, offset) {
        Ok(actual) if actual == claimed => {}
        Ok(_) => {
            let _ = send(
                &mut stream,
                ctx,
                &proto::encode_reset(&format!("prefix digest mismatch at offset {offset}")),
            );
            return;
        }
        Err(e) => {
            let _ = send(&mut stream, ctx, &proto::encode_error(&e));
            return;
        }
    }
    if send(
        &mut stream,
        ctx,
        &proto::encode_streaming(mark.bytes, mark.epoch),
    )
    .is_err()
    {
        return;
    }

    let base_compactions = repl.compaction_count();
    let mut sent = offset;
    let mut last_heartbeat: Option<u64> = None;
    let mut idle_rounds = 0u32;
    loop {
        if ctx.stop.load(Ordering::SeqCst) {
            return;
        }
        // Absorb follower traffic; the read timeout doubles as the
        // loop's pacing when nothing is happening.
        match read_frame(&mut stream, Some(&ctx.stop)) {
            Ok(FrameRead::Frame(payload)) => {
                ctx.metrics.frames_in.incr();
                ctx.metrics.bytes_in.add(4 + payload.len() as u64);
                match proto::parse_ack(&payload) {
                    Ok(applied) => {
                        let durable_epoch = repl.current_mark().epoch;
                        ctx.metrics
                            .repl_lag_records
                            .record(durable_epoch.saturating_sub(applied));
                    }
                    Err(e) => {
                        ctx.metrics.malformed_rejects.incr();
                        let _ = send(&mut stream, ctx, &proto::encode_error(&e));
                        return;
                    }
                }
            }
            Ok(FrameRead::Idle) => {}
            Ok(FrameRead::Eof) | Err(_) => return,
        }
        // Periodically (and always before touching the file) make sure
        // the journal we are streaming is still the journal we opened
        // the stream against.
        idle_rounds += 1;
        let mark = repl.current_mark();
        if mark.bytes > sent || idle_rounds >= 40 {
            idle_rounds = 0;
            if repl.compaction_count() != base_compactions {
                let _ = send(&mut stream, ctx, &proto::encode_reset("journal compacted"));
                return;
            }
        }
        if mark.bytes > sent && stream_bytes(&mut stream, ctx, repl, &mut sent, mark.bytes).is_err()
        {
            return;
        }
        // Relay the latest heartbeat once per refresh. The follower may
        // not have applied that epoch yet — it holds the pair pending
        // and checks after each apply.
        let beat = repl
            .heartbeat
            .lock()
            .expect("heartbeat pair poisoned")
            .clone();
        if let Some((epoch, digest)) = beat {
            if last_heartbeat != Some(epoch)
                && send(&mut stream, ctx, &proto::encode_digest(epoch, &digest)).is_err()
            {
                return;
            }
            last_heartbeat = Some(epoch);
        }
    }
}

fn stream_bytes(
    stream: &mut TcpStream,
    ctx: &ConnCtx,
    repl: &ReplShared,
    sent: &mut u64,
    upto: u64,
) -> Result<(), WireError> {
    // A fresh handle per burst: bursts are rare next to frames, and a
    // long-lived handle would keep a compacted-away inode alive.
    let mut file = std::fs::File::open(&repl.journal_path)?;
    file.seek(SeekFrom::Start(*sent))?;
    while *sent < upto {
        let want = (upto - *sent).min(CHUNK_BYTES) as usize;
        let mut buf = vec![0u8; want];
        file.read_exact(&mut buf)?;
        let text = String::from_utf8(buf).map_err(|_| {
            WireError::remote(
                code::INTERNAL,
                "journal bytes are not UTF-8 (format violation)",
            )
        })?;
        send(stream, ctx, &proto::encode_jbytes(*sent, &text))?;
        ctx.metrics.repl_bytes_streamed.add(want as u64);
        *sent += want as u64;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_matches_the_reference_vectors() {
        // Offset basis (empty input) and the classic test vector.
        assert_eq!(fnv1a_64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a_64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a_64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn file_prefix_digest_streams_and_bounds() {
        let dir = std::env::temp_dir().join(format!("hsched-net-fnv-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("prefix.bin");
        std::fs::write(&path, b"hello journal").unwrap();
        assert_eq!(file_prefix_digest(&path, 5).unwrap(), fnv1a_64(b"hello"));
        assert_eq!(file_prefix_digest(&path, 0).unwrap(), fnv1a_64(b""));
        match file_prefix_digest(&path, 1000) {
            Err(WireError::Remote { code: c, .. }) => assert_eq!(c, code::BAD_OFFSET),
            other => panic!("expected BAD_OFFSET, got {other:?}"),
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
