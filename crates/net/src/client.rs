//! The remote client: `hsched admit --remote` and `hsched stats
//! --remote` route through one of these, and the network bench drives
//! the split [`Client::send_submit`] / [`Client::recv_epoch`] halves to
//! keep several epochs in flight per connection.
//!
//! [`Client`] is the bare single-connection protocol driver: any
//! transport failure is surfaced and the connection is dead. For clients
//! that must survive flaky networks and load-shedding servers there is
//! [`RetryClient`], which wraps reconnection, exponential backoff with
//! deterministic jitter, and per-batch idempotency tickets (so a retry of
//! a batch the server already committed gets the original epoch reply
//! back instead of committing twice).

use crate::error::{retry_after_hint, WireError};
use crate::frame::{queue_frame, read_frame, FrameRead};
use crate::metrics::NetMetrics;
use crate::proto::{self, RemoteEpoch, SubmitMode};
use hsched_admission::AdmissionRequest;
use hsched_telemetry::MetricsSnapshot;
use std::io::{BufReader, BufWriter, Write as _};
use std::net::TcpStream;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// A connected service-port client. Both halves are buffered: queued
/// submit frames ride down in one flush, and a burst of pipelined
/// responses comes up in a handful of reads — the syscall count scales
/// with bursts, not frames.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
    read_timeout: Option<Duration>,
}

impl Client {
    /// Connects and consumes the greeting frame.
    pub fn connect(addr: &str) -> Result<Client, WireError> {
        Client::connect_with(addr, None)
    }

    /// Connects with an optional read timeout: a reply that takes longer
    /// than `timeout` surfaces as a `TimedOut` [`WireError::Io`] instead
    /// of blocking forever — the hang-detection half of a retry loop.
    pub fn connect_with(addr: &str, timeout: Option<Duration>) -> Result<Client, WireError> {
        if hsched_faults::hit(hsched_faults::Site::ConnDial) {
            return Err(WireError::Io(hsched_faults::injected_io_error(
                "dial refused",
            )));
        }
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        stream.set_read_timeout(timeout)?;
        let read_half = stream.try_clone()?;
        let mut client = Client {
            reader: BufReader::new(read_half),
            writer: BufWriter::new(stream),
            read_timeout: timeout,
        };
        let greeting = client.read_reply()?;
        if !greeting.starts_with("hsched-net") {
            return Err(WireError::Protocol(format!(
                "not an hsched service port (greeting `{}`)",
                proto::keyword(&greeting)
            )));
        }
        Ok(client)
    }

    /// One blocking frame read; EOF and `error` frames become errors.
    /// Every queued frame is flushed first — a blocked read must never
    /// hold back the requests its replies answer. `Idle` only happens on
    /// sockets configured with a read timeout
    /// ([`Client::connect_with`]) and is reported as a `TimedOut` I/O
    /// error: this client has no shutdown flag to poll, so an expired
    /// timeout means the reply is overdue.
    fn read_reply(&mut self) -> Result<String, WireError> {
        self.writer.flush()?;
        match read_frame(&mut self.reader, None)? {
            FrameRead::Frame(payload) => {
                if proto::keyword(&payload) == "error" {
                    Err(proto::parse_error(&payload)?)
                } else {
                    Ok(payload)
                }
            }
            FrameRead::Idle => match self.read_timeout {
                Some(timeout) => Err(WireError::Io(std::io::Error::new(
                    std::io::ErrorKind::TimedOut,
                    format!("no reply within {timeout:?}"),
                ))),
                None => unreachable!("client sockets without a timeout never report Idle"),
            },
            FrameRead::Eof => Err(WireError::Protocol(
                "server closed the connection".to_string(),
            )),
        }
    }

    /// Queues a submit frame without waiting for the response — the
    /// pipelining half. Pair each call with one [`Client::recv_epoch`];
    /// the queue flushes before any read (and whenever it fills).
    pub fn send_submit(
        &mut self,
        mode: SubmitMode,
        version: u32,
        batch: &[AdmissionRequest],
    ) -> Result<(), WireError> {
        queue_frame(
            &mut self.writer,
            &proto::encode_submit(mode, version, batch),
        )?;
        Ok(())
    }

    /// [`Client::send_submit`] with an idempotency ticket (see
    /// [`proto::encode_submit_ticketed`]).
    pub fn send_submit_ticketed(
        &mut self,
        mode: SubmitMode,
        version: u32,
        batch: &[AdmissionRequest],
        ticket: &str,
    ) -> Result<(), WireError> {
        queue_frame(
            &mut self.writer,
            &proto::encode_submit_ticketed(mode, version, batch, Some(ticket)),
        )?;
        Ok(())
    }

    /// Receives one epoch response (for a previously sent submit).
    pub fn recv_epoch(&mut self) -> Result<RemoteEpoch, WireError> {
        let reply = self.read_reply()?;
        proto::parse_epoch(&reply)
    }

    /// Lockstep submit: send one batch, wait for its epoch.
    pub fn submit(
        &mut self,
        mode: SubmitMode,
        version: u32,
        batch: &[AdmissionRequest],
    ) -> Result<RemoteEpoch, WireError> {
        self.send_submit(mode, version, batch)?;
        self.recv_epoch()
    }

    /// Lockstep ticketed submit: send one batch under an idempotency
    /// ticket, wait for its epoch.
    pub fn submit_ticketed(
        &mut self,
        mode: SubmitMode,
        version: u32,
        batch: &[AdmissionRequest],
        ticket: &str,
    ) -> Result<RemoteEpoch, WireError> {
        self.send_submit_ticketed(mode, version, batch, ticket)?;
        self.recv_epoch()
    }

    /// Group commit up to `watermark` (`None` = everything settled);
    /// returns the epoch the sync actually covered.
    pub fn sync(&mut self, watermark: Option<u64>) -> Result<u64, WireError> {
        queue_frame(&mut self.writer, &proto::encode_sync(watermark))?;
        let reply = self.read_reply()?;
        proto::parse_synced(&reply)
    }

    /// The server's merged telemetry snapshot (engine + admission +
    /// analysis + wire counters), histograms bucket-exact.
    pub fn stats(&mut self) -> Result<MetricsSnapshot, WireError> {
        queue_frame(&mut self.writer, "stats")?;
        let reply = self.read_reply()?;
        proto::parse_stats(&reply)
    }

    /// The server's consistent `(epoch, state digest)` pair. Quiesces
    /// the server's pipeline — an observer, not a hot-path call.
    pub fn digest(&mut self) -> Result<(u64, String), WireError> {
        queue_frame(&mut self.writer, "digest")?;
        let reply = self.read_reply()?;
        proto::parse_digest(&reply)
    }

    /// Polite goodbye (the server also handles a plain close).
    pub fn quit(mut self) -> Result<(), WireError> {
        queue_frame(&mut self.writer, "quit")?;
        self.writer.flush()?;
        Ok(())
    }
}

// ---------------------------------------------------------------- retry

/// Retry/backoff knobs for [`RetryClient`].
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Total attempts per logical operation (first try included).
    pub attempts: u32,
    /// Backoff before attempt 2 (doubles per further attempt).
    pub base_delay: Duration,
    /// Backoff ceiling.
    pub max_delay: Duration,
    /// Socket read timeout per attempt (`None` = block forever).
    pub timeout: Option<Duration>,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            attempts: 5,
            base_delay: Duration::from_millis(25),
            max_delay: Duration::from_secs(1),
            timeout: Some(Duration::from_secs(5)),
        }
    }
}

/// Process-unique session discriminator for ticket strings (tickets must
/// not collide across client instances talking to one server).
static SESSION_COUNTER: AtomicU64 = AtomicU64::new(0);

/// A service-port client that retries transient failures.
///
/// Semantics:
/// - Every logical submit carries a fresh idempotency **ticket**; all
///   retry attempts of that submit reuse the same ticket, so a batch
///   whose reply was lost in transit (committed server-side, connection
///   died before the epoch frame arrived) is *recognized* on retry — the
///   server replays the stored reply — never committed twice.
/// - Transport errors ([`WireError::Io`], [`WireError::Protocol`])
///   reconnect and retry; remote errors retry only when
///   [`crate::retryable`] says the code is load-dependent (e.g.
///   [`crate::code::OVERLOADED`], whose `retry-after-ms=` hint raises
///   the backoff floor).
/// - Backoff is exponential (`base_delay * 2^(attempt-1)`, capped at
///   `max_delay`) plus deterministic xorshift jitter seeded from the
///   session id, so two clients started together do not thundering-herd
///   the recovering server in lockstep.
pub struct RetryClient {
    addr: String,
    policy: RetryPolicy,
    conn: Option<Client>,
    session: u64,
    seq: u64,
    jitter: u64,
    retries: u64,
    metrics: Option<Arc<NetMetrics>>,
}

impl RetryClient {
    /// Creates a retrying client for `addr` (connects lazily).
    pub fn new(addr: impl Into<String>, policy: RetryPolicy) -> RetryClient {
        let session =
            SESSION_COUNTER.fetch_add(1, Ordering::SeqCst) ^ (std::process::id() as u64) << 32;
        RetryClient {
            addr: addr.into(),
            policy,
            conn: None,
            session,
            seq: 0,
            jitter: session | 1,
            retries: 0,
            metrics: None,
        }
    }

    /// Attaches a metric sink: every retry increments
    /// `net.client.retries`.
    pub fn with_metrics(mut self, metrics: Arc<NetMetrics>) -> RetryClient {
        self.metrics = Some(metrics);
        self
    }

    /// Retries performed so far (reconnects and re-sends, not first
    /// attempts).
    pub fn retries(&self) -> u64 {
        self.retries
    }

    fn next_ticket(&mut self) -> String {
        self.seq += 1;
        format!("s{:x}.{}", self.session, self.seq)
    }

    fn note_retry(&mut self) {
        self.retries += 1;
        if let Some(metrics) = &self.metrics {
            metrics.client_retries.incr();
        }
    }

    /// Deterministic jitter in `0..=cap` (xorshift64*).
    fn jitter_ms(&mut self, cap: u64) -> u64 {
        let mut x = self.jitter;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.jitter = x;
        if cap == 0 {
            0
        } else {
            x.wrapping_mul(0x2545_f491_4f6c_dd1d) % (cap + 1)
        }
    }

    /// Backoff before the next attempt: exponential in `attempt` (1-based
    /// count of *failed* attempts so far), floored at the server's
    /// `retry-after-ms` hint when the failure carried one.
    fn backoff(&mut self, attempt: u32, error: &WireError) -> Duration {
        let exp = self
            .policy
            .base_delay
            .saturating_mul(1u32 << (attempt - 1).min(16))
            .min(self.policy.max_delay);
        let hinted = match error {
            WireError::Remote { message, .. } => retry_after_hint(message)
                .map(Duration::from_millis)
                .unwrap_or(Duration::ZERO),
            _ => Duration::ZERO,
        };
        let base = exp.max(hinted);
        base + Duration::from_millis(self.jitter_ms(base.as_millis() as u64 / 2))
    }

    fn conn(&mut self) -> Result<&mut Client, WireError> {
        if self.conn.is_none() {
            self.conn = Some(Client::connect_with(&self.addr, self.policy.timeout)?);
        }
        Ok(self.conn.as_mut().expect("just connected"))
    }

    /// Runs one closure against the connection with the full retry loop:
    /// transient failures drop the connection (transport errors) or keep
    /// it (remote errors), back off, and try again.
    fn with_retries<T>(
        &mut self,
        mut op: impl FnMut(&mut Client) -> Result<T, WireError>,
    ) -> Result<T, WireError> {
        let mut attempt = 0u32;
        loop {
            attempt += 1;
            let result = match self.conn() {
                Ok(conn) => op(conn),
                Err(e) => Err(e),
            };
            let error = match result {
                Ok(value) => return Ok(value),
                Err(e) => e,
            };
            let transport = matches!(error, WireError::Io(_) | WireError::Protocol(_));
            if transport {
                // The connection is in an unknown framing state; a fresh
                // dial is the only safe continuation.
                self.conn = None;
            }
            if !error.transient() || attempt >= self.policy.attempts {
                return Err(error);
            }
            let delay = self.backoff(attempt, &error);
            self.note_retry();
            std::thread::sleep(delay);
        }
    }

    /// Lockstep submit with retries: the batch commits (and its reply
    /// arrives) exactly once even if connections die or the server sheds
    /// mid-way; returns the epoch response.
    pub fn submit(
        &mut self,
        mode: SubmitMode,
        version: u32,
        batch: &[AdmissionRequest],
    ) -> Result<RemoteEpoch, WireError> {
        let ticket = self.next_ticket();
        self.with_retries(move |conn| conn.submit_ticketed(mode, version, batch, &ticket))
    }

    /// Pipelined submit-all/receive-all with retries: every batch gets a
    /// pre-assigned ticket, unresolved batches are (re)sent in order and
    /// their replies collected; a transport error reconnects and resends
    /// only the still-unresolved suffix (the tickets make the resend
    /// safe), a shed (`overloaded`) reply leaves its batch unresolved for
    /// the next round. Returns the epoch replies in batch order.
    pub fn run_pipelined(
        &mut self,
        version: u32,
        batches: &[Vec<AdmissionRequest>],
    ) -> Result<Vec<RemoteEpoch>, WireError> {
        let tickets: Vec<String> = batches.iter().map(|_| self.next_ticket()).collect();
        let mut replies: Vec<Option<RemoteEpoch>> = vec![None; batches.len()];
        let mut attempt = 0u32;
        loop {
            attempt += 1;
            let unresolved: Vec<usize> = (0..batches.len())
                .filter(|&i| replies[i].is_none())
                .collect();
            if unresolved.is_empty() {
                return Ok(replies
                    .into_iter()
                    .map(|r| r.expect("all resolved"))
                    .collect());
            }
            let round = (|| -> Result<Option<WireError>, WireError> {
                if self.conn.is_none() {
                    self.conn = Some(Client::connect_with(&self.addr, self.policy.timeout)?);
                }
                let conn = self.conn.as_mut().expect("just connected");
                for &i in &unresolved {
                    conn.send_submit_ticketed(
                        SubmitMode::Async,
                        version,
                        &batches[i],
                        &tickets[i],
                    )?;
                }
                let mut shed: Option<WireError> = None;
                for &i in &unresolved {
                    match conn.recv_epoch() {
                        Ok(epoch) => replies[i] = Some(epoch),
                        // A retryable remote reply (shed) leaves slot `i`
                        // unresolved; the connection is still framed
                        // correctly, so keep draining the round's replies.
                        Err(e @ WireError::Remote { .. }) if e.transient() => {
                            shed = Some(e);
                        }
                        Err(e) => return Err(e),
                    }
                }
                Ok(shed)
            })();
            let error = match round {
                Ok(None) => continue,
                Ok(Some(shed)) => shed,
                Err(e) => {
                    self.conn = None;
                    e
                }
            };
            if !error.transient() || attempt >= self.policy.attempts {
                return Err(error);
            }
            let delay = self.backoff(attempt, &error);
            self.note_retry();
            std::thread::sleep(delay);
        }
    }

    /// [`Client::sync`] with retries. Safe: sync is idempotent.
    pub fn sync(&mut self, watermark: Option<u64>) -> Result<u64, WireError> {
        self.with_retries(|conn| conn.sync(watermark))
    }

    /// [`Client::stats`] with retries.
    pub fn stats(&mut self) -> Result<MetricsSnapshot, WireError> {
        self.with_retries(|conn| conn.stats())
    }

    /// [`Client::digest`] with retries.
    pub fn digest(&mut self) -> Result<(u64, String), WireError> {
        self.with_retries(|conn| conn.digest())
    }

    /// Polite goodbye on the live connection, if any.
    pub fn quit(mut self) -> Result<(), WireError> {
        match self.conn.take() {
            Some(conn) => conn.quit(),
            None => Ok(()),
        }
    }
}
