//! The remote client: `hsched admit --remote` and `hsched stats
//! --remote` route through one of these, and the network bench drives
//! the split [`Client::send_submit`] / [`Client::recv_epoch`] halves to
//! keep several epochs in flight per connection.

use crate::error::WireError;
use crate::frame::{queue_frame, read_frame, FrameRead};
use crate::proto::{self, RemoteEpoch, SubmitMode};
use hsched_admission::AdmissionRequest;
use hsched_telemetry::MetricsSnapshot;
use std::io::{BufReader, BufWriter, Write as _};
use std::net::TcpStream;

/// A connected service-port client. Both halves are buffered: queued
/// submit frames ride down in one flush, and a burst of pipelined
/// responses comes up in a handful of reads — the syscall count scales
/// with bursts, not frames.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
}

impl Client {
    /// Connects and consumes the greeting frame.
    pub fn connect(addr: &str) -> Result<Client, WireError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        let read_half = stream.try_clone()?;
        let mut client = Client {
            reader: BufReader::new(read_half),
            writer: BufWriter::new(stream),
        };
        let greeting = client.read_reply()?;
        if !greeting.starts_with("hsched-net") {
            return Err(WireError::Protocol(format!(
                "not an hsched service port (greeting `{}`)",
                proto::keyword(&greeting)
            )));
        }
        Ok(client)
    }

    /// One blocking frame read; `Idle` cannot happen (no read timeout is
    /// set on client sockets), EOF and `error` frames become errors.
    /// Every queued frame is flushed first — a blocked read must never
    /// hold back the requests its replies answer.
    fn read_reply(&mut self) -> Result<String, WireError> {
        self.writer.flush()?;
        match read_frame(&mut self.reader, None)? {
            FrameRead::Frame(payload) => {
                if proto::keyword(&payload) == "error" {
                    Err(proto::parse_error(&payload)?)
                } else {
                    Ok(payload)
                }
            }
            FrameRead::Idle => unreachable!("client sockets have no read timeout"),
            FrameRead::Eof => Err(WireError::Protocol(
                "server closed the connection".to_string(),
            )),
        }
    }

    /// Queues a submit frame without waiting for the response — the
    /// pipelining half. Pair each call with one [`Client::recv_epoch`];
    /// the queue flushes before any read (and whenever it fills).
    pub fn send_submit(
        &mut self,
        mode: SubmitMode,
        version: u32,
        batch: &[AdmissionRequest],
    ) -> Result<(), WireError> {
        queue_frame(
            &mut self.writer,
            &proto::encode_submit(mode, version, batch),
        )?;
        Ok(())
    }

    /// Receives one epoch response (for a previously sent submit).
    pub fn recv_epoch(&mut self) -> Result<RemoteEpoch, WireError> {
        let reply = self.read_reply()?;
        proto::parse_epoch(&reply)
    }

    /// Lockstep submit: send one batch, wait for its epoch.
    pub fn submit(
        &mut self,
        mode: SubmitMode,
        version: u32,
        batch: &[AdmissionRequest],
    ) -> Result<RemoteEpoch, WireError> {
        self.send_submit(mode, version, batch)?;
        self.recv_epoch()
    }

    /// Group commit up to `watermark` (`None` = everything settled);
    /// returns the epoch the sync actually covered.
    pub fn sync(&mut self, watermark: Option<u64>) -> Result<u64, WireError> {
        queue_frame(&mut self.writer, &proto::encode_sync(watermark))?;
        let reply = self.read_reply()?;
        proto::parse_synced(&reply)
    }

    /// The server's merged telemetry snapshot (engine + admission +
    /// analysis + wire counters), histograms bucket-exact.
    pub fn stats(&mut self) -> Result<MetricsSnapshot, WireError> {
        queue_frame(&mut self.writer, "stats")?;
        let reply = self.read_reply()?;
        proto::parse_stats(&reply)
    }

    /// The server's consistent `(epoch, state digest)` pair. Quiesces
    /// the server's pipeline — an observer, not a hot-path call.
    pub fn digest(&mut self) -> Result<(u64, String), WireError> {
        queue_frame(&mut self.writer, "digest")?;
        let reply = self.read_reply()?;
        proto::parse_digest(&reply)
    }

    /// Polite goodbye (the server also handles a plain close).
    pub fn quit(mut self) -> Result<(), WireError> {
        queue_frame(&mut self.writer, "quit")?;
        self.writer.flush()?;
        Ok(())
    }
}
