//! Typed wire errors and their stable numeric codes.
//!
//! Every error a peer can receive over the wire carries a code from
//! [`code`]; the codes are part of the protocol (`docs/WIRE_PROTOCOL.md`)
//! and never change meaning, so clients branch on numbers instead of
//! parsing message strings. Rejection *reasons* are not errors — they ride
//! in the response envelope with their own stable code space
//! ([`reason_code`]) so a client can tell a load-dependent rejection worth
//! retrying later (overload, unschedulable) from a hard one (structural,
//! analysis, numeric).
//!
//! Every code is declared through the `classified_codes!` macro, which forces an
//! explicit `retryable`/`fatal` classification at the declaration site and
//! collects the table the [`retryable`] predicate (and its exhaustiveness
//! test) walks — adding a code without deciding its retry class does not
//! compile.

use hsched_engine::EngineError;

/// Declares a module of stable `u16` codes where every entry must carry an
/// explicit retry classification (`retryable` or `fatal`). The module also
/// exports `CLASSIFIED: &[(u16, &str, bool)]` — `(value, name, retryable)`
/// for every declared code — which backs [`retryable`] and the exhaustive
/// classification test below.
macro_rules! classified_codes {
    (
        $(#[$mod_meta:meta])*
        pub mod $module:ident {
            $(
                $(#[$meta:meta])*
                $class:ident $name:ident = $value:literal;
            )*
        }
    ) => {
        $(#[$mod_meta])*
        pub mod $module {
            $(
                $(#[$meta])*
                pub const $name: u16 = $value;
            )*

            /// `(value, name, retryable)` for every declared code.
            pub const CLASSIFIED: &[(u16, &str, bool)] = &[
                $(($value, stringify!($name), classified_codes!(@class $class)),)*
            ];
        }
    };
    (@class retryable) => { true };
    (@class fatal) => { false };
}

classified_codes! {
    /// Stable numeric error codes of the wire protocol.
    pub mod code {
        /// Malformed or oversized frame, bad grammar, protocol violation.
        fatal MALFORMED = 100;
        /// Request schema version outside the supported range.
        fatal UNSUPPORTED_VERSION = 101;
        /// Unknown transaction handle.
        fatal UNKNOWN_TXN = 102;
        /// Engine seeding failed.
        fatal SEED = 103;
        /// Journal I/O failed (the primary's durability is poisoned).
        fatal JOURNAL = 104;
        /// Replay/standby divergence (replicated state refused).
        fatal REPLAY = 105;
        /// Internal engine invariant violation.
        retryable INTERNAL = 106;
        /// The server shed the request under admission backpressure; the
        /// message carries a `retry-after-ms=<n>` hint
        /// (see [`crate::retry_after_hint`]).
        retryable OVERLOADED = 107;
        /// Replication resume offset rejected (past the durable prefix, or
        /// the prefix digest no longer matches — e.g. after a compaction).
        fatal BAD_OFFSET = 110;
    }
}

classified_codes! {
    /// Stable rejection-reason codes carried in response envelopes (and as
    /// `err_code` in JSON mode). These classify a *rejected* epoch, which
    /// is a successful response, not an error.
    pub mod reason {
        /// Request was structurally invalid (duplicate name, unknown target).
        fatal STRUCTURAL = 1;
        /// A platform's utilization bound was exceeded.
        retryable OVERLOAD = 2;
        /// Response-time analysis found deadline misses.
        retryable UNSCHEDULABLE = 3;
        /// The analysis itself failed.
        fatal ANALYSIS = 4;
        /// Exact arithmetic overflowed during the admission scan.
        fatal NUMERIC = 5;
    }
}

/// Maps an [`EngineError`] to its stable wire code.
pub fn engine_code(error: &EngineError) -> u16 {
    match error {
        EngineError::UnsupportedVersion { .. } => code::UNSUPPORTED_VERSION,
        EngineError::UnknownTxn(_) => code::UNKNOWN_TXN,
        EngineError::Seed(_) => code::SEED,
        EngineError::Journal(_) => code::JOURNAL,
        EngineError::Replay(_) => code::REPLAY,
        EngineError::Internal(_) => code::INTERNAL,
    }
}

/// Maps a rejection-reason kind string (the `reason_kind` vocabulary the
/// CLI already prints: `structural`, `overload`, `unschedulable`,
/// `analysis`, `numeric`) to its stable code; 0 for unknown kinds.
pub fn reason_code(kind: &str) -> u16 {
    match kind {
        "structural" => reason::STRUCTURAL,
        "overload" => reason::OVERLOAD,
        "unschedulable" => reason::UNSCHEDULABLE,
        "analysis" => reason::ANALYSIS,
        "numeric" => reason::NUMERIC,
        _ => 0,
    }
}

/// `true` when the condition behind a code is load- or time-dependent and
/// the same request may succeed later: the overload/unschedulable
/// rejection reasons (capacity may free up), [`code::INTERNAL`], and
/// [`code::OVERLOADED`] (the server shed under backpressure). Version
/// mismatches, malformed frames, structural rejections, and a poisoned
/// journal are hard failures. The classification is declared per code in
/// the `classified_codes!` tables; unknown codes are never retryable.
///
/// The two code spaces overlap numerically (reasons are 1–5, wire codes
/// 100+), so one predicate serves both — callers know from context which
/// space a number came from.
pub fn retryable(code_or_reason: u16) -> bool {
    code::CLASSIFIED
        .iter()
        .chain(reason::CLASSIFIED)
        .any(|&(value, _, retry)| value == code_or_reason && retry)
}

/// Extracts the `retry-after-ms=<n>` hint a shed ([`code::OVERLOADED`])
/// error message carries, if any. The hint is advisory: the delay after
/// which the server expects its pending-epoch backlog to have drained.
pub fn retry_after_hint(message: &str) -> Option<u64> {
    message.split_whitespace().find_map(|token| {
        token.strip_prefix("retry-after-ms=").and_then(|n| {
            n.trim_end_matches(|c: char| !c.is_ascii_digit())
                .parse()
                .ok()
        })
    })
}

/// The wire layer's error type: transport failures, protocol violations,
/// and typed errors that crossed (or are about to cross) the wire.
#[derive(Debug)]
pub enum WireError {
    /// The underlying socket failed.
    Io(std::io::Error),
    /// The peer violated the framing or frame grammar (local diagnosis;
    /// maps to [`code::MALFORMED`] when reported to the peer).
    Protocol(String),
    /// A typed error with a stable code — either received in an `error`
    /// frame or produced locally for one.
    Remote {
        /// Stable code from [`code`].
        code: u16,
        /// Human-readable detail (never needed to branch).
        message: String,
    },
}

impl WireError {
    /// Convenience constructor for typed errors.
    pub fn remote(code: u16, message: impl Into<String>) -> WireError {
        WireError::Remote {
            code,
            message: message.into(),
        }
    }

    /// The stable code this error would carry in an `error` frame.
    pub fn wire_code(&self) -> u16 {
        match self {
            WireError::Io(_) => code::INTERNAL,
            WireError::Protocol(_) => code::MALFORMED,
            WireError::Remote { code, .. } => *code,
        }
    }

    /// Lifts an engine failure into a typed wire error.
    pub fn from_engine(error: EngineError) -> WireError {
        WireError::Remote {
            code: engine_code(&error),
            message: error.to_string(),
        }
    }

    /// `true` when retrying the same request (possibly on a fresh
    /// connection) may succeed: every transport failure (`Io` — the
    /// connection may come back) and protocol tear (`Protocol` — a torn
    /// frame on a dying socket), plus [`Remote`](WireError::Remote) errors
    /// whose code is [`retryable`]. Retrying is only *safe* when the
    /// request is idempotent or deduplicated (see the client's ticket
    /// scheme in `docs/WIRE_PROTOCOL.md`).
    pub fn transient(&self) -> bool {
        match self {
            WireError::Io(_) | WireError::Protocol(_) => true,
            WireError::Remote { code, .. } => retryable(*code),
        }
    }
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Io(e) => write!(f, "socket error: {e}"),
            WireError::Protocol(message) => write!(f, "protocol violation: {message}"),
            WireError::Remote { code, message } => write!(f, "wire error {code}: {message}"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<std::io::Error> for WireError {
    fn from(e: std::io::Error) -> WireError {
        WireError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn engine_errors_map_to_stable_codes() {
        assert_eq!(
            engine_code(&EngineError::UnsupportedVersion {
                found: 9,
                supported: 2
            }),
            code::UNSUPPORTED_VERSION
        );
        assert_eq!(
            engine_code(&EngineError::Journal("disk on fire".into())),
            code::JOURNAL
        );
        assert_eq!(
            engine_code(&EngineError::Replay("digest mismatch".into())),
            code::REPLAY
        );
    }

    #[test]
    fn reason_kinds_map_and_classify() {
        assert_eq!(reason_code("overload"), reason::OVERLOAD);
        assert_eq!(reason_code("structural"), reason::STRUCTURAL);
        assert_eq!(reason_code("mystery"), 0);
        assert!(retryable(reason::OVERLOAD));
        assert!(retryable(reason::UNSCHEDULABLE));
        assert!(retryable(code::OVERLOADED));
        assert!(!retryable(reason::STRUCTURAL));
        assert!(!retryable(code::JOURNAL));
        assert!(!retryable(code::MALFORMED));
    }

    /// Pins the complete retry classification over both code spaces. Every
    /// *assigned* value in the wire-code range 100–110 and the reason
    /// range 1–5 must appear in its module's `CLASSIFIED` table with the
    /// expected verdict, and every unassigned value must be non-retryable.
    /// A new code added without a `retryable`/`fatal` keyword fails to
    /// compile; one added with the wrong classification fails here.
    #[test]
    fn retry_classification_is_exhaustive() {
        // (value, expected assigned?, expected retryable?)
        let wire_expectations: &[(u16, bool, bool)] = &[
            (100, true, false), // MALFORMED
            (101, true, false), // UNSUPPORTED_VERSION
            (102, true, false), // UNKNOWN_TXN
            (103, true, false), // SEED
            (104, true, false), // JOURNAL
            (105, true, false), // REPLAY
            (106, true, true),  // INTERNAL
            (107, true, true),  // OVERLOADED
            (108, false, false),
            (109, false, false),
            (110, true, false), // BAD_OFFSET
        ];
        for &(value, assigned, retry) in wire_expectations {
            let entry = code::CLASSIFIED.iter().find(|&&(v, _, _)| v == value);
            assert_eq!(
                entry.is_some(),
                assigned,
                "wire code {value}: assignment expectation diverged"
            );
            assert_eq!(retryable(value), retry, "wire code {value} misclassified");
        }
        assert_eq!(
            code::CLASSIFIED.len(),
            wire_expectations.iter().filter(|e| e.1).count(),
            "a wire code exists outside the pinned 100–110 table — extend the test"
        );

        let reason_expectations: &[(u16, bool)] = &[
            (reason::STRUCTURAL, false),
            (reason::OVERLOAD, true),
            (reason::UNSCHEDULABLE, true),
            (reason::ANALYSIS, false),
            (reason::NUMERIC, false),
        ];
        for &(value, retry) in reason_expectations {
            assert!(
                reason::CLASSIFIED.iter().any(|&(v, _, _)| v == value),
                "reason {value} missing from CLASSIFIED"
            );
            assert_eq!(retryable(value), retry, "reason {value} misclassified");
        }
        assert_eq!(
            reason::CLASSIFIED.len(),
            reason_expectations.len(),
            "a reason code exists outside the pinned 1–5 table — extend the test"
        );
    }

    #[test]
    fn retry_after_hints_parse() {
        assert_eq!(
            retry_after_hint("server overloaded: 700 epochs pending (cap 512); retry-after-ms=50"),
            Some(50)
        );
        assert_eq!(retry_after_hint("retry-after-ms=125"), Some(125));
        assert_eq!(retry_after_hint("no hint here"), None);
        assert_eq!(retry_after_hint("retry-after-ms=bogus"), None);
    }

    #[test]
    fn transient_splits_transport_from_hard_remote() {
        assert!(WireError::Io(std::io::Error::other("boom")).transient());
        assert!(WireError::Protocol("torn frame".into()).transient());
        assert!(WireError::remote(code::OVERLOADED, "shed").transient());
        assert!(!WireError::remote(code::JOURNAL, "poisoned").transient());
        assert!(!WireError::remote(code::MALFORMED, "bad frame").transient());
    }
}
