//! Typed wire errors and their stable numeric codes.
//!
//! Every error a peer can receive over the wire carries a code from
//! [`code`]; the codes are part of the protocol (`docs/WIRE_PROTOCOL.md`)
//! and never change meaning, so clients branch on numbers instead of
//! parsing message strings. Rejection *reasons* are not errors — they ride
//! in the response envelope with their own stable code space
//! ([`reason_code`]) so a client can tell a load-dependent rejection worth
//! retrying later (overload, unschedulable) from a hard one (structural,
//! analysis, numeric).

use hsched_engine::EngineError;

/// Stable numeric error codes of the wire protocol.
pub mod code {
    /// Malformed or oversized frame, bad grammar, protocol violation.
    pub const MALFORMED: u16 = 100;
    /// Request schema version outside the supported range.
    pub const UNSUPPORTED_VERSION: u16 = 101;
    /// Unknown transaction handle.
    pub const UNKNOWN_TXN: u16 = 102;
    /// Engine seeding failed.
    pub const SEED: u16 = 103;
    /// Journal I/O failed (the primary's durability is poisoned).
    pub const JOURNAL: u16 = 104;
    /// Replay/standby divergence (replicated state refused).
    pub const REPLAY: u16 = 105;
    /// Internal engine invariant violation.
    pub const INTERNAL: u16 = 106;
    /// Replication resume offset rejected (past the durable prefix, or
    /// the prefix digest no longer matches — e.g. after a compaction).
    pub const BAD_OFFSET: u16 = 110;
}

/// Stable rejection-reason codes carried in response envelopes (and as
/// `err_code` in JSON mode). These classify a *rejected* epoch, which is a
/// successful response, not an error.
pub mod reason {
    /// Request was structurally invalid (duplicate name, unknown target).
    pub const STRUCTURAL: u16 = 1;
    /// A platform's utilization bound was exceeded.
    pub const OVERLOAD: u16 = 2;
    /// Response-time analysis found deadline misses.
    pub const UNSCHEDULABLE: u16 = 3;
    /// The analysis itself failed.
    pub const ANALYSIS: u16 = 4;
    /// Exact arithmetic overflowed during the admission scan.
    pub const NUMERIC: u16 = 5;
}

/// Maps an [`EngineError`] to its stable wire code.
pub fn engine_code(error: &EngineError) -> u16 {
    match error {
        EngineError::UnsupportedVersion { .. } => code::UNSUPPORTED_VERSION,
        EngineError::UnknownTxn(_) => code::UNKNOWN_TXN,
        EngineError::Seed(_) => code::SEED,
        EngineError::Journal(_) => code::JOURNAL,
        EngineError::Replay(_) => code::REPLAY,
        EngineError::Internal(_) => code::INTERNAL,
    }
}

/// Maps a rejection-reason kind string (the `reason_kind` vocabulary the
/// CLI already prints: `structural`, `overload`, `unschedulable`,
/// `analysis`, `numeric`) to its stable code; 0 for unknown kinds.
pub fn reason_code(kind: &str) -> u16 {
    match kind {
        "structural" => reason::STRUCTURAL,
        "overload" => reason::OVERLOAD,
        "unschedulable" => reason::UNSCHEDULABLE,
        "analysis" => reason::ANALYSIS,
        "numeric" => reason::NUMERIC,
        _ => 0,
    }
}

/// `true` when the condition behind a code is load- or time-dependent and
/// the same request may succeed later: the overload/unschedulable
/// rejection reasons (capacity may free up) and [`code::INTERNAL`].
/// Version mismatches, malformed frames, structural rejections, and a
/// poisoned journal are hard failures.
pub fn retryable(code_or_reason: u16) -> bool {
    matches!(
        code_or_reason,
        reason::OVERLOAD | reason::UNSCHEDULABLE | code::INTERNAL
    )
}

/// The wire layer's error type: transport failures, protocol violations,
/// and typed errors that crossed (or are about to cross) the wire.
#[derive(Debug)]
pub enum WireError {
    /// The underlying socket failed.
    Io(std::io::Error),
    /// The peer violated the framing or frame grammar (local diagnosis;
    /// maps to [`code::MALFORMED`] when reported to the peer).
    Protocol(String),
    /// A typed error with a stable code — either received in an `error`
    /// frame or produced locally for one.
    Remote {
        /// Stable code from [`code`].
        code: u16,
        /// Human-readable detail (never needed to branch).
        message: String,
    },
}

impl WireError {
    /// Convenience constructor for typed errors.
    pub fn remote(code: u16, message: impl Into<String>) -> WireError {
        WireError::Remote {
            code,
            message: message.into(),
        }
    }

    /// The stable code this error would carry in an `error` frame.
    pub fn wire_code(&self) -> u16 {
        match self {
            WireError::Io(_) => code::INTERNAL,
            WireError::Protocol(_) => code::MALFORMED,
            WireError::Remote { code, .. } => *code,
        }
    }

    /// Lifts an engine failure into a typed wire error.
    pub fn from_engine(error: EngineError) -> WireError {
        WireError::Remote {
            code: engine_code(&error),
            message: error.to_string(),
        }
    }
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Io(e) => write!(f, "socket error: {e}"),
            WireError::Protocol(message) => write!(f, "protocol violation: {message}"),
            WireError::Remote { code, message } => write!(f, "wire error {code}: {message}"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<std::io::Error> for WireError {
    fn from(e: std::io::Error) -> WireError {
        WireError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn engine_errors_map_to_stable_codes() {
        assert_eq!(
            engine_code(&EngineError::UnsupportedVersion {
                found: 9,
                supported: 2
            }),
            code::UNSUPPORTED_VERSION
        );
        assert_eq!(
            engine_code(&EngineError::Journal("disk on fire".into())),
            code::JOURNAL
        );
        assert_eq!(
            engine_code(&EngineError::Replay("digest mismatch".into())),
            code::REPLAY
        );
    }

    #[test]
    fn reason_kinds_map_and_classify() {
        assert_eq!(reason_code("overload"), reason::OVERLOAD);
        assert_eq!(reason_code("structural"), reason::STRUCTURAL);
        assert_eq!(reason_code("mystery"), 0);
        assert!(retryable(reason::OVERLOAD));
        assert!(retryable(reason::UNSCHEDULABLE));
        assert!(!retryable(reason::STRUCTURAL));
        assert!(!retryable(code::JOURNAL));
        assert!(!retryable(code::MALFORMED));
    }
}
