//! The warm standby: connects to a primary's replication port, mirrors
//! the journal byte-for-byte into a local file, and feeds every complete
//! record through streaming replay *as it arrives* — so at any instant
//! the standby is a live engine at the primary's last-streamed epoch,
//! not a cold journal waiting to be replayed.
//!
//! Correctness discipline:
//!
//! * **The mirror is append-only and the commit point is a byte
//!   offset.** `committed` always equals the valid prefix — the bytes of
//!   every record the standby has applied. A disconnect mid-record
//!   leaves a torn tail *past* `committed`; on reconnect the tail is
//!   truncated and the resume handshake offers exactly `committed`, so
//!   the primary re-streams from the record boundary. The whole journal
//!   is never re-streamed (that is the point of resume), and nothing
//!   before `committed` is ever re-applied.
//! * **Divergence is loud.** Every heartbeat carries the primary's
//!   consistent `(epoch, digest)` pair; once the standby has applied
//!   that epoch it compares its own state digest and *refuses to
//!   continue* on mismatch — a diverged standby that keeps tailing would
//!   be worse than none.

use crate::error::{code, WireError};
use crate::frame::{read_frame, write_frame, FrameRead};
use crate::proto;
use crate::repl::fnv1a_64;
use crate::server::POLL_INTERVAL;
use hsched_admission::AdmissionPolicy;
use hsched_analysis::AnalysisConfig;
use hsched_engine::{JournalStream, SchedService};
use hsched_transaction::TransactionSet;
use std::io::{Seek, SeekFrom, Write as IoWrite};
use std::net::TcpStream;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Follower configuration.
pub struct FollowerConfig {
    /// `host:port` of the primary's replication listener.
    pub primary: String,
    /// Local journal mirror path (created if absent; an existing mirror
    /// seeds the standby and resumes from its durable prefix).
    pub journal: PathBuf,
    /// Pause between reconnect attempts.
    pub reconnect_delay: Duration,
    /// Stop flag (signal handler or test harness); checked between
    /// frames.
    pub stop: Option<Arc<AtomicBool>>,
    /// Test knob: deliberately drop the connection after receiving this
    /// many journal bytes **in one session** — the cut can land
    /// mid-record, which is exactly what the resume proptests exercise.
    pub disconnect_after: Option<u64>,
    /// Exit [`Follower::run`] at the first disconnect instead of
    /// reconnecting (smoke tests assert on the final state).
    pub exit_on_disconnect: bool,
    /// Exit [`Follower::run`] once the standby has applied this epoch —
    /// the "bootstrap a warm standby to a known point, then hand it
    /// over" mode, and the convergence point the resume proptests drive
    /// to.
    pub catch_up_to: Option<u64>,
    /// Treat a `reset` order as fatal instead of resyncing from byte 0:
    /// [`Follower::run`] returns a [`code::BAD_OFFSET`] error carrying
    /// the primary's reason. An operator running `--exit-on-disconnect`
    /// wants distinct exit codes for "primary gone" and "primary refused
    /// our resume offer", not a silent full resync.
    pub exit_on_reset: bool,
    /// Declare the primary **lost** ([`FollowerExit::Lost`]) after this
    /// many consecutive sessions that ended in a disconnect (or failed to
    /// connect) without advancing the mirror. `None` retries forever.
    /// This is the trigger for `hsched follow --promote-on-loss`.
    pub max_session_failures: Option<u32>,
}

impl Default for FollowerConfig {
    fn default() -> FollowerConfig {
        FollowerConfig {
            primary: String::new(),
            journal: PathBuf::new(),
            reconnect_delay: Duration::from_millis(200),
            stop: None,
            disconnect_after: None,
            exit_on_disconnect: false,
            catch_up_to: None,
            exit_on_reset: false,
            max_session_failures: None,
        }
    }
}

/// Why [`Follower::run`] returned.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FollowerExit {
    /// The stop flag was raised.
    Stopped,
    /// The primary went away and `exit_on_disconnect` is set.
    Disconnected,
    /// The standby reached `catch_up_to`.
    CaughtUp,
    /// `max_session_failures` consecutive sessions made no progress — the
    /// primary is presumed dead. The caller decides what happens next
    /// (typically [`Follower::promote`]).
    Lost,
}

enum Session {
    Disconnected,
    Reset(String),
    Stopped,
    CaughtUp,
}

/// A warm standby. Build with [`Follower::new`], drive with
/// [`Follower::run`]; observe with [`Follower::epoch`] /
/// [`Follower::state_digest`] / [`Follower::committed_bytes`].
pub struct Follower {
    set: TransactionSet,
    analysis: AnalysisConfig,
    policy: AdmissionPolicy,
    config: FollowerConfig,
    standby: Option<SchedService>,
    /// Bytes of the mirror covered by applied complete records.
    committed: u64,
    /// The epoch the next journal record must carry.
    next_epoch: u64,
    /// A heartbeat for an epoch the standby has not reached yet.
    pending_heartbeat: Option<(u64, String)>,
}

impl Follower {
    /// Builds a follower over the same system specification the primary
    /// was started from (the journal's platform count is cross-checked,
    /// and replay itself cross-checks every verdict).
    pub fn new(
        set: TransactionSet,
        analysis: AnalysisConfig,
        policy: AdmissionPolicy,
        config: FollowerConfig,
    ) -> Follower {
        Follower {
            set,
            analysis,
            policy,
            config,
            standby: None,
            committed: 0,
            next_epoch: 1,
            pending_heartbeat: None,
        }
    }

    /// The standby's settled epoch (0 before any record applied).
    pub fn epoch(&self) -> u64 {
        self.standby.as_ref().map_or(0, |s| s.epoch())
    }

    /// The standby's state digest, if it exists yet.
    pub fn state_digest(&self) -> Option<String> {
        self.standby.as_ref().map(|s| s.state_digest())
    }

    /// Bytes of the local mirror covered by applied records — the resume
    /// offset the next handshake will offer.
    pub fn committed_bytes(&self) -> u64 {
        self.committed
    }

    /// Mutable access to the run configuration (between [`Follower::run`]
    /// calls: the resume tests re-run one follower with different
    /// disconnect points).
    pub fn config_mut(&mut self) -> &mut FollowerConfig {
        &mut self.config
    }

    fn caught_up(&self) -> bool {
        self.config
            .catch_up_to
            .is_some_and(|target| self.epoch() >= target)
    }

    fn stopped(&self) -> bool {
        self.config
            .stop
            .as_ref()
            .is_some_and(|flag| flag.load(Ordering::SeqCst))
    }

    /// Tails the primary until stopped (or until the first disconnect,
    /// with `exit_on_disconnect`). Reconnects with resume after
    /// disconnects, rebuilds from scratch after a `reset` order, and
    /// returns an error only for conditions that must not be retried —
    /// divergence above all.
    pub fn run(&mut self) -> Result<FollowerExit, WireError> {
        // An existing mirror seeds the standby before first contact, so
        // the handshake offers its durable prefix instead of 0.
        self.seed_from_mirror()?;
        // Consecutive no-progress session failures (loss detection).
        let mut failures = 0u32;
        loop {
            if self.stopped() {
                return Ok(FollowerExit::Stopped);
            }
            // No catch-up short-circuit here: a mirror can *look* caught
            // up (right epoch count, wrong bytes); only a session that
            // passed the resume handshake and streamed/heartbeat against
            // the live primary may declare it.
            let before = self.committed;
            match self.run_session() {
                Ok(Session::Stopped) => return Ok(FollowerExit::Stopped),
                Ok(Session::CaughtUp) => return Ok(FollowerExit::CaughtUp),
                Ok(Session::Disconnected) | Err(WireError::Io(_)) => {
                    if self.config.exit_on_disconnect {
                        return Ok(FollowerExit::Disconnected);
                    }
                    failures = if self.committed > before {
                        0
                    } else {
                        failures + 1
                    };
                    if self
                        .config
                        .max_session_failures
                        .is_some_and(|limit| failures >= limit)
                    {
                        return Ok(FollowerExit::Lost);
                    }
                    std::thread::sleep(self.config.reconnect_delay);
                }
                Ok(Session::Reset(why)) => {
                    if self.config.exit_on_reset {
                        return Err(WireError::remote(
                            code::BAD_OFFSET,
                            format!("primary rejected the resume offer: {why}"),
                        ));
                    }
                    // The primary's journal is not a superset of our
                    // mirror any more (compaction, divergence): discard
                    // everything and resync from byte 0.
                    std::fs::File::create(&self.config.journal)?;
                    self.standby = None;
                    self.committed = 0;
                    self.next_epoch = 1;
                    self.pending_heartbeat = None;
                    failures = 0;
                }
                Err(fatal) => return Err(fatal),
            }
        }
    }

    /// Promotes a lost follower's mirror into a **serving primary**:
    /// replays the committed prefix with the journal *attached* (torn
    /// tail repaired, writer reopened in append mode) and cross-checks
    /// the result against the state the live standby had applied — a
    /// promotion that does not reproduce the standby's own epoch and
    /// digest is refused with [`code::REPLAY`]. Returns the promoted
    /// service (ready for `Server::start`) and the replay stats.
    ///
    /// Consumes the follower: after promotion the mirror is a living
    /// journal owned by the returned service, and tailing it would
    /// corrupt it.
    pub fn promote(mut self) -> Result<(Arc<SchedService>, hsched_engine::ReplayStats), WireError> {
        let expect_epoch = self.epoch();
        let expect_digest = self.state_digest();
        // Drop the live standby first: promotion replays the mirror from
        // scratch and must be the file's only reader/writer.
        self.standby = None;
        let (promoted, stats) = SchedService::replay(
            self.set.clone(),
            self.analysis.clone(),
            self.policy.clone(),
            &self.config.journal,
        )
        .map_err(WireError::from_engine)?;
        if promoted.epoch() != expect_epoch {
            return Err(WireError::remote(
                code::REPLAY,
                format!(
                    "promotion aborted: mirror replays to epoch {}, standby had applied {}",
                    promoted.epoch(),
                    expect_epoch
                ),
            ));
        }
        if let Some(expected) = expect_digest {
            let ours = promoted.state_digest();
            if ours != expected {
                return Err(WireError::remote(
                    code::REPLAY,
                    format!(
                        "promotion aborted: replayed digest {ours} does not match \
                         the standby's {expected} at epoch {expect_epoch}"
                    ),
                ));
            }
        }
        Ok((Arc::new(promoted), stats))
    }

    fn seed_from_mirror(&mut self) -> Result<(), WireError> {
        if self.standby.is_some() {
            return Ok(());
        }
        let len = std::fs::metadata(&self.config.journal)
            .map(|m| m.len())
            .unwrap_or(0);
        if len == 0 {
            return Ok(());
        }
        match SchedService::replay_standby(
            self.set.clone(),
            self.analysis.clone(),
            self.policy.clone(),
            &self.config.journal,
        ) {
            Ok((standby, stats)) => {
                self.next_epoch = standby.epoch() + 1;
                self.committed = stats.journal_bytes;
                self.standby = Some(standby);
                Ok(())
            }
            // An incomplete header (mirror cut off mid-bootstrap) is not
            // an error — resume will fetch the rest. Anything else is.
            Err(e) => {
                let message = e.to_string();
                if message.contains("header") || message.contains("empty") {
                    self.committed = 0;
                    Ok(())
                } else {
                    Err(WireError::from_engine(e))
                }
            }
        }
    }

    fn run_session(&mut self) -> Result<Session, WireError> {
        let mut stream = TcpStream::connect(&self.config.primary)?;
        stream.set_read_timeout(Some(POLL_INTERVAL * 4))?;
        stream.set_nodelay(true).ok();

        // Greeting.
        match self.next_frame(&mut stream)? {
            Some(greeting) if greeting.starts_with("hsched-repl") => {}
            Some(other) => {
                return Err(WireError::Protocol(format!(
                    "not a replication port (greeting `{}`)",
                    proto::keyword(&other)
                )))
            }
            None => return Ok(Session::Disconnected),
        }

        // Truncate any torn tail past the commit point, then offer the
        // committed prefix for resume.
        let file = std::fs::OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(&self.config.journal)?;
        file.set_len(self.committed)?;
        let prefix = self.mirror_prefix_digest(self.committed)?;
        write_frame(&mut stream, &proto::encode_follow(self.committed, prefix))?;

        // The primary's verdict on the offer.
        let verdict = match self.next_frame(&mut stream)? {
            Some(frame) => frame,
            None => return Ok(Session::Disconnected),
        };
        match proto::keyword(&verdict) {
            "streaming" => {
                proto::parse_streaming(&verdict)?;
            }
            "reset" => return Ok(Session::Reset(proto::parse_reset(&verdict)?)),
            "error" => return Err(proto::parse_error(&verdict)?),
            other => {
                return Err(WireError::Protocol(format!(
                    "unexpected handshake frame `{other}`"
                )))
            }
        }

        let mut mirror = file;
        mirror.seek(SeekFrom::Start(self.committed))?;
        let mut received = self.committed;
        let mut session_bytes = 0u64;
        loop {
            let frame = match self.next_frame(&mut stream)? {
                Some(frame) => frame,
                None => {
                    return if self.stopped() {
                        Ok(Session::Stopped)
                    } else {
                        Ok(Session::Disconnected)
                    }
                }
            };
            match proto::keyword(&frame) {
                "jbytes" => {
                    let (offset, bytes) = proto::parse_jbytes(&frame)?;
                    if offset != received {
                        return Err(WireError::Protocol(format!(
                            "stream gap: chunk at offset {offset}, mirror holds {received}"
                        )));
                    }
                    let mut bytes: &str = bytes;
                    let mut cut = false;
                    if let Some(limit) = self.config.disconnect_after {
                        let room = limit.saturating_sub(session_bytes);
                        if (bytes.len() as u64) > room {
                            // Deliberate kill, possibly mid-record: keep
                            // only the torn prefix, then drop the link.
                            bytes = &bytes[..room as usize];
                            cut = true;
                        }
                    }
                    mirror.write_all(bytes.as_bytes())?;
                    mirror.flush()?;
                    received += bytes.len() as u64;
                    session_bytes += bytes.len() as u64;
                    self.apply_new_records()?;
                    if cut {
                        return Ok(Session::Disconnected);
                    }
                    let _ = write_frame(&mut stream, &proto::encode_ack(self.epoch()));
                    if self.caught_up() {
                        return Ok(Session::CaughtUp);
                    }
                }
                "digest" => {
                    let (epoch, digest) = proto::parse_digest(&frame)?;
                    self.pending_heartbeat = Some((epoch, digest));
                    self.check_heartbeat()?;
                    let _ = write_frame(&mut stream, &proto::encode_ack(self.epoch()));
                    if self.caught_up() {
                        return Ok(Session::CaughtUp);
                    }
                }
                "reset" => return Ok(Session::Reset(proto::parse_reset(&frame)?)),
                "error" => return Err(proto::parse_error(&frame)?),
                other => {
                    return Err(WireError::Protocol(format!(
                        "unexpected stream frame `{other}`"
                    )))
                }
            }
        }
    }

    /// Waits for one frame, reporting `None` on clean EOF and treating a
    /// torn frame as an I/O-level disconnect (retryable), not a fatal
    /// protocol error — the primary may die mid-frame and that is the
    /// follower's bread and butter.
    fn next_frame(&self, stream: &mut TcpStream) -> Result<Option<String>, WireError> {
        loop {
            match read_frame(stream, self.config.stop.as_deref()) {
                Ok(FrameRead::Frame(payload)) => return Ok(Some(payload)),
                Ok(FrameRead::Eof) => return Ok(None),
                Ok(FrameRead::Idle) => {
                    if self.stopped() {
                        return Ok(None);
                    }
                }
                Err(WireError::Protocol(_)) => return Ok(None),
                Err(e) => return Err(e),
            }
        }
    }

    fn mirror_prefix_digest(&self, prefix: u64) -> Result<u64, WireError> {
        if prefix == 0 {
            return Ok(fnv1a_64(b""));
        }
        crate::repl::file_prefix_digest(&self.config.journal, prefix)
    }

    /// Applies every complete record past `committed`. A torn tail ends
    /// the pass cleanly (the stream's torn-tail discipline); replay
    /// divergence is fatal by design.
    fn apply_new_records(&mut self) -> Result<(), WireError> {
        if self.standby.is_none() {
            // Header (and possibly a snapshot block) may just have
            // become complete — try to seed.
            self.seed_from_mirror()?;
            if self.standby.is_none() {
                return Ok(());
            }
            return self.check_heartbeat();
        }
        let mut stream =
            JournalStream::resume_from(&self.config.journal, self.committed, self.next_epoch)
                .map_err(WireError::from_engine)?;
        let standby = self.standby.as_ref().expect("standby seeded above");
        for record in &mut stream {
            let record = record.map_err(WireError::from_engine)?;
            standby
                .apply_journal_record(&record)
                .map_err(WireError::from_engine)?;
        }
        self.committed = stream.valid_prefix();
        self.next_epoch = stream.next_epoch();
        self.check_heartbeat()
    }

    /// Cross-checks a pending heartbeat once the standby reaches its
    /// epoch. Divergence is a fatal [`code::REPLAY`] error — the loud
    /// refusal this subsystem owes its operator.
    fn check_heartbeat(&mut self) -> Result<(), WireError> {
        let Some((epoch, expected)) = self.pending_heartbeat.clone() else {
            return Ok(());
        };
        let Some(ours) = self.state_digest() else {
            return Ok(()); // no standby yet — keep the beat pending
        };
        let applied = self.epoch();
        if applied < epoch {
            return Ok(()); // still pending
        }
        self.pending_heartbeat = None;
        if applied > epoch {
            return Ok(()); // stale beat from before our last chunk
        }
        if ours != expected {
            return Err(WireError::remote(
                code::REPLAY,
                format!(
                    "standby diverged from primary at epoch {epoch}: \
                     primary digest {expected}, standby digest {ours}"
                ),
            ));
        }
        Ok(())
    }
}
