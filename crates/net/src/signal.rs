//! SIGINT/SIGTERM → a process-wide stop flag, with no external crates:
//! the libc `signal(2)` entry point is declared directly (it is in every
//! libc this workspace can run on) and the handler does the only
//! async-signal-safe thing — store into a static atomic. `hsched serve`
//! and `hsched admit --async` poll the flag to drain in-flight epochs and
//! issue a final group-commit sync instead of dying mid-pipeline.

use std::sync::atomic::{AtomicBool, Ordering};

/// `SIGINT` (Ctrl-C).
const SIGINT: i32 = 2;
/// `SIGTERM` (polite kill).
const SIGTERM: i32 = 15;

static STOP: AtomicBool = AtomicBool::new(false);

extern "C" fn on_signal(_signum: i32) {
    // SeqCst is the workspace-wide ordering discipline outside the
    // telemetry crate; an atomic store is async-signal-safe.
    STOP.store(true, Ordering::SeqCst);
}

#[allow(unsafe_code)]
mod ffi {
    extern "C" {
        /// `signal(2)`. `i32` matches `c_int` on every supported target;
        /// the handler travels as a plain address.
        pub(super) fn signal(signum: i32, handler: usize) -> usize;
    }

    /// Installs `handler` for `signum` (ignoring the previous
    /// disposition — this process installs exactly once, at startup).
    pub(super) fn install(signum: i32, handler: extern "C" fn(i32)) {
        // SAFETY: `signal` is the C standard library entry point; the
        // handler is a valid `extern "C"` function that only touches an
        // atomic, which is async-signal-safe.
        unsafe {
            signal(signum, handler as usize);
        }
    }
}

/// Installs the SIGINT/SIGTERM handlers (idempotent) and returns the
/// process-wide stop flag. Signals only ever *set* the flag — a second
/// signal during a slow drain does not un-stop anything; only an explicit
/// [`reset`] (tests, embedders running several serve lifecycles in one
/// process) clears it.
pub fn install() -> &'static AtomicBool {
    ffi::install(SIGINT, on_signal);
    ffi::install(SIGTERM, on_signal);
    &STOP
}

/// `true` once a shutdown signal arrived (or [`request_stop`] ran).
pub fn stop_requested() -> bool {
    STOP.load(Ordering::SeqCst)
}

/// Programmatic equivalent of receiving a signal (tests, orderly exits).
pub fn request_stop() {
    STOP.store(true, Ordering::SeqCst);
}

/// Clears the stop flag. The `hsched` binary never calls this — a signal
/// ends the process — but tests and embedders that run several serve
/// lifecycles inside one process need a way back to "not stopping".
pub fn reset() {
    STOP.store(false, Ordering::SeqCst);
}
