//! The frame grammar: encode/parse pairs for every frame of the service
//! and replication wires. The normative spec lives in
//! `docs/WIRE_PROTOCOL.md`; this module is its implementation, and the
//! round-trip property tests below pin the two together.
//!
//! Request batches travel in the **journal's request-line grammar**
//! ([`hsched_engine::encode_request`]) — the same codec that serializes
//! epochs to the WAL serializes them onto the wire, so there is exactly
//! one serialization of an admission request in the whole system.

use crate::error::{code, reason_code, WireError};
use hsched_admission::{AdmissionRequest, RejectReason, Verdict};
use hsched_engine::{decode_request, encode_request, esc, unesc, EngineResponse};
use hsched_telemetry::{HistogramSnapshot, MetricsSnapshot};

/// Greeting the service port sends on connect.
pub const SERVICE_GREETING: &str = "hsched-net v2 min 1";
/// Greeting the replication port sends on connect.
pub const REPL_GREETING: &str = "hsched-repl v2";

/// Durability mode of a submit frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitMode {
    /// Per-epoch durability: the response returns after the record is
    /// fsynced ([`hsched_engine::SchedService::submit`]).
    Sync,
    /// Pipelined: the response returns at settle; durability comes from a
    /// later `sync` frame ([`hsched_engine::SchedService::submit_async`]).
    Async,
}

impl SubmitMode {
    fn keyword(self) -> &'static str {
        match self {
            SubmitMode::Sync => "sync",
            SubmitMode::Async => "async",
        }
    }
}

/// A rejected epoch's reason as it crosses the wire.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RemoteReason {
    /// Reason kind (`structural`/`overload`/`unschedulable`/`analysis`/
    /// `numeric` — the CLI's existing vocabulary).
    pub kind: String,
    /// Stable numeric code ([`crate::error::reason`]).
    pub code: u16,
    /// Human-readable detail (the reason's display form).
    pub detail: String,
}

/// One epoch response as it crosses the wire — the [`EngineResponse`]
/// fields a remote client can use (timings and minted handles stay
/// server-side; handles are meaningless across processes).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RemoteEpoch {
    /// Epoch ticket.
    pub epoch: u64,
    /// Verdict.
    pub admitted: bool,
    /// Requests in the batch.
    pub requests: usize,
    /// Transactions re-analyzed (the dirty cone).
    pub analyzed: usize,
    /// Live transactions after the epoch.
    pub total: usize,
    /// Independent interference cones analyzed.
    pub islands: usize,
    /// Whether any cone warm-started.
    pub warm: bool,
    /// Shards the batch routed to.
    pub shards_touched: usize,
    /// Live shards after the epoch.
    pub shards_live: usize,
    /// The routed slot ids, first-touch order.
    pub shards: Vec<usize>,
    /// Rejection reason (rejected epochs only).
    pub reason: Option<RemoteReason>,
}

impl std::fmt::Display for RemoteEpoch {
    /// Mirrors the engine's own outcome line byte-for-byte, so remote and
    /// local `hsched admit` render identically.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let verdict = match &self.reason {
            None if self.admitted => "admitted".to_string(),
            None => "rejected".to_string(),
            Some(reason) => format!("rejected ({})", reason.detail),
        };
        write!(
            f,
            "epoch {}: {verdict} ({} request(s), analyzed {}/{} transactions in {} island(s){})",
            self.epoch,
            self.requests,
            self.analyzed,
            self.total,
            self.islands,
            if self.warm { ", warm" } else { "" }
        )
    }
}

/// The CLI's rejection-kind vocabulary for a [`RejectReason`].
pub fn reason_kind(reason: &RejectReason) -> &'static str {
    match reason {
        RejectReason::Structural(_) => "structural",
        RejectReason::Overload { .. } => "overload",
        RejectReason::Unschedulable { .. } => "unschedulable",
        RejectReason::Analysis(_) => "analysis",
        RejectReason::Numeric(_) => "numeric",
    }
}

fn malformed(message: impl Into<String>) -> WireError {
    WireError::remote(code::MALFORMED, message)
}

fn take<'a>(tokens: &mut impl Iterator<Item = &'a str>, what: &str) -> Result<&'a str, WireError> {
    tokens
        .next()
        .ok_or_else(|| malformed(format!("missing {what}")))
}

fn take_u64<'a>(tokens: &mut impl Iterator<Item = &'a str>, what: &str) -> Result<u64, WireError> {
    let token = take(tokens, what)?;
    token
        .parse()
        .map_err(|_| malformed(format!("bad {what} `{token}`")))
}

fn take_usize<'a>(
    tokens: &mut impl Iterator<Item = &'a str>,
    what: &str,
) -> Result<usize, WireError> {
    let token = take(tokens, what)?;
    token
        .parse()
        .map_err(|_| malformed(format!("bad {what} `{token}`")))
}

fn take_name<'a>(
    tokens: &mut impl Iterator<Item = &'a str>,
    what: &str,
) -> Result<String, WireError> {
    unesc(take(tokens, what)?).map_err(|e| malformed(format!("bad {what}: {e}")))
}

// ---------------------------------------------------------------- submit

/// Encodes a submit frame: header line plus one journal-grammar line per
/// request (instance arrivals span extra embedded-class lines).
pub fn encode_submit(mode: SubmitMode, version: u32, batch: &[AdmissionRequest]) -> String {
    encode_submit_ticketed(mode, version, batch, None)
}

/// Encodes a submit frame carrying an optional client-chosen idempotency
/// ticket (`ticket <esc(id)>` suffix on the header line). A retrying
/// client sends the *same* ticket with every attempt of one logical
/// batch; the server remembers the epoch reply it issued under that
/// ticket and replays it instead of committing the batch twice.
pub fn encode_submit_ticketed(
    mode: SubmitMode,
    version: u32,
    batch: &[AdmissionRequest],
    ticket: Option<&str>,
) -> String {
    let mut payload = format!("submit {} {version} {}", mode.keyword(), batch.len());
    if let Some(id) = ticket {
        payload.push_str(&format!(" ticket {}", esc(id)));
    }
    for request in batch {
        for line in encode_request(request) {
            payload.push('\n');
            payload.push_str(&line);
        }
    }
    payload
}

/// A parsed submit frame (see [`parse_submit`]).
pub type ParsedSubmit = (SubmitMode, u32, Vec<AdmissionRequest>, Option<String>);

/// Parses a submit frame (the payload *after* the keyword has been
/// identified; pass the full payload). The fourth element is the
/// idempotency ticket, when the client sent one.
pub fn parse_submit(payload: &str) -> Result<ParsedSubmit, WireError> {
    let mut lines = payload.lines();
    let header = lines.next().ok_or_else(|| malformed("empty frame"))?;
    let mut tokens = header.split_whitespace();
    match take(&mut tokens, "frame keyword")? {
        "submit" => {}
        other => return Err(malformed(format!("expected `submit`, got `{other}`"))),
    }
    let mode = match take(&mut tokens, "submit mode")? {
        "sync" => SubmitMode::Sync,
        "async" => SubmitMode::Async,
        other => return Err(malformed(format!("bad submit mode `{other}`"))),
    };
    let version = take_u64(&mut tokens, "schema version")? as u32;
    let count = take_usize(&mut tokens, "request count")?;
    let ticket = match tokens.next() {
        None => None,
        Some("ticket") => Some(take_name(&mut tokens, "submit ticket")?),
        Some(other) => {
            return Err(malformed(format!(
                "trailing tokens on submit header (`{other}`)"
            )))
        }
    };
    if tokens.next().is_some() {
        return Err(malformed("trailing tokens on submit header"));
    }
    let mut batch = Vec::with_capacity(count.min(1024));
    for _ in 0..count {
        let line = lines
            .next()
            .ok_or_else(|| malformed("fewer request lines than declared"))?;
        batch.push(decode_request(line, &mut lines).map_err(malformed)?);
    }
    if lines.next().is_some() {
        return Err(malformed("trailing request lines"));
    }
    Ok((mode, version, batch, ticket))
}

// ---------------------------------------------------------------- epoch

/// Encodes an epoch response frame from the engine's response.
pub fn encode_epoch(response: &EngineResponse) -> String {
    let outcome = &response.outcome;
    let mut payload = format!(
        "epoch {} {} {} {} {} {} {} {} {}",
        response.epoch,
        if outcome.verdict.admitted() {
            "admitted"
        } else {
            "rejected"
        },
        outcome.requests,
        outcome.analyzed_transactions,
        outcome.total_transactions,
        outcome.islands,
        u8::from(outcome.warm_started),
        response.shards_touched,
        response.shards_live,
    );
    for slot in &response.shards {
        payload.push_str(&format!(" {slot}"));
    }
    if let Verdict::Rejected(reason) = &outcome.verdict {
        let kind = reason_kind(reason);
        payload.push_str(&format!(
            "\nreason {kind} {} {}",
            reason_code(kind),
            esc(&reason.to_string())
        ));
    }
    payload
}

/// Parses an epoch response frame.
pub fn parse_epoch(payload: &str) -> Result<RemoteEpoch, WireError> {
    let mut lines = payload.lines();
    let header = lines.next().ok_or_else(|| malformed("empty frame"))?;
    let mut tokens = header.split_whitespace();
    match take(&mut tokens, "frame keyword")? {
        "epoch" => {}
        other => return Err(malformed(format!("expected `epoch`, got `{other}`"))),
    }
    let epoch = take_u64(&mut tokens, "epoch")?;
    let admitted = match take(&mut tokens, "verdict")? {
        "admitted" => true,
        "rejected" => false,
        other => return Err(malformed(format!("bad verdict `{other}`"))),
    };
    let requests = take_usize(&mut tokens, "request count")?;
    let analyzed = take_usize(&mut tokens, "analyzed count")?;
    let total = take_usize(&mut tokens, "total count")?;
    let islands = take_usize(&mut tokens, "island count")?;
    let warm = take_u64(&mut tokens, "warm flag")? != 0;
    let shards_touched = take_usize(&mut tokens, "shards touched")?;
    let shards_live = take_usize(&mut tokens, "shards live")?;
    let shards: Vec<usize> = tokens
        .map(|t| {
            t.parse()
                .map_err(|_| malformed(format!("bad shard slot `{t}`")))
        })
        .collect::<Result<_, _>>()?;
    let reason = match lines.next() {
        None => None,
        Some(line) => {
            let mut tokens = line.split_whitespace();
            match take(&mut tokens, "reason keyword")? {
                "reason" => {}
                other => return Err(malformed(format!("expected `reason`, got `{other}`"))),
            }
            let kind = take(&mut tokens, "reason kind")?.to_string();
            let code = take_u64(&mut tokens, "reason code")? as u16;
            let detail = take_name(&mut tokens, "reason detail")?;
            Some(RemoteReason { kind, code, detail })
        }
    };
    if lines.next().is_some() {
        return Err(malformed("trailing lines on epoch frame"));
    }
    if !admitted && reason.is_none() {
        return Err(malformed("rejected epoch without a reason line"));
    }
    Ok(RemoteEpoch {
        epoch,
        admitted,
        requests,
        analyzed,
        total,
        islands,
        warm,
        shards_touched,
        shards_live,
        shards,
        reason,
    })
}

// ------------------------------------------------------------ sync/digest

/// Encodes a sync frame (`None` = everything settled, `u64::MAX`).
pub fn encode_sync(watermark: Option<u64>) -> String {
    match watermark {
        Some(epoch) => format!("sync {epoch}"),
        None => "sync all".to_string(),
    }
}

/// Parses a sync frame into its watermark.
pub fn parse_sync(payload: &str) -> Result<u64, WireError> {
    let mut tokens = payload.split_whitespace();
    match take(&mut tokens, "frame keyword")? {
        "sync" => {}
        other => return Err(malformed(format!("expected `sync`, got `{other}`"))),
    }
    let watermark = match take(&mut tokens, "watermark")? {
        "all" => u64::MAX,
        token => token
            .parse()
            .map_err(|_| malformed(format!("bad watermark `{token}`")))?,
    };
    if tokens.next().is_some() {
        return Err(malformed("trailing tokens on sync frame"));
    }
    Ok(watermark)
}

/// Encodes the `synced <epoch>` acknowledgement.
pub fn encode_synced(epoch: u64) -> String {
    format!("synced {epoch}")
}

/// Parses a `synced` acknowledgement.
pub fn parse_synced(payload: &str) -> Result<u64, WireError> {
    let mut tokens = payload.split_whitespace();
    match take(&mut tokens, "frame keyword")? {
        "synced" => {}
        other => return Err(malformed(format!("expected `synced`, got `{other}`"))),
    }
    take_u64(&mut tokens, "synced epoch")
}

/// Encodes a `digest <epoch> <hex16>` frame (also the heartbeat body).
pub fn encode_digest(epoch: u64, digest: &str) -> String {
    format!("digest {epoch} {digest}")
}

/// Parses a `digest` frame.
pub fn parse_digest(payload: &str) -> Result<(u64, String), WireError> {
    let mut tokens = payload.split_whitespace();
    match take(&mut tokens, "frame keyword")? {
        "digest" => {}
        other => return Err(malformed(format!("expected `digest`, got `{other}`"))),
    }
    let epoch = take_u64(&mut tokens, "epoch")?;
    let digest = take(&mut tokens, "digest")?.to_string();
    Ok((epoch, digest))
}

// ---------------------------------------------------------------- error

/// Encodes a typed error frame.
pub fn encode_error(error: &WireError) -> String {
    format!("error {} {}", error.wire_code(), esc(&error.to_string()))
}

/// Parses an error frame into a [`WireError::Remote`].
pub fn parse_error(payload: &str) -> Result<WireError, WireError> {
    let mut tokens = payload.split_whitespace();
    match take(&mut tokens, "frame keyword")? {
        "error" => {}
        other => return Err(malformed(format!("expected `error`, got `{other}`"))),
    }
    let code = take_u64(&mut tokens, "error code")? as u16;
    let message = take_name(&mut tokens, "error message")?;
    Ok(WireError::Remote { code, message })
}

// ---------------------------------------------------------------- stats

/// Encodes a metrics snapshot: header with section counts, one `c` line
/// per counter, one `h` line per histogram (sum, max, then the per-bucket
/// counts with trailing zeros trimmed).
pub fn encode_stats(snapshot: &MetricsSnapshot) -> String {
    let counters: Vec<_> = snapshot.counters().collect();
    let histograms: Vec<_> = snapshot.histograms().collect();
    let mut payload = format!("stats {} {}", counters.len(), histograms.len());
    for (name, value) in counters {
        payload.push_str(&format!("\nc {} {value}", esc(name)));
    }
    for (name, hist) in histograms {
        let mut buckets: Vec<u64> = (0..hsched_telemetry::BUCKETS)
            .map(|i| hist.bucket(i))
            .collect();
        while buckets.last() == Some(&0) {
            buckets.pop();
        }
        payload.push_str(&format!(
            "\nh {} {} {} {}",
            esc(name),
            hist.sum(),
            hist.max(),
            buckets.len()
        ));
        for count in buckets {
            payload.push_str(&format!(" {count}"));
        }
    }
    payload
}

/// Parses a stats frame back into a [`MetricsSnapshot`] (histograms are
/// reconstructed bucket-exact, so remote quantiles equal local ones).
pub fn parse_stats(payload: &str) -> Result<MetricsSnapshot, WireError> {
    let mut lines = payload.lines();
    let header = lines.next().ok_or_else(|| malformed("empty frame"))?;
    let mut tokens = header.split_whitespace();
    match take(&mut tokens, "frame keyword")? {
        "stats" => {}
        other => return Err(malformed(format!("expected `stats`, got `{other}`"))),
    }
    let n_counters = take_usize(&mut tokens, "counter count")?;
    let n_hists = take_usize(&mut tokens, "histogram count")?;
    let mut snapshot = MetricsSnapshot::default();
    for _ in 0..n_counters {
        let line = lines.next().ok_or_else(|| malformed("missing `c` line"))?;
        let mut tokens = line.split_whitespace();
        match take(&mut tokens, "line keyword")? {
            "c" => {}
            other => return Err(malformed(format!("expected `c`, got `{other}`"))),
        }
        let name = take_name(&mut tokens, "counter name")?;
        let value = take_u64(&mut tokens, "counter value")?;
        snapshot.put_counter(&name, value);
    }
    for _ in 0..n_hists {
        let line = lines.next().ok_or_else(|| malformed("missing `h` line"))?;
        let mut tokens = line.split_whitespace();
        match take(&mut tokens, "line keyword")? {
            "h" => {}
            other => return Err(malformed(format!("expected `h`, got `{other}`"))),
        }
        let name = take_name(&mut tokens, "histogram name")?;
        let sum = take_u64(&mut tokens, "histogram sum")?;
        let max = take_u64(&mut tokens, "histogram max")?;
        let n_buckets = take_usize(&mut tokens, "bucket count")?;
        if n_buckets > hsched_telemetry::BUCKETS {
            return Err(malformed(format!("{n_buckets} buckets exceeds the schema")));
        }
        let mut counts = Vec::with_capacity(n_buckets);
        for _ in 0..n_buckets {
            counts.push(take_u64(&mut tokens, "bucket value")?);
        }
        if tokens.next().is_some() {
            return Err(malformed("trailing tokens on `h` line"));
        }
        snapshot.put_histogram(&name, HistogramSnapshot::from_parts(sum, max, &counts));
    }
    if lines.next().is_some() {
        return Err(malformed("trailing lines on stats frame"));
    }
    Ok(snapshot)
}

// ------------------------------------------------------------ replication

/// Encodes the follower's resume handshake: its local durable byte count
/// and the FNV-1a 64 digest (16 hex chars) of those bytes.
pub fn encode_follow(offset: u64, prefix_digest: u64) -> String {
    format!("follow {offset} {prefix_digest:016x}")
}

/// Parses a `follow` handshake.
pub fn parse_follow(payload: &str) -> Result<(u64, u64), WireError> {
    let mut tokens = payload.split_whitespace();
    match take(&mut tokens, "frame keyword")? {
        "follow" => {}
        other => return Err(malformed(format!("expected `follow`, got `{other}`"))),
    }
    let offset = take_u64(&mut tokens, "offset")?;
    let digest_token = take(&mut tokens, "prefix digest")?;
    let digest = u64::from_str_radix(digest_token, 16)
        .map_err(|_| malformed(format!("bad prefix digest `{digest_token}`")))?;
    Ok((offset, digest))
}

/// Encodes the primary's handshake acceptance.
pub fn encode_streaming(durable_bytes: u64, durable_epoch: u64) -> String {
    format!("streaming {durable_bytes} {durable_epoch}")
}

/// Parses a `streaming` acceptance.
pub fn parse_streaming(payload: &str) -> Result<(u64, u64), WireError> {
    let mut tokens = payload.split_whitespace();
    match take(&mut tokens, "frame keyword")? {
        "streaming" => {}
        other => return Err(malformed(format!("expected `streaming`, got `{other}`"))),
    }
    Ok((
        take_u64(&mut tokens, "durable bytes")?,
        take_u64(&mut tokens, "durable epoch")?,
    ))
}

/// Encodes one raw journal chunk starting at `offset`. The bytes are
/// journal text (ASCII by construction), appended verbatim after the
/// header line.
pub fn encode_jbytes(offset: u64, bytes: &str) -> String {
    format!("jbytes {offset} {}\n{bytes}", bytes.len())
}

/// Parses a `jbytes` frame into `(offset, raw_bytes)`.
pub fn parse_jbytes(payload: &str) -> Result<(u64, &str), WireError> {
    let (header, rest) = payload
        .split_once('\n')
        .ok_or_else(|| malformed("jbytes frame without a body"))?;
    let mut tokens = header.split_whitespace();
    match take(&mut tokens, "frame keyword")? {
        "jbytes" => {}
        other => return Err(malformed(format!("expected `jbytes`, got `{other}`"))),
    }
    let offset = take_u64(&mut tokens, "offset")?;
    let declared = take_usize(&mut tokens, "byte count")?;
    if declared != rest.len() {
        return Err(malformed(format!(
            "jbytes declares {declared} bytes, carries {}",
            rest.len()
        )));
    }
    Ok((offset, rest))
}

/// Encodes the follower's applied-epoch acknowledgement.
pub fn encode_ack(applied_epoch: u64) -> String {
    format!("ack {applied_epoch}")
}

/// Parses an `ack` frame.
pub fn parse_ack(payload: &str) -> Result<u64, WireError> {
    let mut tokens = payload.split_whitespace();
    match take(&mut tokens, "frame keyword")? {
        "ack" => {}
        other => return Err(malformed(format!("expected `ack`, got `{other}`"))),
    }
    take_u64(&mut tokens, "applied epoch")
}

/// Encodes a replication reset order (follower must discard its local
/// mirror and resync from byte 0).
pub fn encode_reset(why: &str) -> String {
    format!("reset {}", esc(why))
}

/// Parses a `reset` frame into its reason.
pub fn parse_reset(payload: &str) -> Result<String, WireError> {
    let mut tokens = payload.split_whitespace();
    match take(&mut tokens, "frame keyword")? {
        "reset" => {}
        other => return Err(malformed(format!("expected `reset`, got `{other}`"))),
    }
    take_name(&mut tokens, "reset reason")
}

/// The keyword of a frame payload (its first whitespace-delimited token).
pub fn keyword(payload: &str) -> &str {
    payload.split_whitespace().next().unwrap_or("")
}

#[cfg(test)]
mod tests {
    use super::*;
    use hsched_numeric::rat;
    use hsched_platform::PlatformId;
    use hsched_transaction::{Task, Transaction};

    fn sample_batch() -> Vec<AdmissionRequest> {
        let tx = Transaction::new(
            "spaced name",
            rat(60, 1),
            rat(120, 1),
            vec![
                Task::new("t 0", rat(1, 3), rat(1, 6), 2, PlatformId(0)),
                Task::message("m", rat(1, 2), rat(1, 4), 1, PlatformId(1)),
            ],
        )
        .unwrap()
        .with_release_jitter(rat(5, 2));
        vec![
            AdmissionRequest::AddTransaction(tx),
            AdmissionRequest::Retune {
                platform: PlatformId(1),
                alpha: rat(1, 3),
                delta: rat(2, 1),
                beta: rat(0, 1),
            },
            AdmissionRequest::RemoveTransaction {
                name: "spaced name".into(),
            },
        ]
    }

    #[test]
    fn submit_round_trips() {
        let batch = sample_batch();
        let payload = encode_submit(SubmitMode::Async, 2, &batch);
        let (mode, version, parsed, ticket) = parse_submit(&payload).unwrap();
        assert_eq!(mode, SubmitMode::Async);
        assert_eq!(version, 2);
        assert_eq!(parsed, batch);
        assert_eq!(ticket, None);
    }

    #[test]
    fn ticketed_submit_round_trips() {
        let batch = sample_batch();
        let payload = encode_submit_ticketed(SubmitMode::Sync, 2, &batch, Some("c1f3 7/2"));
        let (mode, version, parsed, ticket) = parse_submit(&payload).unwrap();
        assert_eq!(mode, SubmitMode::Sync);
        assert_eq!(version, 2);
        assert_eq!(parsed, batch);
        assert_eq!(ticket.as_deref(), Some("c1f3 7/2"));
        // Anything other than the `ticket` extension still trips the
        // trailing-token check.
        let bad = encode_submit(SubmitMode::Sync, 2, &batch).replacen(
            "submit sync 2 3",
            "submit sync 2 3 surprise",
            1,
        );
        assert!(matches!(
            parse_submit(&bad),
            Err(WireError::Remote { code: c, .. }) if c == code::MALFORMED
        ));
    }

    #[test]
    fn submit_with_wrong_count_is_malformed() {
        let batch = sample_batch();
        let payload = encode_submit(SubmitMode::Sync, 2, &batch);
        let lied = payload.replacen("submit sync 2 3", "submit sync 2 4", 1);
        assert!(matches!(
            parse_submit(&lied),
            Err(WireError::Remote { code: c, .. }) if c == code::MALFORMED
        ));
    }

    #[test]
    fn sync_digest_error_round_trip() {
        assert_eq!(parse_sync(&encode_sync(Some(41))).unwrap(), 41);
        assert_eq!(parse_sync(&encode_sync(None)).unwrap(), u64::MAX);
        assert_eq!(parse_synced(&encode_synced(7)).unwrap(), 7);
        let (epoch, digest) = parse_digest(&encode_digest(9, "00ff00ff00ff00ff")).unwrap();
        assert_eq!((epoch, digest.as_str()), (9, "00ff00ff00ff00ff"));
        let err = WireError::remote(code::JOURNAL, "disk gone (very bad)");
        let parsed = parse_error(&encode_error(&err)).unwrap();
        match parsed {
            WireError::Remote { code: c, message } => {
                assert_eq!(c, code::JOURNAL);
                assert!(message.contains("disk gone (very bad)"));
            }
            other => panic!("expected remote, got {other:?}"),
        }
    }

    #[test]
    fn stats_round_trips_bucket_exact() {
        let hist = hsched_telemetry::Histogram::new();
        for v in [1u64, 3, 3, 900, 70_000] {
            hist.record(v);
        }
        let mut snap = MetricsSnapshot::default();
        snap.put_counter("net.frames_in", 42);
        snap.put_counter("engine.epochs", 7);
        snap.put_histogram("net.repl.lag_records", hist.snapshot());
        let parsed = parse_stats(&encode_stats(&snap)).unwrap();
        assert_eq!(parsed, snap);
        let round = parsed.histogram("net.repl.lag_records").unwrap();
        assert_eq!(round.count(), 5);
        assert_eq!(round.max(), 70_000);
        assert_eq!(round.p50(), hist.snapshot().p50());
    }

    #[test]
    fn replication_frames_round_trip() {
        assert_eq!(
            parse_follow(&encode_follow(123, 0xdead_beef)).unwrap(),
            (123, 0xdead_beef)
        );
        assert_eq!(parse_streaming(&encode_streaming(9, 4)).unwrap(), (9, 4));
        let chunk = "epoch 1 1\nadd a 1 1 0 0\nverdict admitted\nend\n";
        let framed = encode_jbytes(55, chunk);
        let (offset, bytes) = parse_jbytes(&framed).unwrap();
        assert_eq!(offset, 55);
        assert_eq!(bytes, chunk);
        assert_eq!(parse_ack(&encode_ack(17)).unwrap(), 17);
        assert_eq!(
            parse_reset(&encode_reset("prefix digest mismatch")).unwrap(),
            "prefix digest mismatch"
        );
    }

    #[test]
    fn keyword_extraction() {
        assert_eq!(keyword("submit sync 2 0"), "submit");
        assert_eq!(keyword(""), "");
    }
}
