//! A deliberately independent, textbook implementation of single-processor
//! fixed-priority response-time analysis (Joseph & Pandya / Audsley), used
//! as a cross-check oracle: on a dedicated `(1, 0, 0)` platform with
//! independent single-task transactions, the paper's general machinery must
//! reproduce these numbers exactly. The regression bench
//! `classic_regression` exercises this on randomized task sets.

use hsched_numeric::{Cycles, Rational, Time};

/// A classic independent periodic task.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClassicTask {
    /// Worst-case execution time.
    pub wcet: Cycles,
    /// Period (= minimum inter-arrival time).
    pub period: Time,
    /// Priority, greater = higher.
    pub priority: u32,
}

/// Worst-case response times of independent tasks on one preemptive
/// fixed-priority processor:
///
/// `w = C_i + Σ_{j ∈ hp(i)} ⌈w / T_j⌉ · C_j`
///
/// Returns `None` for a task whose recurrence diverges (utilization ≥ 1 at
/// its priority level); other tasks still get their values.
pub fn response_times(tasks: &[ClassicTask]) -> Vec<Option<Time>> {
    tasks
        .iter()
        .map(|task| {
            let hp: Vec<&ClassicTask> = tasks
                .iter()
                .filter(|t| !std::ptr::eq(*t, task) && t.priority >= task.priority)
                .collect();
            // Divergence bound: a busy period can't be longer than the point
            // where level-i utilization 1 is provably exceeded; cap
            // generously instead of solving for it.
            let bound = tasks
                .iter()
                .map(|t| t.period)
                .fold(Time::ZERO, |a, b| a + b)
                * Rational::from_integer(64)
                + task.period * Rational::from_integer(64);
            let mut w = task.wcet;
            for _ in 0..1_000_000 {
                let demand: Cycles = task.wcet
                    + hp.iter()
                        .map(|t| Rational::from_integer((w / t.period).ceil().max(0)) * t.wcet)
                        .sum::<Cycles>();
                if demand == w {
                    return Some(w);
                }
                if demand > bound {
                    return None;
                }
                w = demand;
            }
            None
        })
        .collect()
}

/// Level-`i` utilization check: `Σ_{p_j ≥ p_i} C_j/T_j ≤ 1` is necessary for
/// task `i` to converge.
pub fn level_utilization(tasks: &[ClassicTask], i: usize) -> Rational {
    tasks
        .iter()
        .filter(|t| t.priority >= tasks[i].priority)
        .map(|t| t.wcet / t.period)
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use hsched_numeric::rat;

    #[test]
    fn textbook_example() {
        // Liu & Layland-style set: (C=1,T=4,p=3), (C=2,T=6,p=2), (C=3,T=13,p=1).
        let tasks = [
            ClassicTask {
                wcet: rat(1, 1),
                period: rat(4, 1),
                priority: 3,
            },
            ClassicTask {
                wcet: rat(2, 1),
                period: rat(6, 1),
                priority: 2,
            },
            ClassicTask {
                wcet: rat(3, 1),
                period: rat(13, 1),
                priority: 1,
            },
        ];
        let r = response_times(&tasks);
        assert_eq!(r[0], Some(rat(1, 1)));
        // w = 2 + ⌈w/4⌉·1 → 3.
        assert_eq!(r[1], Some(rat(3, 1)));
        // w = 3 + ⌈w/4⌉·1 + ⌈w/6⌉·2 → 3+1+2=6 → 3+2+2=7 → 3+2+4=9 →
        // 3+3+4=10 → 3+3+4=10.
        assert_eq!(r[2], Some(rat(10, 1)));
    }

    #[test]
    fn overload_returns_none() {
        // hp task saturates the CPU (U = 1): the low task's recurrence
        // gains at least its own WCET every round and never settles.
        let tasks = [
            ClassicTask {
                wcet: rat(4, 1),
                period: rat(4, 1),
                priority: 2,
            },
            ClassicTask {
                wcet: rat(1, 1),
                period: rat(10, 1),
                priority: 1,
            },
        ];
        let r = response_times(&tasks);
        assert_eq!(r[0], Some(rat(4, 1)));
        assert_eq!(r[1], None);
        assert_eq!(level_utilization(&tasks, 1), rat(11, 10));
    }

    #[test]
    fn equal_priorities_interfere_both_ways() {
        let tasks = [
            ClassicTask {
                wcet: rat(1, 1),
                period: rat(10, 1),
                priority: 1,
            },
            ClassicTask {
                wcet: rat(2, 1),
                period: rat(10, 1),
                priority: 1,
            },
        ];
        let r = response_times(&tasks);
        assert_eq!(r[0], Some(rat(3, 1)));
        assert_eq!(r[1], Some(rat(3, 1)));
    }

    #[test]
    fn general_machinery_agrees_on_dedicated_platform() {
        // The same task set through the full transactional analysis on a
        // (1,0,0) platform must give identical numbers.
        use crate::analyze;
        use hsched_platform::{Platform, PlatformSet};
        use hsched_transaction::{Task, Transaction, TransactionSet};

        let classic = [
            ClassicTask {
                wcet: rat(1, 1),
                period: rat(4, 1),
                priority: 3,
            },
            ClassicTask {
                wcet: rat(2, 1),
                period: rat(6, 1),
                priority: 2,
            },
            ClassicTask {
                wcet: rat(3, 1),
                period: rat(13, 1),
                priority: 1,
            },
        ];
        let expected = response_times(&classic);

        let mut platforms = PlatformSet::new();
        let p = platforms.add(Platform::dedicated("cpu"));
        let txs = classic
            .iter()
            .enumerate()
            .map(|(i, t)| {
                Transaction::new(
                    format!("t{i}"),
                    t.period,
                    t.period,
                    vec![Task::new(format!("c{i}"), t.wcet, t.wcet, t.priority, p)],
                )
                .unwrap()
            })
            .collect();
        let set = TransactionSet::new(platforms, txs).unwrap();
        let report = analyze(&set);
        for (i, want) in expected.iter().enumerate() {
            assert_eq!(report.response(i, 0), want.unwrap(), "task {i}");
        }
    }
}
