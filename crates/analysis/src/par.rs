//! Minimal deterministic parallel map over std scoped threads.
//!
//! The holistic iteration is a Jacobi scheme: every task's response time in
//! iteration `k` depends only on the state vector of iteration `k − 1`, so
//! the per-task analyses of one iteration are embarrassingly parallel and
//! the result is bit-identical regardless of thread count.

/// Applies `f` to every item, splitting the index space into contiguous
/// chunks across `threads` workers. Results come back in input order.
///
/// `threads == 0` uses the available parallelism; `threads == 1` (or a
/// single-item input) runs inline without spawning.
///
/// Public because the design-space search (`hsched-design`) parallelizes its
/// sweeps with the same deterministic chunking.
pub fn parallel_map<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let threads = match threads {
        0 => std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
        n => n,
    };
    let threads = threads.min(items.len().max(1));
    if threads <= 1 || items.len() <= 1 {
        return items.iter().map(&f).collect();
    }

    let chunk_size = items.len().div_ceil(threads);
    let f = &f;
    let mut results: Vec<Vec<R>> = Vec::with_capacity(threads);
    std::thread::scope(|scope| {
        let handles: Vec<_> = items
            .chunks(chunk_size)
            .map(|chunk| scope.spawn(move || chunk.iter().map(f).collect::<Vec<R>>()))
            .collect();
        for h in handles {
            results.push(h.join().expect("analysis worker panicked"));
        }
    });
    results.into_iter().flatten().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order() {
        let items: Vec<i64> = (0..1000).collect();
        for threads in [0, 1, 2, 3, 7, 16] {
            let out = parallel_map(&items, threads, |&x| x * x);
            assert_eq!(out.len(), 1000);
            for (i, v) in out.iter().enumerate() {
                assert_eq!(*v, (i as i64) * (i as i64), "threads={threads}");
            }
        }
    }

    #[test]
    fn empty_and_single() {
        let empty: Vec<i32> = vec![];
        assert!(parallel_map(&empty, 4, |&x| x).is_empty());
        assert_eq!(parallel_map(&[42], 4, |&x| x + 1), vec![43]);
    }

    #[test]
    fn more_threads_than_items() {
        let out = parallel_map(&[1, 2, 3], 64, |&x| x * 10);
        assert_eq!(out, vec![10, 20, 30]);
    }
}
