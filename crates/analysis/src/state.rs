//! Per-task analysis state: offsets, jitters, response times.

use crate::{best_service_time, ServiceTimeMode};
use hsched_numeric::Time;
use hsched_transaction::TransactionSet;

/// The evolving state of one task during the holistic iteration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TaskState {
    /// Offset `φi,j`: earliest instant after the transaction's activation at
    /// which the task can be released — the accumulated best-case completion
    /// of its predecessors (Eq. 18, static across iterations because the
    /// best-case bound is).
    pub phi: Time,
    /// Jitter `Ji,j`: worst-case extra release delay past the offset —
    /// `R_{i,j−1} − Rbest_{i,j−1}` (Eq. 18), grows monotonically over the
    /// holistic iterations.
    pub jitter: Time,
}

impl TaskState {
    /// Latest possible release after transaction activation: `φ + J`.
    pub fn latest_release(&self) -> Time {
        self.phi + self.jitter
    }
}

/// Computes, for each task, the best-case completion time of its
/// predecessor chain (the paper's `Rbest` / Table 1's φmin column):
///
/// `offsets[i][j] = Σ_{k<j} best_service(Cbest_{i,k})`
///
/// and `best_response[i][j] = offsets[i][j] + best_service(Cbest_{i,j})`.
pub fn best_case_offsets(
    set: &TransactionSet,
    mode: ServiceTimeMode,
) -> (Vec<Vec<Time>>, Vec<Vec<Time>>) {
    let platforms = set.platforms();
    let mut offsets = Vec::with_capacity(set.transactions().len());
    let mut best_responses = Vec::with_capacity(set.transactions().len());
    for tx in set.transactions() {
        let mut row_off = Vec::with_capacity(tx.len());
        let mut row_best = Vec::with_capacity(tx.len());
        let mut acc = Time::ZERO;
        for task in tx.tasks() {
            row_off.push(acc);
            let best = best_service_time(&platforms[task.platform], task.bcet, mode);
            acc += best;
            row_best.push(acc);
        }
        offsets.push(row_off);
        best_responses.push(row_best);
    }
    (offsets, best_responses)
}

/// Initial state: offsets at their best-case values, jitters zero
/// (§3.2: "the initial values of jitters and offsets") — except the first
/// task of each transaction, which inherits the stream's release jitter.
pub fn initial_states(set: &TransactionSet, mode: ServiceTimeMode) -> Vec<Vec<TaskState>> {
    let (offsets, _) = best_case_offsets(set, mode);
    offsets
        .into_iter()
        .zip(set.transactions())
        .map(|(row, tx)| {
            row.into_iter()
                .enumerate()
                .map(|(j, phi)| TaskState {
                    phi,
                    jitter: if j == 0 {
                        tx.release_jitter
                    } else {
                        Time::ZERO
                    },
                })
                .collect()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use hsched_numeric::rat;
    use hsched_transaction::paper_example;

    #[test]
    fn paper_offsets_match_table1_phi_min() {
        let set = paper_example::transactions();
        let (offsets, best) = best_case_offsets(&set, ServiceTimeMode::LinearBounds);
        // Γ1: φmin = [0, 3, 4, 5] (Table 1).
        assert_eq!(offsets[0], vec![rat(0, 1), rat(3, 1), rat(4, 1), rat(5, 1)]);
        // Best-case responses: 3, 4, 5, 8 (compute's own best on Π3 is 3).
        assert_eq!(best[0], vec![rat(3, 1), rat(4, 1), rat(5, 1), rat(8, 1)]);
        // Single-task transactions have zero offset.
        assert_eq!(offsets[1], vec![rat(0, 1)]);
        assert_eq!(offsets[3], vec![rat(0, 1)]);
        // τ2,1 best: max(0, 0.25/0.4 − 1) = 0.
        assert_eq!(best[1], vec![rat(0, 1)]);
        // τ4,1 best: max(0, 5/0.2 − 1) = 24.
        assert_eq!(best[3], vec![rat(24, 1)]);
    }

    #[test]
    fn initial_states_have_zero_jitter() {
        let set = paper_example::transactions();
        let states = initial_states(&set, ServiceTimeMode::LinearBounds);
        for row in &states {
            for s in row {
                assert_eq!(s.jitter, Time::ZERO);
            }
        }
        assert_eq!(states[0][3].phi, rat(5, 1));
        assert_eq!(states[0][3].latest_release(), rat(5, 1));
    }
}
