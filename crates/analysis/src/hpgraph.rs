//! The priority-aware interference graph behind incremental analysis.
//!
//! The holistic iteration only propagates through two kinds of edges:
//!
//! * **interference** — task `a` can delay task `b` iff they share a
//!   platform and `a`'s priority is ≥ `b`'s (`a ∈ hp(b)`, Eq. 17); a change
//!   to `a`'s timing can therefore change `b`'s response, never the other
//!   way around;
//! * **chain** — `b`'s response feeds the jitter of its successor in the
//!   same transaction (`J_{i,j} = R_{i,j−1} − Rbest_{i,j−1}`, Eq. 18).
//!
//! The tasks whose fixpoint values can change after a batch of arrivals,
//! departures, or retunes are exactly the forward-reachable set from the
//! change's seeds over these edges — the change's **interference cone**.
//! Everything outside the cone keeps its old converged values, which is
//! what makes cone-restricted re-analysis exact (see
//! [`crate::WarmStart`]): a platform-sharing island is only an upper bound
//! on the cone, and usually a much coarser one, because interference never
//! flows from low to high priority.
//!
//! [`HpGraph`] is the reusable form of that graph: built once per
//! transaction set, it answers closure queries for the admission layer's
//! dirty tracking and drives the [`crate`]-internal RTA-cache invalidation
//! between holistic sweeps.

use hsched_platform::PlatformId;
use hsched_transaction::{TaskRef, TransactionSet};

/// A change to feed into [`HpGraph::closure`]: where new, removed, or
/// retimed demand enters the system.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DirtySeed {
    /// A task present in the set whose own timing must be (re)computed —
    /// e.g. every task of a freshly admitted transaction.
    Task(TaskRef),
    /// The interference footprint of a task that is *no longer* in the set
    /// (a departure): everything it could have delayed — tasks on
    /// `platform` with priority ≤ `priority` — may now finish earlier.
    Footprint {
        /// Platform the departed task executed on.
        platform: PlatformId,
        /// Priority of the departed task.
        priority: u32,
    },
    /// A platform whose service curve changed (a retune): every task it
    /// hosts is a seed.
    Platform(PlatformId),
}

/// Per-task record of the graph.
#[derive(Debug, Clone, Copy)]
struct TaskNode {
    priority: u32,
    platform: usize,
    /// `true` when the task has a successor in its transaction chain.
    has_successor: bool,
}

/// The dirty closure of a batch of seeds: which tasks (and transactions)
/// are inside the interference cone. Layout-aligned with the set the graph
/// was built from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DirtyClosure {
    /// `tasks[i][j]` — task τi,j is inside the cone.
    pub tasks: Vec<Vec<bool>>,
    /// `transactions[i]` — some task of Γi is inside the cone.
    pub transactions: Vec<bool>,
}

impl DirtyClosure {
    /// Number of dirty transactions.
    pub fn transaction_count(&self) -> usize {
        self.transactions.iter().filter(|&&d| d).count()
    }
}

/// The task-level interference graph of one transaction set (see the
/// module docs for the edge relation). Construction is O(tasks + platform
/// populations); closure queries are a BFS over the cone only.
#[derive(Debug, Clone)]
pub struct HpGraph {
    /// Flat index of the first task of each transaction.
    starts: Vec<usize>,
    nodes: Vec<TaskNode>,
    /// Platform index → `(flat task index, priority)` of its tasks.
    platform_tasks: Vec<Vec<(usize, u32)>>,
}

impl HpGraph {
    /// Builds the graph of the given set.
    pub fn of(set: &TransactionSet) -> HpGraph {
        let mut starts = Vec::with_capacity(set.transactions().len());
        let mut nodes = Vec::new();
        let mut platform_tasks: Vec<Vec<(usize, u32)>> = vec![Vec::new(); set.platforms().len()];
        for tx in set.transactions() {
            starts.push(nodes.len());
            for (j, task) in tx.tasks().iter().enumerate() {
                let flat = nodes.len();
                nodes.push(TaskNode {
                    priority: task.priority,
                    platform: task.platform.0,
                    has_successor: j + 1 < tx.len(),
                });
                platform_tasks[task.platform.0].push((flat, task.priority));
            }
        }
        HpGraph {
            starts,
            nodes,
            platform_tasks,
        }
    }

    /// Flat index of a task.
    fn flat(&self, r: TaskRef) -> usize {
        self.starts[r.tx] + r.idx
    }

    /// Tasks on `platform` with priority ≤ `priority` — what a task with
    /// these coordinates can interfere with (its direct cone frontier).
    fn sweep_platform(&self, platform: usize, priority: u32, out: &mut Vec<usize>) {
        if let Some(tasks) = self.platform_tasks.get(platform) {
            for &(flat, prio) in tasks {
                if prio <= priority {
                    out.push(flat);
                }
            }
        }
    }

    /// Forward reachability from the seeds over interference + chain edges:
    /// the exact set of tasks whose fixpoint values can differ from the
    /// pre-change analysis. Out-of-range seeds (e.g. footprints on a
    /// platform with no remaining tasks) contribute nothing.
    pub fn closure(&self, set: &TransactionSet, seeds: &[DirtySeed]) -> DirtyClosure {
        let mut dirty = vec![false; self.nodes.len()];
        let mut frontier: Vec<usize> = Vec::new();
        for seed in seeds {
            match *seed {
                DirtySeed::Task(r) => {
                    if r.tx < self.starts.len() {
                        frontier.push(self.flat(r));
                    }
                }
                DirtySeed::Footprint { platform, priority } => {
                    self.sweep_platform(platform.0, priority, &mut frontier);
                }
                DirtySeed::Platform(p) => {
                    self.sweep_platform(p.0, u32::MAX, &mut frontier);
                }
            }
        }
        while let Some(flat) = frontier.pop() {
            if std::mem::replace(&mut dirty[flat], true) {
                continue;
            }
            let node = self.nodes[flat];
            // Interference edges: everything this task can delay.
            self.sweep_platform(node.platform, node.priority, &mut frontier);
            // Chain edge: the response feeds the successor's jitter.
            if node.has_successor {
                frontier.push(flat + 1);
            }
        }

        let mut tasks = Vec::with_capacity(set.transactions().len());
        let mut transactions = Vec::with_capacity(set.transactions().len());
        for (i, tx) in set.transactions().iter().enumerate() {
            let row: Vec<bool> = (0..tx.len()).map(|j| dirty[self.starts[i] + j]).collect();
            transactions.push(row.iter().any(|&d| d));
            tasks.push(row);
        }
        DirtyClosure {
            tasks,
            transactions,
        }
    }

    /// Direct interference targets of task `r` (excluding `r` itself), as
    /// flat indices — used by the RTA cache to invalidate exactly the tasks
    /// whose foreign-interference memo reads `r`'s state.
    pub(crate) fn targets_of(&self, r: TaskRef, out: &mut Vec<usize>) {
        let flat = self.flat(r);
        let node = self.nodes[flat];
        if let Some(tasks) = self.platform_tasks.get(node.platform) {
            for &(other, prio) in tasks {
                if other != flat && prio <= node.priority {
                    out.push(other);
                }
            }
        }
    }

    /// Total number of tasks in the graph.
    pub(crate) fn task_count(&self) -> usize {
        self.nodes.len()
    }

    /// Flat index of a task (crate-visible for the RTA cache).
    pub(crate) fn flat_index(&self, r: TaskRef) -> usize {
        self.flat(r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hsched_transaction::paper_example;

    fn paper() -> (TransactionSet, HpGraph) {
        let set = paper_example::transactions();
        let graph = HpGraph::of(&set);
        (set, graph)
    }

    /// The paper's system: Γ1 = τ1,1(Π3,p2) τ1,2(Π1,p1) τ1,3(Π2,p1)
    /// τ1,4(Π3,p3); Γ2 = τ2,1(Π1,p3); Γ3 = τ3,1(Π2,p3); Γ4 = τ4,1(Π3,p1).
    #[test]
    fn arrival_cone_excludes_higher_priority_tasks() {
        let (set, graph) = paper();
        // A new task on Π3 at priority 1 can only delay priority ≤ 1 tasks
        // on Π3: τ4,1. Nothing propagates further (τ4,1 has no successor
        // and interferes with nothing below it except itself).
        let cone = graph.closure(
            &set,
            &[DirtySeed::Footprint {
                platform: hsched_platform::PlatformId(2),
                priority: 1,
            }],
        );
        assert_eq!(cone.transactions, vec![false, false, false, true]);
        assert!(cone.tasks[3][0]);
    }

    #[test]
    fn chain_edges_propagate_downstream_then_across() {
        let (set, graph) = paper();
        // Seed τ1,1 (Π3, p2): its interference targets on Π3 are τ4,1 (p1)
        // — not τ1,4 (p3, higher). Its chain successor τ1,2 (Π1, p1)
        // drags in nothing new on Π1 (τ2,1 has p3), then τ1,3, τ1,4; τ1,4
        // (p3 on Π3) re-sweeps Π3 and confirms τ1,1/τ4,1.
        let cone = graph.closure(&set, &[DirtySeed::Task(TaskRef { tx: 0, idx: 0 })]);
        assert_eq!(cone.transactions, vec![true, false, false, true]);
        assert_eq!(cone.tasks[0], vec![true, true, true, true]);
    }

    #[test]
    fn high_priority_island_member_stays_clean() {
        let (set, graph) = paper();
        // Seed the lowest-priority task τ4,1 (Π3, p1): it delays nothing,
        // so the cone is itself alone — even though Π1/Π2/Π3 form one
        // island through Γ1 (the island tracker would re-analyze all four
        // transactions).
        let cone = graph.closure(&set, &[DirtySeed::Task(TaskRef { tx: 3, idx: 0 })]);
        assert_eq!(cone.transactions, vec![false, false, false, true]);
        assert_eq!(cone.transaction_count(), 1);
    }

    #[test]
    fn retune_sweeps_the_whole_platform() {
        let (set, graph) = paper();
        let cone = graph.closure(&set, &[DirtySeed::Platform(hsched_platform::PlatformId(0))]);
        // Π1 hosts τ1,2 (chain → τ1,3, τ1,4 → Π3 sweep at p3) and τ2,1.
        assert_eq!(cone.transactions, vec![true, true, false, true]);
    }

    #[test]
    fn out_of_range_seeds_are_ignored() {
        let (set, graph) = paper();
        let cone = graph.closure(
            &set,
            &[DirtySeed::Footprint {
                platform: hsched_platform::PlatformId(99),
                priority: 5,
            }],
        );
        assert_eq!(cone.transaction_count(), 0);
        let cone = graph.closure(&set, &[]);
        assert_eq!(cone.transaction_count(), 0);
    }

    #[test]
    fn targets_follow_the_hp_relation() {
        let (_, graph) = paper();
        // τ1,4 (Π3, p3) targets τ1,1 (p2) and τ4,1 (p1), not itself.
        let mut out = Vec::new();
        graph.targets_of(TaskRef { tx: 0, idx: 3 }, &mut out);
        out.sort_unstable();
        assert_eq!(out, vec![0, 6]); // flat: τ1,1 = 0, τ4,1 = 6
                                     // τ4,1 (p1) targets nothing.
        let mut out = Vec::new();
        graph.targets_of(TaskRef { tx: 3, idx: 0 }, &mut out);
        assert!(out.is_empty());
    }
}
