//! Schedulability analysis on abstract computing platforms (§3 of the
//! paper): a generalization of holistic / offset-based response-time
//! analysis (Tindell & Clark; Palencia & González Harbour) to tasks served
//! by `(α, Δ, β)` platforms.
//!
//! # Structure
//!
//! * `state` — per-task analysis state: offsets φ (from best-case response
//!   times, Eq. 18) and jitters J;
//! * `interference` — the worst-case contribution `W^k_i` of a transaction
//!   to a busy period (Eqs. 8–11) and the reduced upper bound `W*_i`
//!   (Eq. 15);
//! * `rta` — the per-task static-offset analysis: exact scenario
//!   enumeration (§3.1.1, Eqs. 12–14) and the reduced-scenario
//!   approximation (§3.1.2, Eq. 16);
//! * `holistic` — the outer dynamic-offset (holistic) fixpoint of §3.2:
//!   jitter propagation `J_{i,j} = R_{i,j−1} − Rbest_{i,j−1}` iterated to
//!   convergence, in parallel across tasks;
//! * `report` — the [`SchedulabilityReport`] with the full iteration
//!   trace (reproducing Table 3) and per-transaction verdicts;
//! * [`classic`] — an independent, textbook single-processor
//!   response-time analysis used as a cross-check oracle for the
//!   degenerate `(1, 0, 0)` platform.
//!
//! # Modes
//!
//! The completion-time recurrences of the paper have the shape
//! `w = Δ + demand/α` (Eq. 13): the platform's minimum supply inverted at
//! the accumulated demand. [`ServiceTimeMode::LinearBounds`] reproduces the
//! paper exactly; [`ServiceTimeMode::ExactCurve`] instead inverts the
//! platform's real supply staircase (periodic server, TDMA, …), quantifying
//! the pessimism the paper's §2.3 closing remark concedes — the ablation
//! benchmark `ablation_linear_vs_exact` measures the difference.
//!
//! # Example: the paper's §4 analysis
//!
//! ```
//! use hsched_analysis::analyze;
//! use hsched_transaction::paper_example;
//! use hsched_numeric::rat;
//!
//! let system = paper_example::transactions();
//! let report = analyze(&system);
//! assert!(report.schedulable());
//! // Γ1's end-to-end response: the paper's equations converge to 31
//! // (Table 3 prints 39 for the last iterate; see EXPERIMENTS.md).
//! assert_eq!(report.response(0, 3), rat(31, 1));
//! ```

#![warn(missing_docs)]

mod cache;
pub mod classic;
mod holistic;
mod hpgraph;
mod interference;
mod metrics;
mod par;
mod report;
mod rta;
mod state;

pub use holistic::{analyze, analyze_resumed, analyze_with, AnalysisError, FrozenSeed, WarmStart};
pub use hpgraph::{DirtyClosure, DirtySeed, HpGraph};
pub use metrics::AnalysisMetrics;
pub use par::parallel_map;
pub use report::{IterationRecord, SchedulabilityReport, TaskResult, TransactionVerdict};
pub use state::{best_case_offsets, TaskState};

use hsched_numeric::{Cycles, Time};
use hsched_platform::Platform;
use hsched_supply::SupplyCurve;

/// How the platform's service is inverted in the completion-time
/// recurrences.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ServiceTimeMode {
    /// The paper's linear model: worst case `Δ + demand/α`, best case
    /// `max(0, demand/α − β)`.
    #[default]
    LinearBounds,
    /// Invert the platform's exact supply curves (`Zmin`/`Zmax` of the
    /// underlying mechanism). Less pessimistic for platforms constructed
    /// from a concrete mechanism; identical to `LinearBounds` for platforms
    /// specified directly as `(α, Δ, β)`.
    ExactCurve,
}

/// Scenario treatment for the per-task analysis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ScenarioMode {
    /// §3.1.2: upper-bound every other transaction's contribution by
    /// `W*_i` (Eq. 15) and enumerate only the scenarios of the task's own
    /// transaction. Polynomial, slightly pessimistic. The default.
    #[default]
    Approximate,
    /// §3.1.1: enumerate the full cartesian scenario space of Eq. (12).
    /// Exponential; fails if the scenario count exceeds the given cap.
    Exact {
        /// Upper bound on the number of scenarios per task (Eq. 12) before
        /// the analysis refuses to run.
        max_scenarios: u64,
    },
}

/// Order in which the holistic iteration consumes freshly computed
/// response times.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum UpdateOrder {
    /// All tasks analyzed against the previous iteration's jitters, then all
    /// jitters updated together. Reproduces the paper's Table 3 column by
    /// column and parallelizes perfectly.
    #[default]
    Jacobi,
    /// Each task's fresh response immediately feeds its successor's jitter
    /// within the same sweep. Converges to the same fixpoint (the iteration
    /// is monotone) in fewer sweeps; runs sequentially.
    GaussSeidel,
}

/// Analysis configuration.
///
/// Equality compares every *behavioral* knob and ignores
/// [`AnalysisConfig::metrics`]: the sink observes an analysis without
/// affecting any of its results, so two configs that differ only in where
/// they report telemetry are interchangeable (controller merge checks rely
/// on this).
#[derive(Debug, Clone)]
pub struct AnalysisConfig {
    /// Linear `(α, Δ, β)` bounds (the paper) or exact supply inversion.
    pub service_mode: ServiceTimeMode,
    /// Approximate (reduced scenarios) or exact analysis.
    pub scenario_mode: ScenarioMode,
    /// Jacobi (paper-faithful trace) or Gauss-Seidel (faster convergence).
    pub update_order: UpdateOrder,
    /// Cap on outer holistic iterations before declaring divergence.
    pub max_outer_iterations: usize,
    /// Cap on inner fixpoint iterations (busy period / completion time).
    pub max_inner_iterations: usize,
    /// Declare a task unschedulable (and stop iterating its growth) once its
    /// response exceeds `divergence_factor ×` its transaction deadline.
    pub divergence_factor: u32,
    /// Analyze tasks of one holistic iteration in parallel worker threads.
    /// `1` = sequential. The result is identical regardless (Jacobi
    /// iteration reads only the previous iteration's state).
    pub threads: usize,
    /// Per-task blocking terms `B_{a,b}` (time units), indexed like the
    /// transaction set; empty means all zero. The paper carries `B` through
    /// Eq. (13)/(16) without prescribing a protocol; this hook lets callers
    /// plug in blocking from e.g. SRP on each platform.
    pub blocking: Vec<Vec<Time>>,
    /// Memoize the RTA hot path (foreign `W*` totals per busy-window
    /// length, supply inversions per demand) across holistic sweeps,
    /// invalidated through the hp-graph when a jitter changes. Identical
    /// results either way; off is only useful for measuring the cache.
    pub rta_cache: bool,
    /// Optional telemetry sink: RTA cache hit/miss counters and fixpoint
    /// iteration distributions are recorded here when present (see
    /// [`AnalysisMetrics`]). The config clone handed to every island
    /// analysis shares the sink, so one `Arc` observes a whole
    /// controller's — or service's — analysis traffic. `None` (the
    /// default) records nothing.
    pub metrics: Option<std::sync::Arc<AnalysisMetrics>>,
}

impl PartialEq for AnalysisConfig {
    fn eq(&self, other: &AnalysisConfig) -> bool {
        // `metrics` deliberately excluded — see the type docs.
        self.service_mode == other.service_mode
            && self.scenario_mode == other.scenario_mode
            && self.update_order == other.update_order
            && self.max_outer_iterations == other.max_outer_iterations
            && self.max_inner_iterations == other.max_inner_iterations
            && self.divergence_factor == other.divergence_factor
            && self.threads == other.threads
            && self.blocking == other.blocking
            && self.rta_cache == other.rta_cache
    }
}

impl Default for AnalysisConfig {
    fn default() -> AnalysisConfig {
        AnalysisConfig {
            service_mode: ServiceTimeMode::LinearBounds,
            scenario_mode: ScenarioMode::Approximate,
            update_order: UpdateOrder::Jacobi,
            max_outer_iterations: 256,
            max_inner_iterations: 100_000,
            divergence_factor: 64,
            threads: 1,
            blocking: Vec::new(),
            rta_cache: true,
            metrics: None,
        }
    }
}

impl AnalysisConfig {
    /// The paper's configuration (linear bounds, reduced scenarios).
    pub fn paper() -> AnalysisConfig {
        AnalysisConfig::default()
    }

    /// Exact scenario enumeration with the given cap.
    pub fn exact(max_scenarios: u64) -> AnalysisConfig {
        AnalysisConfig {
            scenario_mode: ScenarioMode::Exact { max_scenarios },
            ..AnalysisConfig::default()
        }
    }

    /// Blocking term for task `(tx, idx)`; zero when not configured.
    pub(crate) fn blocking_of(&self, tx: usize, idx: usize) -> Time {
        self.blocking
            .get(tx)
            .and_then(|row| row.get(idx))
            .copied()
            .unwrap_or(Time::ZERO)
    }
}

/// Worst-case time for `platform` to serve `demand` cycles from the start
/// of a busy interval (pseudo-inverse of Zmin), under the chosen mode.
pub(crate) fn service_time(platform: &Platform, demand: Cycles, mode: ServiceTimeMode) -> Time {
    match mode {
        ServiceTimeMode::LinearBounds => platform.linear_model().worst_case_service(demand),
        ServiceTimeMode::ExactCurve => platform.time_to_supply_min(demand),
    }
}

/// Best-case time for `platform` to serve `demand` cycles (pseudo-inverse of
/// Zmax), under the chosen mode.
pub(crate) fn best_service_time(
    platform: &Platform,
    demand: Cycles,
    mode: ServiceTimeMode,
) -> Time {
    match mode {
        ServiceTimeMode::LinearBounds => platform.linear_model().best_case_service(demand),
        ServiceTimeMode::ExactCurve => platform.time_to_supply_max(demand),
    }
}
