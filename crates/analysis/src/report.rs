//! Analysis results: per-task numbers, per-transaction verdicts, and the
//! full holistic iteration trace (the data behind the paper's Table 3).

use hsched_numeric::Time;
use std::fmt;

/// Final numbers for one task.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TaskResult {
    /// Task name.
    pub name: String,
    /// Worst-case response time `Ri,j`, from the transaction's activation.
    pub response: Time,
    /// Best-case response bound `Rbest_i,j`.
    pub best_response: Time,
    /// Offset `φi,j` (= predecessor best-case completion).
    pub phi: Time,
    /// Final jitter `Ji,j`.
    pub jitter: Time,
}

/// Deadline verdict for one transaction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TransactionVerdict {
    /// Transaction name.
    pub name: String,
    /// Response time of the last task (end-to-end).
    pub end_to_end: Time,
    /// The transaction deadline `Di`.
    pub deadline: Time,
    /// `end_to_end ≤ deadline`, the analysis converged, and no task
    /// diverged.
    pub schedulable: bool,
}

/// State of one holistic iteration: the jitters used and the responses
/// computed (one Table 3 column).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IterationRecord {
    /// `jitters[i][j]` = Ji,j at the start of the iteration.
    pub jitters: Vec<Vec<Time>>,
    /// `responses[i][j]` = Ri,j computed in the iteration.
    pub responses: Vec<Vec<Time>>,
}

/// Complete output of [`crate::analyze`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SchedulabilityReport {
    /// Per-task results, indexed like the transaction set.
    pub tasks: Vec<Vec<TaskResult>>,
    /// Per-transaction verdicts.
    pub verdicts: Vec<TransactionVerdict>,
    /// One record per holistic iteration, in order.
    pub trace: Vec<IterationRecord>,
    /// The jitter vector reached a fixpoint.
    pub converged: bool,
    /// Some task's demand outgrew its platform (busy period diverged).
    pub diverged: bool,
}

impl SchedulabilityReport {
    /// The system is schedulable: converged, bounded, all deadlines met.
    pub fn schedulable(&self) -> bool {
        self.converged && !self.diverged && self.verdicts.iter().all(|v| v.schedulable)
    }

    /// Concatenates per-partition reports into one — exact when the
    /// partitions are independent interference islands (a task's response
    /// depends only on its own island, so the union of the island analyses
    /// *is* the full analysis). `converged` is the conjunction, `diverged`
    /// the disjunction, and the iteration trace is dropped (partitions
    /// iterate independently). Rows land in the order the parts are given:
    /// callers wanting a specific *set order* (the sharded engine's
    /// rejection reasons promise global set order) pass the parts in that
    /// order, deterministically. This is how the sharded admission engine
    /// assembles its global report from per-shard caches.
    pub fn concat<'a>(
        parts: impl IntoIterator<Item = &'a SchedulabilityReport>,
    ) -> SchedulabilityReport {
        let mut out = SchedulabilityReport {
            tasks: Vec::new(),
            verdicts: Vec::new(),
            trace: Vec::new(),
            converged: true,
            diverged: false,
        };
        for part in parts {
            out.tasks.extend_from_slice(&part.tasks);
            out.verdicts.extend_from_slice(&part.verdicts);
            out.converged &= part.converged;
            out.diverged |= part.diverged;
        }
        out
    }

    /// Response time of task `(tx, idx)`.
    pub fn response(&self, tx: usize, idx: usize) -> Time {
        self.tasks[tx][idx].response
    }

    /// Number of holistic iterations performed.
    pub fn iterations(&self) -> usize {
        self.trace.len()
    }

    /// Renders the iteration trace of one transaction in the layout of the
    /// paper's Table 3: one row per task, `J^(k)`/`R^(k)` columns per
    /// iteration.
    pub fn trace_table(&self, tx: usize) -> String {
        let mut out = String::new();
        let n = self.tasks[tx].len();
        out.push_str("task      ");
        for k in 0..self.trace.len() {
            out.push_str(&format!("| J({k})    R({k})   "));
        }
        out.push('\n');
        for j in 0..n {
            out.push_str(&format!("τ{},{:<7}", tx + 1, j + 1));
            for rec in &self.trace {
                out.push_str(&format!(
                    "| {:<7} {:<7}",
                    rec.jitters[tx][j].to_string(),
                    rec.responses[tx][j].to_string()
                ));
            }
            out.push('\n');
        }
        out
    }
}

impl fmt::Display for SchedulabilityReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "schedulability: {}{}",
            if self.schedulable() { "OK" } else { "FAILED" },
            if self.diverged {
                " (diverged: demand exceeds platform capacity)"
            } else if !self.converged {
                " (iteration cap reached before convergence)"
            } else {
                ""
            }
        )?;
        writeln!(f, "iterations: {}", self.iterations())?;
        for (i, v) in self.verdicts.iter().enumerate() {
            writeln!(
                f,
                "  Γ{} {:<28} R = {:<8} D = {:<8} [{}]",
                i + 1,
                v.name,
                v.end_to_end.to_string(),
                v.deadline.to_string(),
                if v.schedulable { "ok" } else { "MISS" }
            )?;
            for (j, t) in self.tasks[i].iter().enumerate() {
                writeln!(
                    f,
                    "    τ{},{} {:<32} R = {:<8} φ = {:<6} J = {:<6}",
                    i + 1,
                    j + 1,
                    t.name,
                    t.response.to_string(),
                    t.phi.to_string(),
                    t.jitter.to_string()
                )?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use crate::analyze;
    use hsched_transaction::paper_example;

    #[test]
    fn display_contains_verdicts_and_tasks() {
        let report = analyze(&paper_example::transactions());
        let text = report.to_string();
        assert!(text.contains("schedulability: OK"));
        assert!(text.contains("Integrator.Thread2"));
        assert!(text.contains("τ1,4"));
        assert!(text.contains("[ok]"));
    }

    #[test]
    fn trace_table_shape() {
        let report = analyze(&paper_example::transactions());
        let table = report.trace_table(0);
        let lines: Vec<&str> = table.lines().collect();
        assert_eq!(lines.len(), 5); // header + 4 tasks
        assert!(lines[0].contains("J(0)"));
        assert!(lines[0].contains("R(3)"));
        assert!(lines[1].starts_with("τ1,1"));
        assert!(lines[4].starts_with("τ1,4"));
    }

    #[test]
    fn concat_is_exact_on_islands() {
        use crate::SchedulabilityReport;
        let report = analyze(&paper_example::transactions());
        // Concatenating a report with an empty partition reproduces it
        // (up to the dropped trace).
        let empty = SchedulabilityReport::concat(std::iter::empty());
        assert!(empty.schedulable());
        let rejoined = SchedulabilityReport::concat([&report, &empty]);
        assert_eq!(rejoined.tasks, report.tasks);
        assert_eq!(rejoined.verdicts, report.verdicts);
        assert_eq!(rejoined.converged, report.converged);
        assert_eq!(rejoined.diverged, report.diverged);
        assert!(rejoined.trace.is_empty());
    }

    #[test]
    fn accessors() {
        let report = analyze(&paper_example::transactions());
        assert_eq!(report.iterations(), 4);
        assert_eq!(report.tasks[0][3].name, "compute");
        assert!(report.tasks[0][3].best_response < report.tasks[0][3].response);
    }
}
