//! Per-task static-offset response-time analysis (§3.1): completion-time
//! and busy-period fixpoints over scenarios.

use crate::cache::{RtaCache, TaskMemo};
use crate::interference::{hp_tasks, phase, w_scenario, w_star};
use crate::state::TaskState;
use crate::{service_time, AnalysisConfig, ScenarioMode};
use hsched_numeric::{Cycles, Rational, Time};
use hsched_transaction::{TaskRef, TransactionSet};
use std::sync::Mutex;

/// Errors that abort the analysis (as opposed to an *unschedulable* verdict,
/// which is a result).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AnalysisError {
    /// Exact mode: the scenario space of Eq. (12) exceeds the configured cap.
    TooManyScenarios {
        /// The task whose analysis exploded.
        task: TaskRef,
        /// Number of scenarios required.
        count: u128,
        /// The configured maximum.
        max: u64,
    },
    /// An inner fixpoint failed to settle within the iteration cap — in
    /// practice a sign of numeric runaway from degenerate parameters.
    InnerIterationCap {
        /// The task being analyzed.
        task: TaskRef,
    },
}

impl std::fmt::Display for AnalysisError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AnalysisError::TooManyScenarios { task, count, max } => write!(
                f,
                "exact analysis of {task} needs {count} scenarios (cap {max}); use the approximate mode"
            ),
            AnalysisError::InnerIterationCap { task } => {
                write!(f, "inner fixpoint for {task} hit the iteration cap")
            }
        }
    }
}

impl std::error::Error for AnalysisError {}

/// Result of analyzing one task at fixed offsets/jitters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct TaskAnalysis {
    /// The worst-case response time found (measured from the transaction's
    /// activation, like the paper's `Ri,j`).
    pub response: Time,
    /// `false` when the busy period or completion time grew past the
    /// divergence bound — the platform cannot sustain the demand and the
    /// task is unschedulable (response is then the value at bail-out).
    pub bounded: bool,
}

/// Analyzes task `under` given the current offset/jitter state of every
/// task (§3.1.2 approximate or §3.1.1 exact, per config). `cache`, when
/// present, memoizes this task's foreign-interference totals and supply
/// inversions across calls (the holistic loop owns invalidation).
pub(crate) fn analyze_task(
    set: &TransactionSet,
    states: &[Vec<TaskState>],
    under: TaskRef,
    config: &AnalysisConfig,
    cache: Option<&RtaCache>,
) -> Result<TaskAnalysis, AnalysisError> {
    let ctx = TaskContext::new(set, states, under, config, cache.map(|c| c.memo(under)));
    match config.scenario_mode {
        ScenarioMode::Approximate => ctx.analyze_approximate(),
        ScenarioMode::Exact { max_scenarios } => ctx.analyze_exact(max_scenarios),
    }
}

/// Precomputed context for one task's analysis.
struct TaskContext<'a> {
    set: &'a TransactionSet,
    states: &'a [Vec<TaskState>],
    under: TaskRef,
    config: &'a AnalysisConfig,
    /// `hpi(τa,b)` per transaction (Eq. 17).
    hp: Vec<Vec<usize>>,
    /// Period of the task's own transaction.
    period: Time,
    /// WCET of the task under analysis.
    wcet: Cycles,
    /// Offset φa,b.
    phi: Time,
    /// Jitter Ja,b.
    jitter: Time,
    /// Blocking Ba,b (time units).
    blocking: Time,
    /// Bail-out bound for busy periods / completion times.
    bound: Time,
    /// This task's hot-path memo (foreign W* totals, supply inversions).
    memo: Option<&'a Mutex<TaskMemo>>,
    /// Telemetry sink for cache hit/miss accounting, resolved once from
    /// the config so the hot path pays a single pointer check.
    metrics: Option<&'a crate::AnalysisMetrics>,
}

impl<'a> TaskContext<'a> {
    fn new(
        set: &'a TransactionSet,
        states: &'a [Vec<TaskState>],
        under: TaskRef,
        config: &'a AnalysisConfig,
        memo: Option<&'a Mutex<TaskMemo>>,
    ) -> TaskContext<'a> {
        let tx = &set.transactions()[under.tx];
        let hp = (0..set.transactions().len())
            .map(|i| hp_tasks(set, i, under))
            .collect();
        let st = states[under.tx][under.idx];
        let bound = (tx.deadline + tx.period + st.jitter)
            * Rational::from_integer(config.divergence_factor as i128);
        TaskContext {
            set,
            states,
            under,
            config,
            hp,
            period: tx.period,
            wcet: tx.tasks()[under.idx].wcet,
            phi: st.phi,
            jitter: st.jitter,
            blocking: config.blocking_of(under.tx, under.idx),
            bound,
            memo,
            metrics: config.metrics.as_deref(),
        }
    }

    fn platform(&self) -> &hsched_platform::Platform {
        let id = self.set.task(self.under).platform;
        &self.set.platforms()[id]
    }

    /// Worst-case time to serve `demand` cycles plus the blocking term:
    /// the `Δ + B + …/α` prefix of Eqs. (13)/(16). Memoized per demand when
    /// a cache is attached — the map is static for the whole analysis.
    fn completion(&self, demand: Cycles) -> Time {
        if let Some(memo) = self.memo {
            if let Some(&t) = memo
                .lock()
                .expect("rta cache lock poisoned")
                .completion
                .get(&demand)
            {
                if let Some(m) = self.metrics {
                    m.rta_completion_hits.incr();
                }
                return t;
            }
        }
        let t = self.blocking + service_time(self.platform(), demand, self.config.service_mode);
        if let Some(memo) = self.memo {
            if let Some(m) = self.metrics {
                m.rta_completion_misses.incr();
            }
            memo.lock()
                .expect("rta cache lock poisoned")
                .completion
                .insert(demand, t);
        }
        t
    }

    /// `Σ_{i ≠ a} W*_i(τa,b, t)` — the scenario-independent part of the
    /// reduced analysis's interference, memoized per `t` (valid until an hp
    /// member's state changes; the holistic loop invalidates).
    fn foreign_demand(&self, t: Time) -> Cycles {
        if let Some(memo) = self.memo {
            if let Some(&w) = memo
                .lock()
                .expect("rta cache lock poisoned")
                .foreign
                .get(&t)
            {
                if let Some(m) = self.metrics {
                    m.rta_foreign_hits.incr();
                }
                return w;
            }
        }
        let mut total = Cycles::ZERO;
        for i in 0..self.set.transactions().len() {
            if i == self.under.tx || self.hp[i].is_empty() {
                continue;
            }
            total += w_star(self.set, self.states, i, &self.hp[i], t);
        }
        if let Some(memo) = self.memo {
            if let Some(m) = self.metrics {
                m.rta_foreign_misses.incr();
            }
            memo.lock()
                .expect("rta cache lock poisoned")
                .foreign
                .insert(t, total);
        }
        total
    }

    /// §3.1.2: other transactions bounded by `W*`, own transaction's
    /// scenarios enumerated.
    fn analyze_approximate(&self) -> Result<TaskAnalysis, AnalysisError> {
        let mut scenarios: Vec<usize> = self.hp[self.under.tx].clone();
        scenarios.push(self.under.idx); // τa,b itself starts the busy period
        let mut best = TaskAnalysis {
            response: Time::ZERO,
            bounded: true,
        };
        for &c in &scenarios {
            let interference = |t: Time| -> Cycles {
                self.foreign_demand(t)
                    + w_scenario(
                        self.set,
                        self.states,
                        self.under.tx,
                        c,
                        &self.hp[self.under.tx],
                        t,
                    )
            };
            let outcome = self.analyze_scenario(c, &interference)?;
            best.response = best.response.max(outcome.response);
            best.bounded &= outcome.bounded;
            if !best.bounded {
                return Ok(best);
            }
        }
        Ok(best)
    }

    /// §3.1.1: full cartesian enumeration of scenario vectors ν (Eq. 12).
    fn analyze_exact(&self, max_scenarios: u64) -> Result<TaskAnalysis, AnalysisError> {
        // Candidate starters per transaction: hpi for i ≠ a (skipped when
        // empty — no contribution), hpa ∪ {τa,b} for the own transaction.
        let mut axes: Vec<(usize, Vec<usize>)> = Vec::new();
        let mut count: u128 = 1;
        for i in 0..self.set.transactions().len() {
            let mut candidates = self.hp[i].clone();
            if i == self.under.tx {
                candidates.push(self.under.idx);
            }
            if candidates.is_empty() {
                continue;
            }
            count = count.saturating_mul(candidates.len() as u128);
            axes.push((i, candidates));
        }
        if count > max_scenarios as u128 {
            return Err(AnalysisError::TooManyScenarios {
                task: self.under,
                count,
                max: max_scenarios,
            });
        }

        let mut best = TaskAnalysis {
            response: Time::ZERO,
            bounded: true,
        };
        // Iterate the cartesian product with an odometer.
        let mut odo = vec![0usize; axes.len()];
        loop {
            // The own transaction's starter determines ϕ^c_{a,b}; when the
            // own transaction has no axis (impossible — we always add τa,b),
            // fall back to self-start.
            let own_axis = axes
                .iter()
                .position(|(i, _)| *i == self.under.tx)
                .expect("own transaction always contributes an axis");
            let c = axes[own_axis].1[odo[own_axis]];
            let interference = |t: Time| -> Cycles {
                let mut total = Cycles::ZERO;
                for (axis, &(i, ref candidates)) in axes.iter().enumerate() {
                    if self.hp[i].is_empty() {
                        continue;
                    }
                    let k = candidates[odo[axis]];
                    total += w_scenario(self.set, self.states, i, k, &self.hp[i], t);
                }
                total
            };
            let outcome = self.analyze_scenario(c, &interference)?;
            best.response = best.response.max(outcome.response);
            best.bounded &= outcome.bounded;
            if !best.bounded {
                return Ok(best);
            }
            // Advance the odometer.
            let mut pos = 0;
            loop {
                if pos == odo.len() {
                    return Ok(best);
                }
                odo[pos] += 1;
                if odo[pos] < axes[pos].1.len() {
                    break;
                }
                odo[pos] = 0;
                pos += 1;
            }
        }
    }

    /// Analyzes one scenario: busy period started by τa,c's critical
    /// release (`c` may be the task itself). `interference(t)` yields the
    /// total hp demand in cycles for a busy period of length `t`.
    fn analyze_scenario(
        &self,
        c: usize,
        interference: &dyn Fn(Time) -> Cycles,
    ) -> Result<TaskAnalysis, AnalysisError> {
        let starter = &self.states[self.under.tx][c];
        let phi_c = phase(self.period, starter, self.phi);
        // p0 = 1 − ⌊(Ja,b + ϕ)/Ta⌋ — index of the oldest pending job.
        let p0 = 1 - ((self.jitter + phi_c) / self.period).floor();

        // Busy period length L (the paper's iterative expression after
        // Eq. 16); monotone non-decreasing iteration from 0.
        let mut len = Time::ZERO;
        let mut iterations = 0usize;
        let busy_len = loop {
            // Arrivals clamped at 0 so the L = 0 seed sees the pending jobs
            // (right-limit semantics, as in `job_count`).
            let own_arrivals = ((len - phi_c) / self.period).ceil().max(0);
            let own_jobs = (own_arrivals - p0 + 1).max(0);
            let demand = Rational::from_integer(own_jobs) * self.wcet + interference(len);
            let next = self.completion(demand);
            if next == len {
                break len;
            }
            if next > self.bound {
                return Ok(TaskAnalysis {
                    response: next,
                    bounded: false,
                });
            }
            len = next;
            iterations += 1;
            if iterations > self.config.max_inner_iterations {
                return Err(AnalysisError::InnerIterationCap { task: self.under });
            }
        };
        // Last job inside the busy period (Eq. 14).
        let p_last = ((busy_len - phi_c) / self.period).ceil();

        let mut best = Time::ZERO;
        let mut p = p0;
        while p <= p_last {
            let mut w = Time::ZERO;
            let jobs = Rational::from_integer(p - p0 + 1);
            let mut iterations = 0usize;
            let completion = loop {
                let demand = jobs * self.wcet + interference(w);
                let next = self.completion(demand);
                if next == w {
                    break w;
                }
                if next > self.bound {
                    return Ok(TaskAnalysis {
                        response: next,
                        bounded: false,
                    });
                }
                w = next;
                iterations += 1;
                if iterations > self.config.max_inner_iterations {
                    return Err(AnalysisError::InnerIterationCap { task: self.under });
                }
            };
            // R = w − (ϕ + (p−1)T − φ): completion minus the transaction's
            // activation instant.
            let activation = phi_c + self.period * Rational::from_integer(p - 1) - self.phi;
            best = best.max(completion - activation);
            p += 1;
        }
        Ok(TaskAnalysis {
            response: best,
            bounded: true,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::initial_states;
    use crate::ServiceTimeMode;
    use hsched_numeric::rat;
    use hsched_transaction::paper_example;

    fn setup() -> (TransactionSet, Vec<Vec<TaskState>>, AnalysisConfig) {
        let set = paper_example::transactions();
        let states = initial_states(&set, ServiceTimeMode::LinearBounds);
        (set, states, AnalysisConfig::default())
    }

    #[test]
    fn iteration0_matches_table3_column0() {
        let (set, states, config) = setup();
        // Table 3, k = 0: R(0) = [12, 9, 10, 12] for Γ1.
        let expected = [rat(12, 1), rat(9, 1), rat(10, 1), rat(12, 1)];
        for (idx, want) in expected.into_iter().enumerate() {
            let r = analyze_task(&set, &states, TaskRef { tx: 0, idx }, &config, None).unwrap();
            assert!(r.bounded);
            assert_eq!(r.response, want, "τ1,{} at iteration 0", idx + 1);
        }
    }

    #[test]
    fn independent_transactions_iteration0() {
        let (set, states, config) = setup();
        // τ2,1 on Π1 (p=3, no interference): Δ + C/α = 1 + 2.5 = 3.5.
        let r = analyze_task(&set, &states, TaskRef { tx: 1, idx: 0 }, &config, None).unwrap();
        assert_eq!(r.response, rat(7, 2));
        // τ3,1 symmetric.
        let r = analyze_task(&set, &states, TaskRef { tx: 2, idx: 0 }, &config, None).unwrap();
        assert_eq!(r.response, rat(7, 2));
        // τ4,1 on Π3 (p=1): interference from τ1,1 and τ1,4 (one job each in
        // its busy period): 2 + (7 + 1 + 1)/0.2 = 47.
        let r = analyze_task(&set, &states, TaskRef { tx: 3, idx: 0 }, &config, None).unwrap();
        assert_eq!(r.response, rat(47, 1));
    }

    #[test]
    fn jitter_19_gives_tau14_response_31() {
        // The disputed Table 3 cell: with J1,4 = 19 (the converged jitter),
        // the paper's equations yield R = w + J + φ = 7 + 19 + 5 = 31
        // (the paper prints 39; see EXPERIMENTS.md).
        let (set, mut states, config) = setup();
        states[0][1].jitter = rat(9, 1); // converged J1,2
        states[0][2].jitter = rat(14, 1); // converged J1,3
        states[0][3].jitter = rat(19, 1); // converged J1,4
        let r = analyze_task(&set, &states, TaskRef { tx: 0, idx: 3 }, &config, None).unwrap();
        assert_eq!(r.response, rat(31, 1));
    }

    #[test]
    fn exact_equals_approximate_on_paper_example() {
        // With at most one hp task per foreign transaction, W* degenerates
        // to the single scenario and both modes agree.
        let (set, states, _) = setup();
        let approx = AnalysisConfig::default();
        let exact = AnalysisConfig::exact(10_000);
        for r in set.task_refs() {
            let a = analyze_task(&set, &states, r, &approx, None).unwrap();
            let e = analyze_task(&set, &states, r, &exact, None).unwrap();
            assert_eq!(a.response, e.response, "mismatch at {r}");
        }
    }

    #[test]
    fn exact_never_exceeds_approximate() {
        // Construct a case with several hp tasks in a foreign transaction so
        // that W* genuinely maximizes over scenarios.
        use hsched_platform::{Platform, PlatformSet};
        use hsched_transaction::{Task, Transaction, TransactionSet};
        let mut platforms = PlatformSet::new();
        let p = platforms.add(Platform::linear("cpu", rat(1, 2), rat(1, 1), rat(0, 1)).unwrap());
        let noisy = Transaction::new(
            "noisy",
            rat(20, 1),
            rat(20, 1),
            vec![
                Task::new("n1", rat(1, 1), rat(1, 1), 5, p),
                Task::new("n2", rat(2, 1), rat(1, 1), 5, p),
                Task::new("n3", rat(1, 1), rat(1, 2), 5, p),
            ],
        )
        .unwrap();
        let victim = Transaction::new(
            "victim",
            rat(40, 1),
            rat(40, 1),
            vec![Task::new("v", rat(3, 1), rat(3, 1), 1, p)],
        )
        .unwrap();
        let set = TransactionSet::new(platforms, vec![noisy, victim]).unwrap();
        let states = initial_states(&set, ServiceTimeMode::LinearBounds);
        let under = TaskRef { tx: 1, idx: 0 };
        let approx = analyze_task(&set, &states, under, &AnalysisConfig::default(), None).unwrap();
        let exact = analyze_task(
            &set,
            &states,
            under,
            &AnalysisConfig::exact(1_000_000),
            None,
        )
        .unwrap();
        assert!(
            exact.response <= approx.response,
            "exact {} > approx {}",
            exact.response,
            approx.response
        );
    }

    #[test]
    fn scenario_cap_enforced() {
        let (set, states, _) = setup();
        let tight = AnalysisConfig::exact(0);
        let err = analyze_task(&set, &states, TaskRef { tx: 0, idx: 0 }, &tight, None).unwrap_err();
        assert!(matches!(err, AnalysisError::TooManyScenarios { .. }));
    }

    #[test]
    fn overload_detected_as_unbounded() {
        use hsched_platform::{Platform, PlatformSet};
        use hsched_transaction::{Task, Transaction, TransactionSet};
        let mut platforms = PlatformSet::new();
        // Platform rate 0.1 with a task demanding 2 cycles every 10: U = 0.2 > α.
        let p = platforms.add(Platform::linear("tiny", rat(1, 10), rat(0, 1), rat(0, 1)).unwrap());
        let hog = Transaction::new(
            "hog",
            rat(10, 1),
            rat(10, 1),
            vec![Task::new("h", rat(2, 1), rat(2, 1), 2, p)],
        )
        .unwrap();
        let victim = Transaction::new(
            "victim",
            rat(100, 1),
            rat(100, 1),
            vec![Task::new("v", rat(1, 1), rat(1, 1), 1, p)],
        )
        .unwrap();
        let set = TransactionSet::new(platforms, vec![hog, victim]).unwrap();
        let states = initial_states(&set, ServiceTimeMode::LinearBounds);
        let r = analyze_task(
            &set,
            &states,
            TaskRef { tx: 1, idx: 0 },
            &AnalysisConfig::default(),
            None,
        )
        .unwrap();
        assert!(!r.bounded, "expected overload detection");
    }

    #[test]
    fn multi_job_busy_period_analyzed() {
        // hi (C=3.5, T=5) + lo (C=2, T=8) on a dedicated CPU: level-lo busy
        // period is 14.5 and contains TWO lo jobs. Job 1: w = 9, R = 9;
        // job 2: w = 14.5, R = 14.5 − 8 = 6.5. The analysis must walk both
        // and report max = 9.
        use hsched_platform::{Platform, PlatformSet};
        use hsched_transaction::{Task, Transaction, TransactionSet};
        let mut platforms = PlatformSet::new();
        let p = platforms.add(Platform::dedicated("cpu"));
        let hi = Transaction::new(
            "hi",
            rat(5, 1),
            rat(5, 1),
            vec![Task::new("h", rat(7, 2), rat(7, 2), 2, p)],
        )
        .unwrap();
        let lo = Transaction::new(
            "lo",
            rat(8, 1),
            rat(30, 1),
            vec![Task::new("l", rat(2, 1), rat(2, 1), 1, p)],
        )
        .unwrap();
        let set = TransactionSet::new(platforms, vec![hi, lo]).unwrap();
        let states = initial_states(&set, ServiceTimeMode::LinearBounds);
        let r = analyze_task(
            &set,
            &states,
            TaskRef { tx: 1, idx: 0 },
            &AnalysisConfig::default(),
            None,
        )
        .unwrap();
        assert!(r.bounded);
        assert_eq!(r.response, rat(9, 1));
    }

    #[test]
    fn jitter_induced_pending_jobs_analyzed() {
        // A task whose own jitter exceeds its period: two pending jobs at
        // the critical instant (p0 = −1). With C = 1, T = 5, J = 12 on a
        // dedicated CPU: ⌊(12+ϕ)/5⌋ with ϕ = 5 − (12 mod 5) = 3 → 3 pending
        // jobs, so p0 = −2; the busy period serves them back to back and the
        // oldest job's response is w(−2) − (ϕ − 3T) = 1 − (3 − 15) = 13.
        use hsched_platform::{Platform, PlatformSet};
        use hsched_transaction::{Task, Transaction, TransactionSet};
        let mut platforms = PlatformSet::new();
        let p = platforms.add(Platform::dedicated("cpu"));
        let tx = Transaction::new(
            "bursty",
            rat(5, 1),
            rat(40, 1),
            vec![Task::new("b", rat(1, 1), rat(1, 1), 1, p)],
        )
        .unwrap()
        .with_release_jitter(rat(12, 1));
        let set = TransactionSet::new(platforms, vec![tx]).unwrap();
        let states = initial_states(&set, ServiceTimeMode::LinearBounds);
        assert_eq!(states[0][0].jitter, rat(12, 1));
        let r = analyze_task(
            &set,
            &states,
            TaskRef { tx: 0, idx: 0 },
            &AnalysisConfig::default(),
            None,
        )
        .unwrap();
        assert!(r.bounded);
        assert_eq!(r.response, rat(13, 1));
    }

    #[test]
    fn blocking_term_adds_directly() {
        let (set, states, mut config) = setup();
        // Add B = 2 to τ2,1 (otherwise interference-free): R = 3.5 + 2.
        config.blocking = vec![vec![], vec![rat(2, 1)], vec![], vec![]];
        let r = analyze_task(&set, &states, TaskRef { tx: 1, idx: 0 }, &config, None).unwrap();
        assert_eq!(r.response, rat(11, 2));
    }

    #[test]
    fn dedicated_platform_reduces_to_classic_response() {
        // α=1, Δ=0, β=0: two independent single-task transactions, RM-style.
        use hsched_platform::{Platform, PlatformSet};
        use hsched_transaction::{Task, Transaction, TransactionSet};
        let mut platforms = PlatformSet::new();
        let p = platforms.add(Platform::dedicated("cpu"));
        let hi = Transaction::new(
            "hi",
            rat(5, 1),
            rat(5, 1),
            vec![Task::new("h", rat(2, 1), rat(2, 1), 2, p)],
        )
        .unwrap();
        let lo = Transaction::new(
            "lo",
            rat(14, 1),
            rat(14, 1),
            vec![Task::new("l", rat(3, 1), rat(3, 1), 1, p)],
        )
        .unwrap();
        let set = TransactionSet::new(platforms, vec![hi, lo]).unwrap();
        let states = initial_states(&set, ServiceTimeMode::LinearBounds);
        let config = AnalysisConfig::default();
        let r_hi = analyze_task(&set, &states, TaskRef { tx: 0, idx: 0 }, &config, None).unwrap();
        assert_eq!(r_hi.response, rat(2, 1));
        // lo: w = 3 + ⌈w/5⌉·2 → w = 5 (classic RTA fixpoint; the second job
        // of `hi` arrives exactly at 5 and is outside the busy window).
        let r_lo = analyze_task(&set, &states, TaskRef { tx: 1, idx: 0 }, &config, None).unwrap();
        assert_eq!(r_lo.response, rat(5, 1));
    }
}
