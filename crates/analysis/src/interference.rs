//! Worst-case interference of a transaction on a busy period
//! (Eqs. 7–11 and 15 of the paper).

use crate::state::TaskState;
use hsched_numeric::{Cycles, Rational, Time};
use hsched_transaction::{TaskRef, TransactionSet};

/// The set `hpi(τa,b)` of Eq. (17): tasks of transaction `i` with priority
/// ≥ `p_{a,b}` mapped on the *same platform* as τa,b, excluding τa,b itself.
pub(crate) fn hp_tasks(set: &TransactionSet, i: usize, under: TaskRef) -> Vec<usize> {
    let target = set.task(under);
    set.transactions()[i]
        .tasks()
        .iter()
        .enumerate()
        .filter(|(j, t)| {
            !(i == under.tx && *j == under.idx)
                && t.platform == target.platform
                && t.priority >= target.priority
        })
        .map(|(j, _)| j)
        .collect()
}

/// Phase `ϕ^k_{i,j}` of Eq. (10): the first activation of τi,j after the
/// busy period starts with τi,k's maximally-delayed release.
///
/// `ϕ^k_{i,j} = Ti − (φik + Jik − φij) mod Ti`, in `(0, Ti]`.
pub(crate) fn phase(
    period: Time,
    starter: &TaskState, // τi,k
    other_phi: Time,     // φi,j
) -> Time {
    period - (starter.latest_release() - other_phi).rem_euclid(period)
}

/// Number of jobs of a task with phase `ϕ`, jitter `J` and period `T`
/// contributing to a busy period of length `t` (the bracketed factor of
/// Eq. 8/11): pending jobs `⌊(J + ϕ)/T⌋` plus arrivals `⌈(t − ϕ)/T⌉`.
pub(crate) fn job_count(jitter: Time, phi_k: Time, period: Time, t: Time) -> i128 {
    let pending = ((jitter + phi_k) / period).floor();
    // For t > 0 the arrivals term is never negative (ϕ ≤ T); clamping makes
    // the t = 0 evaluation equal to its right-limit, which is what the busy
    // period fixpoint iteration needs to get off the ground.
    let arrivals = ((t - phi_k) / period).ceil().max(0);
    pending + arrivals
}

/// `W^k_i(τa,b, t)` of Eq. (11), in **cycles** (not divided by α — the
/// caller inverts the platform supply on the total demand): the worst-case
/// demand of the hp tasks of Γi in a busy period of length `t`, when the
/// busy period starts with τi,k's critical release.
pub(crate) fn w_scenario(
    set: &TransactionSet,
    states: &[Vec<TaskState>],
    i: usize,
    k: usize,
    hp: &[usize],
    t: Time,
) -> Cycles {
    let tx = &set.transactions()[i];
    let period = tx.period;
    let starter = &states[i][k];
    let mut total = Cycles::ZERO;
    for &j in hp {
        let st = &states[i][j];
        let phi_k = phase(period, starter, st.phi);
        let n = job_count(st.jitter, phi_k, period, t);
        if n > 0 {
            total += Rational::from_integer(n) * tx.tasks()[j].wcet;
        }
    }
    total
}

/// `W*_i(τa,b, t)` of Eq. (15): the pointwise maximum of `W^k_i` over all
/// candidate starters `k ∈ hpi(τa,b)`, in cycles. Zero when `hp` is empty.
pub(crate) fn w_star(
    set: &TransactionSet,
    states: &[Vec<TaskState>],
    i: usize,
    hp: &[usize],
    t: Time,
) -> Cycles {
    hp.iter()
        .map(|&k| w_scenario(set, states, i, k, hp, t))
        .max()
        .unwrap_or(Cycles::ZERO)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::initial_states;
    use crate::ServiceTimeMode;
    use hsched_numeric::rat;
    use hsched_transaction::paper_example;

    fn paper() -> (TransactionSet, Vec<Vec<TaskState>>) {
        let set = paper_example::transactions();
        let states = initial_states(&set, ServiceTimeMode::LinearBounds);
        (set, states)
    }

    #[test]
    fn hp_sets_follow_eq17() {
        let (set, _) = paper();
        // τ1,1 (Π3, p=2): hp in Γ1 = {τ1,4} (Π3, p=3); τ4,1 has p=1 < 2.
        let under = TaskRef { tx: 0, idx: 0 };
        assert_eq!(hp_tasks(&set, 0, under), vec![3]);
        assert_eq!(hp_tasks(&set, 3, under), Vec::<usize>::new());
        // τ1,4 (Π3, p=3): nothing qualifies anywhere.
        let under = TaskRef { tx: 0, idx: 3 };
        assert_eq!(hp_tasks(&set, 0, under), Vec::<usize>::new());
        assert_eq!(hp_tasks(&set, 3, under), Vec::<usize>::new());
        // τ1,2 (Π1, p=1): hp in Γ2 = {τ2,1} (Π1, p=3).
        let under = TaskRef { tx: 0, idx: 1 };
        assert_eq!(hp_tasks(&set, 1, under), vec![0]);
        assert_eq!(hp_tasks(&set, 2, under), Vec::<usize>::new()); // Π2

        // τ4,1 (Π3, p=1): hp in Γ1 = {τ1,1, τ1,4}.
        let under = TaskRef { tx: 3, idx: 0 };
        assert_eq!(hp_tasks(&set, 0, under), vec![0, 3]);
    }

    #[test]
    fn phase_convention_matches_paper() {
        // Self-started scenario with zero jitter: ϕ = T (the job released at
        // the critical instant is counted by the pending-floor term).
        let s = TaskState {
            phi: rat(0, 1),
            jitter: rat(0, 1),
        };
        assert_eq!(phase(rat(50, 1), &s, rat(0, 1)), rat(50, 1));
        // τ1,4 relative to τ1,1 starting: φ1,4 = 5 → ϕ = 50 − (0−5) mod 50 = 5.
        assert_eq!(phase(rat(50, 1), &s, rat(5, 1)), rat(5, 1));
        // With jitter 19 on the starter (τ1,4 at iteration 3): ϕ for itself
        // = 50 − 19 = 31.
        let s = TaskState {
            phi: rat(5, 1),
            jitter: rat(19, 1),
        };
        assert_eq!(phase(rat(50, 1), &s, rat(5, 1)), rat(31, 1));
    }

    #[test]
    fn phase_always_in_half_open_interval() {
        let t = rat(50, 1);
        for phi_k in 0..50 {
            for j in 0..30 {
                for phi_j in 0..50 {
                    let s = TaskState {
                        phi: rat(phi_k, 1),
                        jitter: rat(j, 1),
                    };
                    let p = phase(t, &s, rat(phi_j, 1));
                    assert!(p > rat(0, 1) && p <= t, "phase {p} out of (0, {t}]");
                }
            }
        }
    }

    #[test]
    fn job_count_basics() {
        // ϕ = T, J = 0: exactly the critical-instant job for t ∈ (0, T].
        assert_eq!(job_count(rat(0, 1), rat(50, 1), rat(50, 1), rat(1, 1)), 1);
        assert_eq!(job_count(rat(0, 1), rat(50, 1), rat(50, 1), rat(50, 1)), 1);
        // Just past T: second job.
        assert_eq!(job_count(rat(0, 1), rat(50, 1), rat(50, 1), rat(51, 1)), 2);
        // ϕ = 5: no job until t > 5... the ceil counts arrivals at 5 within
        // busy period length ≥ 5^+ — at t = 5 exactly, ⌈0⌉ = 0; at 5.5, 1.
        assert_eq!(job_count(rat(0, 1), rat(5, 1), rat(50, 1), rat(5, 1)), 0);
        assert_eq!(job_count(rat(0, 1), rat(5, 1), rat(50, 1), rat(11, 2)), 1);
        // Jitter adds pending jobs: J = 100, ϕ = 50, T = 50 → nominal
        // releases at 0, −50, −100 can all be delayed to the critical
        // instant: ⌊(J+ϕ)/T⌋ = 3 pending.
        assert_eq!(job_count(rat(100, 1), rat(50, 1), rat(50, 1), rat(1, 1)), 3);
        // At t = 0 the count equals its right-limit (the pending job is
        // visible to the fixpoint seed).
        assert_eq!(job_count(rat(0, 1), rat(50, 1), rat(50, 1), rat(0, 1)), 1);
    }

    #[test]
    fn w_scenario_matches_hand_computation() {
        let (set, states) = paper();
        // Interference of Γ2 (τ2,1: C=1, T=15, J=0, φ=0) on τ1,2, scenario
        // started by τ2,1 itself: ϕ = 15; demand over t:
        //   t ∈ (0, 15]: 1 cycle; t ∈ (15, 30]: 2 cycles.
        let under = TaskRef { tx: 0, idx: 1 };
        let hp = hp_tasks(&set, 1, under);
        assert_eq!(w_scenario(&set, &states, 1, 0, &hp, rat(6, 1)), rat(1, 1));
        assert_eq!(w_scenario(&set, &states, 1, 0, &hp, rat(16, 1)), rat(2, 1));
    }

    #[test]
    fn w_star_is_pointwise_max() {
        let (set, states) = paper();
        let under = TaskRef { tx: 3, idx: 0 }; // τ4,1 on Π3, p=1
        let hp = hp_tasks(&set, 0, under); // {τ1,1, τ1,4}
        let t = rat(10, 1);
        let w1 = w_scenario(&set, &states, 0, hp[0], &hp, t);
        let w4 = w_scenario(&set, &states, 0, hp[1], &hp, t);
        assert_eq!(w_star(&set, &states, 0, &hp, t), w1.max(w4));
        // Empty hp → zero.
        assert_eq!(w_star(&set, &states, 0, &[], t), Cycles::ZERO);
    }
}
