//! Analysis-layer telemetry: RTA cache effectiveness and fixpoint
//! iteration counts, recorded into always-on relaxed atomics.
//!
//! A sink is attached through [`crate::AnalysisConfig::metrics`]; since
//! the config is cloned into every island/cone analysis, one shared
//! [`AnalysisMetrics`] (behind an `Arc`) observes every fixpoint a
//! controller — or a whole sharded service — runs, without any
//! coordination beyond the atomics themselves.

use hsched_telemetry::{Counter, Histogram, MetricsSnapshot};

/// Shared counters and distributions for the analysis hot path. All
/// recording is relaxed-atomic; reading ([`AnalysisMetrics::snapshot`])
/// never blocks an analysis in flight.
#[derive(Debug, Default)]
pub struct AnalysisMetrics {
    /// RTA cache hits on the foreign-interference memo (`W*` totals per
    /// busy-window length).
    pub rta_foreign_hits: Counter,
    /// RTA cache misses on the foreign-interference memo.
    pub rta_foreign_misses: Counter,
    /// RTA cache hits on the supply-inversion memo (completion time per
    /// accumulated demand).
    pub rta_completion_hits: Counter,
    /// RTA cache misses on the supply-inversion memo.
    pub rta_completion_misses: Counter,
    /// Outer holistic sweeps per warm-started fixpoint (resumed from a
    /// previous converged state).
    pub fixpoint_iterations_warm: Histogram,
    /// Outer holistic sweeps per cold fixpoint.
    pub fixpoint_iterations_cold: Histogram,
}

impl AnalysisMetrics {
    /// A fresh sink with all metrics at zero.
    pub fn new() -> AnalysisMetrics {
        AnalysisMetrics::default()
    }

    /// Point-in-time snapshot under `analysis.*` names.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let mut snap = MetricsSnapshot::new();
        snap.put_counter(
            "analysis.rta_cache.foreign_hits",
            self.rta_foreign_hits.get(),
        );
        snap.put_counter(
            "analysis.rta_cache.foreign_misses",
            self.rta_foreign_misses.get(),
        );
        snap.put_counter(
            "analysis.rta_cache.completion_hits",
            self.rta_completion_hits.get(),
        );
        snap.put_counter(
            "analysis.rta_cache.completion_misses",
            self.rta_completion_misses.get(),
        );
        snap.put_histogram(
            "analysis.fixpoint.iterations_warm",
            self.fixpoint_iterations_warm.snapshot(),
        );
        snap.put_histogram(
            "analysis.fixpoint.iterations_cold",
            self.fixpoint_iterations_cold.snapshot(),
        );
        snap
    }
}
