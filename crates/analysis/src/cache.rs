//! The RTA hot-path cache: memoizes the two computations that dominate the
//! busy-period fixpoints of `rta.rs`, carried across holistic sweeps and
//! invalidated through the hp-graph.
//!
//! * **Foreign interference** — in the reduced analysis (§3.1.2), every
//!   scenario of a task's own transaction re-evaluates
//!   `Σ_{i ≠ a} W*_i(τa,b, t)` at the same busy-window lengths `t`; the sum
//!   only depends on the states of the task's hp set, so it is memoized per
//!   `(task, t)` and reused across scenarios *and* across sweeps. When a
//!   sweep changes a task's jitter, exactly the tasks it can interfere with
//!   ([`HpGraph::targets_of`]) have their memo dropped — everything else
//!   keeps its entries, which is where warm resumes win big (most
//!   coordinates stop moving early).
//! * **Supply inversion** — the completion map `demand ↦ Δ + B + t(demand)`
//!   is static for the whole analysis (platforms never change mid-call), so
//!   it is memoized per `(task, demand)` and never invalidated. This is
//!   cheap insurance for linear platforms and a large win for
//!   [`crate::ServiceTimeMode::ExactCurve`], whose staircase inversion
//!   walks supply segments.
//!
//! Each task's entry is behind its own mutex: a Jacobi sweep analyzes every
//! task on exactly one worker, so the locks are uncontended — they only
//! make the sharing safe.

use crate::hpgraph::HpGraph;
use hsched_numeric::{Cycles, Time};
use hsched_transaction::{TaskRef, TransactionSet};
use std::collections::HashMap;
use std::sync::Mutex;

/// Per-task memo (see the module docs).
#[derive(Debug, Default)]
pub(crate) struct TaskMemo {
    /// Busy-window length `t` → total foreign `W*` demand in cycles.
    pub(crate) foreign: HashMap<Time, Cycles>,
    /// Accumulated demand → completion time (blocking + supply inverse).
    pub(crate) completion: HashMap<Cycles, Time>,
}

/// The analysis-wide cache: one memo per task, plus the hp-graph that
/// scopes invalidation.
#[derive(Debug)]
pub(crate) struct RtaCache {
    graph: HpGraph,
    memos: Vec<Mutex<TaskMemo>>,
}

impl RtaCache {
    pub(crate) fn new(set: &TransactionSet) -> RtaCache {
        let graph = HpGraph::of(set);
        let memos = (0..graph.task_count())
            .map(|_| Mutex::new(TaskMemo::default()))
            .collect();
        RtaCache { graph, memos }
    }

    /// The memo of one task.
    pub(crate) fn memo(&self, r: TaskRef) -> &Mutex<TaskMemo> {
        &self.memos[self.graph.flat_index(r)]
    }

    /// Drops the foreign-interference memo of every task whose inputs read
    /// `changed`'s state — its direct hp-graph targets (and itself: its own
    /// phase enters its self-started scenarios, though not the foreign sum,
    /// so clearing it is cheap correctness margin). Completion memos are
    /// static and survive.
    pub(crate) fn invalidate_changed(&self, changed: TaskRef) {
        let mut targets = Vec::new();
        self.graph.targets_of(changed, &mut targets);
        targets.push(self.graph.flat_index(changed));
        for flat in targets {
            self.memos[flat]
                .lock()
                .expect("rta cache lock poisoned")
                .foreign
                .clear();
        }
    }
}
