//! The holistic ("dynamic offset") fixpoint of §3.2: response times induce
//! jitters on successor tasks; iterate the static-offset analysis until the
//! jitter vector stabilizes.

use crate::cache::RtaCache;
use crate::par::parallel_map;
use crate::report::{IterationRecord, SchedulabilityReport, TaskResult, TransactionVerdict};
pub use crate::rta::AnalysisError;
use crate::rta::{analyze_task, TaskAnalysis};
use crate::state::{best_case_offsets, initial_states, TaskState};
use crate::AnalysisConfig;
use hsched_numeric::Time;
use hsched_transaction::{TaskRef, TransactionSet};

/// Runs the paper's analysis with the default (paper-faithful)
/// configuration: linear platform bounds, reduced scenarios, Jacobi jitter
/// propagation.
///
/// # Panics
///
/// Panics on [`AnalysisError`], which the default configuration cannot
/// produce (no scenario cap, generous inner iteration cap). Use
/// [`analyze_with`] to handle errors explicitly.
pub fn analyze(set: &TransactionSet) -> SchedulabilityReport {
    analyze_with(set, &AnalysisConfig::default()).expect("default analysis configuration failed")
}

/// Runs the analysis with an explicit configuration.
pub fn analyze_with(
    set: &TransactionSet,
    config: &AnalysisConfig,
) -> Result<SchedulabilityReport, AnalysisError> {
    analyze_resumed(set, config, None)
}

/// Converged jitter state carried from a previous analysis, used to resume
/// the holistic fixpoint instead of restarting it from zero jitters.
///
/// `jitters[i][j]` seeds task τi,j's jitter; the layout must match the set
/// being analyzed (same transaction count and chain lengths), otherwise the
/// seed is ignored and the analysis cold-starts.
///
/// # Soundness
///
/// The holistic iteration computes the *least* fixpoint of a monotone map by
/// iterating upward from the initial jitters. Resuming is exact — it reaches
/// the same fixpoint as a cold start — whenever the seed is known to lie at
/// or below the new least fixpoint. That holds when the seed is the converged
/// fixpoint of a system with *no more* interference than the one being
/// analyzed: e.g. the same system before extra transactions were added
/// (interference terms only grow, so the old fixpoint is a pre-fixpoint of
/// the new map). After *removals* or platform retunes the old fixpoint can
/// exceed the new least fixpoint along the coordinates the change can reach,
/// and resuming those from it may converge to a larger (still sound, but
/// pessimistic) fixpoint.
///
/// # The downward-restart bound
///
/// [`FrozenSeed`] refines this for non-additive changes. A change's
/// influence is bounded by its interference cone — the forward reachability
/// of its seeds over the hp-graph ([`crate::HpGraph::closure`]). Outside
/// the cone, no input of any task changed, so the old converged values *are*
/// the new least-fixpoint values: those coordinates may be **frozen** at the
/// seed (never re-analyzed). Inside the cone, restart the coordinates at
/// zero — the downward-restart bound: the combined seed vector (old values
/// outside, cold inside) is then coordinate-wise ≤ the new least fixpoint,
/// and the same monotone-map argument as above applies, with the Kleene
/// sandwich `F^n(⊥) ≤ F^n(seed) ≤ lfp` forcing convergence to exactly the
/// least fixpoint. For purely additive changes the cone coordinates may
/// instead seed at their old values (still ≤ the new least fixpoint, since
/// interference only grew), which usually converges in one or two sweeps.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WarmStart {
    /// Seed jitters, indexed like the transaction set.
    pub jitters: Vec<Vec<Time>>,
    /// Optional cone restriction: coordinates marked inactive are pinned at
    /// the seed (jitter *and* response) and skipped by every sweep. The
    /// caller asserts their inputs are unchanged — see the soundness notes.
    pub frozen: Option<FrozenSeed>,
}

/// The frozen half of a cone-restricted resume (see [`WarmStart`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FrozenSeed {
    /// `active[i][j]` — task τi,j is iterated; `false` = pinned.
    pub active: Vec<Vec<bool>>,
    /// Converged responses pinning the frozen coordinates (active entries
    /// are ignored — they are recomputed in the first sweep).
    pub responses: Vec<Vec<Time>>,
}

impl WarmStart {
    /// Extracts the converged jitters of a previous report (all
    /// coordinates active — the plain additive resume).
    pub fn from_report(report: &SchedulabilityReport) -> WarmStart {
        WarmStart {
            jitters: report
                .tasks
                .iter()
                .map(|row| row.iter().map(|t| t.jitter).collect())
                .collect(),
            frozen: None,
        }
    }

    /// A cone-restricted resume from a previous report: coordinates outside
    /// `active` are pinned at the report's converged values; active ones
    /// restart cold when `cold_active` (the exact choice after removals or
    /// retunes) or from the report's jitters otherwise (exact for purely
    /// additive changes).
    pub fn restricted(
        report: &SchedulabilityReport,
        active: Vec<Vec<bool>>,
        cold_active: bool,
    ) -> WarmStart {
        let jitters = report
            .tasks
            .iter()
            .zip(&active)
            .map(|(row, act)| {
                row.iter()
                    .zip(act)
                    .map(|(t, &a)| {
                        if a && cold_active {
                            Time::ZERO
                        } else {
                            t.jitter
                        }
                    })
                    .collect()
            })
            .collect();
        let responses = report
            .tasks
            .iter()
            .map(|row| row.iter().map(|t| t.response).collect())
            .collect();
        WarmStart {
            jitters,
            frozen: Some(FrozenSeed { active, responses }),
        }
    }

    fn matches(&self, set: &TransactionSet) -> bool {
        let shape = |rows: &[Vec<Time>]| {
            rows.len() == set.transactions().len()
                && rows
                    .iter()
                    .zip(set.transactions())
                    .all(|(row, tx)| row.len() == tx.len())
        };
        shape(&self.jitters)
            && self.frozen.as_ref().is_none_or(|f| {
                shape(&f.responses)
                    && f.active.len() == set.transactions().len()
                    && f.active
                        .iter()
                        .zip(set.transactions())
                        .all(|(row, tx)| row.len() == tx.len())
            })
    }
}

/// Runs the analysis, optionally resuming the outer fixpoint from a
/// previous converged state (see [`WarmStart`] for the exactness contract).
/// `analyze_resumed(set, config, None)` is exactly [`analyze_with`].
pub fn analyze_resumed(
    set: &TransactionSet,
    config: &AnalysisConfig,
    warm: Option<&WarmStart>,
) -> Result<SchedulabilityReport, AnalysisError> {
    let (_, best_responses) = best_case_offsets(set, config.service_mode);
    let mut states = initial_states(set, config.service_mode);
    let mut frozen = None;
    if let Some(warm) = warm {
        debug_assert!(warm.matches(set), "warm-start shape mismatch");
        if warm.matches(set) {
            for (row, seed) in states.iter_mut().zip(&warm.jitters) {
                // First tasks keep the stream's release jitter (a constant of
                // the iteration, not an iterated coordinate).
                for (state, &j) in row.iter_mut().zip(seed).skip(1) {
                    state.jitter = state.jitter.max(j);
                }
            }
            frozen = warm.frozen.as_ref();
        }
    }
    let refs: Vec<TaskRef> = set.task_refs().collect();
    // Frozen coordinates are pinned at the seed and skipped in every sweep;
    // see the WarmStart docs for why that is exact.
    let active_refs: Vec<TaskRef> = match frozen {
        Some(f) => refs
            .iter()
            .copied()
            .filter(|r| f.active[r.tx][r.idx])
            .collect(),
        None => refs,
    };
    let cache = config.rta_cache.then(|| RtaCache::new(set));
    let cache = cache.as_ref();

    let mut trace: Vec<IterationRecord> = Vec::new();
    let mut converged = false;
    let mut all_bounded = true;
    let mut responses: Vec<Vec<Time>> = match frozen {
        Some(f) => f.responses.clone(),
        None => set
            .transactions()
            .iter()
            .map(|tx| vec![Time::ZERO; tx.len()])
            .collect(),
    };

    for _iteration in 0..config.max_outer_iterations {
        let sweep_start_jitters: Vec<Vec<Time>> = states
            .iter()
            .map(|row| row.iter().map(|s| s.jitter).collect())
            .collect();
        all_bounded = true;
        match config.update_order {
            crate::UpdateOrder::Jacobi => {
                // All active tasks analyzed against the previous state
                // vector (parallelizable, reproduces Table 3 column by
                // column).
                let outcomes: Vec<Result<TaskAnalysis, AnalysisError>> =
                    parallel_map(&active_refs, config.threads, |&r| {
                        analyze_task(set, &states, r, config, cache)
                    });
                for (r, outcome) in active_refs.iter().zip(outcomes) {
                    let outcome = outcome?;
                    responses[r.tx][r.idx] = outcome.response;
                    all_bounded &= outcome.bounded;
                }
            }
            crate::UpdateOrder::GaussSeidel => {
                // Fresh responses feed successors within the sweep.
                for &r in &active_refs {
                    let outcome = analyze_task(set, &states, r, config, cache)?;
                    responses[r.tx][r.idx] = outcome.response;
                    all_bounded &= outcome.bounded;
                    let n_tasks = set.transactions()[r.tx].len();
                    if all_bounded && r.idx + 1 < n_tasks {
                        let successor = TaskRef {
                            tx: r.tx,
                            idx: r.idx + 1,
                        };
                        let new_jitter =
                            (outcome.response - best_responses[r.tx][r.idx]).max(Time::ZERO);
                        if new_jitter != states[r.tx][r.idx + 1].jitter {
                            states[r.tx][r.idx + 1].jitter = new_jitter;
                            if let Some(cache) = cache {
                                cache.invalidate_changed(successor);
                            }
                        }
                    }
                }
            }
        }
        trace.push(IterationRecord {
            jitters: sweep_start_jitters.clone(),
            responses: responses.clone(),
        });
        if !all_bounded {
            // Demand exceeds platform capacity somewhere; jitters would only
            // grow. Report as diverged/unschedulable.
            break;
        }
        // Eq. (18): J_{i,j} = R_{i,j−1} − Rbest_{i,j−1}; first tasks keep
        // their release jitter. (For Gauss-Seidel this is a no-op re-apply;
        // convergence is judged on the jitters at sweep boundaries. Frozen
        // coordinates reproduce their seed — their predecessor is frozen
        // too, by cone closure.)
        let mut changed = false;
        for (i, tx) in set.transactions().iter().enumerate() {
            for j in 1..tx.len() {
                let new_jitter = (responses[i][j - 1] - best_responses[i][j - 1]).max(Time::ZERO);
                if new_jitter != states[i][j].jitter {
                    states[i][j].jitter = new_jitter;
                    if let Some(cache) = cache {
                        cache.invalidate_changed(TaskRef { tx: i, idx: j });
                    }
                }
                if new_jitter != sweep_start_jitters[i][j] {
                    changed = true;
                }
            }
        }
        if !changed {
            converged = true;
            break;
        }
    }

    if let Some(metrics) = &config.metrics {
        let sweeps = trace.len() as u64;
        if warm.is_some() {
            metrics.fixpoint_iterations_warm.record(sweeps);
        } else {
            metrics.fixpoint_iterations_cold.record(sweeps);
        }
    }

    Ok(build_report(
        set,
        config,
        states,
        best_responses,
        responses,
        trace,
        converged,
        all_bounded,
    ))
}

#[allow(clippy::too_many_arguments)]
fn build_report(
    set: &TransactionSet,
    config: &AnalysisConfig,
    states: Vec<Vec<TaskState>>,
    best_responses: Vec<Vec<Time>>,
    responses: Vec<Vec<Time>>,
    trace: Vec<IterationRecord>,
    converged: bool,
    all_bounded: bool,
) -> SchedulabilityReport {
    let _ = config;
    let mut tasks = Vec::new();
    let mut verdicts = Vec::new();
    for (i, tx) in set.transactions().iter().enumerate() {
        let mut row = Vec::with_capacity(tx.len());
        for (j, task) in tx.tasks().iter().enumerate() {
            row.push(TaskResult {
                name: task.name.clone(),
                response: responses[i][j],
                best_response: best_responses[i][j],
                phi: states[i][j].phi,
                jitter: states[i][j].jitter,
            });
        }
        let end_to_end = responses[i][tx.len() - 1];
        verdicts.push(TransactionVerdict {
            name: tx.name.clone(),
            end_to_end,
            deadline: tx.deadline,
            schedulable: converged && all_bounded && end_to_end <= tx.deadline,
        });
        tasks.push(row);
    }
    SchedulabilityReport {
        tasks,
        verdicts,
        trace,
        converged,
        diverged: !all_bounded,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hsched_numeric::rat;
    use hsched_platform::{Platform, PlatformId, PlatformSet};
    use hsched_transaction::{paper_example, Task, Transaction};

    #[test]
    fn paper_example_converges_to_table3_fixpoint() {
        let set = paper_example::transactions();
        let report = analyze(&set);
        assert!(report.converged);
        assert!(!report.diverged);
        assert!(report.schedulable());
        // Fixpoint responses for Γ1 (Table 3's last column, with the τ1,4
        // correction discussed in EXPERIMENTS.md: 31, not 39).
        assert_eq!(report.response(0, 0), rat(12, 1));
        assert_eq!(report.response(0, 1), rat(18, 1));
        assert_eq!(report.response(0, 2), rat(24, 1));
        assert_eq!(report.response(0, 3), rat(31, 1));
        // Fixpoint jitters: J1,2 = 9, J1,3 = 14, J1,4 = 19.
        assert_eq!(report.tasks[0][1].jitter, rat(9, 1));
        assert_eq!(report.tasks[0][2].jitter, rat(14, 1));
        assert_eq!(report.tasks[0][3].jitter, rat(19, 1));
    }

    #[test]
    fn paper_trace_matches_table3_iterations() {
        let set = paper_example::transactions();
        let report = analyze(&set);
        // Table 3 (Γ1 rows): iteration k → (J^(k), R^(k)).
        // k = 0: J = [0,0,0,0], R = [12, 9, 10, 12]
        // k = 1: J = [0,9,5,5],  R = [12, 18, 15, 17]
        // k = 2: J = [0,9,14,10], R = [12, 18, 24, 22]
        // k = 3: J = [0,9,14,19], R = [12, 18, 24, 31]  (paper prints 39)
        let expect = [
            ([0, 0, 0, 0], [12, 9, 10, 12]),
            ([0, 9, 5, 5], [12, 18, 15, 17]),
            ([0, 9, 14, 10], [12, 18, 24, 22]),
            ([0, 9, 14, 19], [12, 18, 24, 31]),
        ];
        assert_eq!(report.trace.len(), expect.len());
        for (k, (jit, resp)) in expect.iter().enumerate() {
            for j in 0..4 {
                assert_eq!(
                    report.trace[k].jitters[0][j],
                    rat(jit[j], 1),
                    "J1,{} at iteration {k}",
                    j + 1
                );
                assert_eq!(
                    report.trace[k].responses[0][j],
                    rat(resp[j], 1),
                    "R1,{} at iteration {k}",
                    j + 1
                );
            }
        }
    }

    #[test]
    fn other_transactions_fixpoints() {
        let set = paper_example::transactions();
        let report = analyze(&set);
        // Single-task transactions converge immediately.
        assert_eq!(report.response(1, 0), rat(7, 2)); // τ2,1: 1 + 2.5
        assert_eq!(report.response(2, 0), rat(7, 2)); // τ3,1

        // τ4,1 (Π3, p=1) suffers τ1,1 and τ1,4; with the converged jitter
        // J1,4 = 19 the W* scenario started by τ1,4 packs a pending τ1,4
        // job, one τ1,1 job and one more τ1,4 arrival into the busy period:
        // w = 2 + (7 + 3·1)/0.2 = 52 ≤ D = 70.
        assert_eq!(report.response(3, 0), rat(52, 1)); // τ4,1
        for v in &report.verdicts {
            assert!(v.schedulable, "{} should be schedulable", v.name);
        }
    }

    #[test]
    fn parallel_matches_sequential() {
        let set = paper_example::transactions();
        let seq = analyze_with(&set, &AnalysisConfig::default()).unwrap();
        let par = analyze_with(
            &set,
            &AnalysisConfig {
                threads: 4,
                ..AnalysisConfig::default()
            },
        )
        .unwrap();
        assert_eq!(seq.tasks.len(), par.tasks.len());
        for (a, b) in seq.tasks.iter().flatten().zip(par.tasks.iter().flatten()) {
            assert_eq!(a.response, b.response);
            assert_eq!(a.jitter, b.jitter);
        }
        assert_eq!(seq.trace.len(), par.trace.len());
    }

    #[test]
    fn gauss_seidel_reaches_same_fixpoint_faster() {
        let set = paper_example::transactions();
        let jacobi = analyze_with(&set, &AnalysisConfig::default()).unwrap();
        let gs = analyze_with(
            &set,
            &AnalysisConfig {
                update_order: crate::UpdateOrder::GaussSeidel,
                ..AnalysisConfig::default()
            },
        )
        .unwrap();
        assert!(gs.converged);
        for r in set.task_refs() {
            assert_eq!(
                gs.response(r.tx, r.idx),
                jacobi.response(r.tx, r.idx),
                "fixpoint mismatch at {r}"
            );
        }
        assert!(
            gs.iterations() <= jacobi.iterations(),
            "Gauss-Seidel took {} sweeps vs Jacobi's {}",
            gs.iterations(),
            jacobi.iterations()
        );
    }

    #[test]
    fn release_jitter_inflates_responses_but_analysis_still_bounds() {
        // Add 10 units of release jitter to Γ1's event stream.
        let base = paper_example::transactions();
        let mut txs: Vec<Transaction> = base.transactions().to_vec();
        txs[0] = txs[0].clone().with_release_jitter(rat(10, 1));
        let jittery =
            hsched_transaction::TransactionSet::new(base.platforms().clone(), txs).unwrap();
        let plain = analyze(&base);
        let report = analyze(&jittery);
        assert!(report.converged);
        // Responses (from nominal activation) can only grow.
        for r in base.task_refs() {
            assert!(
                report.response(r.tx, r.idx) >= plain.response(r.tx, r.idx),
                "jitter shrank {r}"
            );
        }
        // First task now carries the stream jitter.
        assert_eq!(report.tasks[0][0].jitter, rat(10, 1));
        assert!(report.response(0, 0) >= plain.response(0, 0) + rat(0, 1));
    }

    #[test]
    fn warm_start_from_own_fixpoint_converges_in_one_sweep() {
        let set = paper_example::transactions();
        let cold = analyze(&set);
        let warm = WarmStart::from_report(&cold);
        let resumed = analyze_resumed(&set, &AnalysisConfig::default(), Some(&warm)).unwrap();
        assert!(resumed.converged);
        assert_eq!(resumed.iterations(), 1, "fixpoint seed needs one sweep");
        for r in set.task_refs() {
            assert_eq!(resumed.response(r.tx, r.idx), cold.response(r.tx, r.idx));
            assert_eq!(
                resumed.tasks[r.tx][r.idx].jitter,
                cold.tasks[r.tx][r.idx].jitter
            );
        }
    }

    #[test]
    fn warm_start_is_exact_across_an_additive_change() {
        // Analyze the paper system, add an interfering transaction, resume
        // from the old fixpoint: the result must equal a cold start on the
        // grown system, in fewer sweeps.
        let base = paper_example::transactions();
        let old = analyze(&base);
        let mut txs: Vec<Transaction> = base.transactions().to_vec();
        txs.push(
            Transaction::new(
                "extra",
                rat(40, 1),
                rat(80, 1),
                vec![Task::new("e", rat(1, 1), rat(1, 2), 2, PlatformId(2))],
            )
            .unwrap(),
        );
        let grown = hsched_transaction::TransactionSet::new(base.platforms().clone(), txs).unwrap();
        let mut seed = WarmStart::from_report(&old);
        seed.jitters.push(vec![Time::ZERO]);
        let cold = analyze(&grown);
        let resumed = analyze_resumed(&grown, &AnalysisConfig::default(), Some(&seed)).unwrap();
        assert!(cold.converged && resumed.converged);
        for r in grown.task_refs() {
            assert_eq!(
                resumed.response(r.tx, r.idx),
                cold.response(r.tx, r.idx),
                "response mismatch at {r}"
            );
            assert_eq!(
                resumed.tasks[r.tx][r.idx].jitter, cold.tasks[r.tx][r.idx].jitter,
                "jitter mismatch at {r}"
            );
        }
        assert!(
            resumed.iterations() <= cold.iterations(),
            "resume took {} sweeps vs cold {}",
            resumed.iterations(),
            cold.iterations()
        );
    }

    #[test]
    fn downward_restart_is_exact_after_a_removal() {
        // Remove Γ3 from the paper system. The interference cone of the
        // departure (footprint of τ3,1: Π2, priority 3) reaches Γ1 (via
        // τ1,3 on Π2) and Γ4 (via τ1,4's Π3 sweep) but not Γ2 — so Γ2 is
        // frozen at its old fixpoint while the cone restarts cold. The
        // resumed result must be bit-identical to a cold analysis of the
        // shrunk set.
        let base = paper_example::transactions();
        let old = analyze(&base);
        let mut txs: Vec<Transaction> = base.transactions().to_vec();
        txs.remove(2); // Γ3
        let shrunk =
            hsched_transaction::TransactionSet::new(base.platforms().clone(), txs).unwrap();

        // Old report restricted to the surviving transactions (rows 0, 1, 3).
        let survivors = SchedulabilityReport {
            tasks: vec![
                old.tasks[0].clone(),
                old.tasks[1].clone(),
                old.tasks[3].clone(),
            ],
            verdicts: vec![
                old.verdicts[0].clone(),
                old.verdicts[1].clone(),
                old.verdicts[3].clone(),
            ],
            trace: Vec::new(),
            converged: old.converged,
            diverged: old.diverged,
        };
        let cone = crate::HpGraph::of(&shrunk).closure(
            &shrunk,
            &[crate::DirtySeed::Footprint {
                platform: hsched_platform::PlatformId(1),
                priority: 3,
            }],
        );
        assert_eq!(cone.transactions, vec![true, false, true], "Γ2 is clean");
        let warm = WarmStart::restricted(&survivors, cone.tasks.clone(), true);
        let resumed = analyze_resumed(&shrunk, &AnalysisConfig::default(), Some(&warm)).unwrap();
        let cold = analyze(&shrunk);
        assert!(resumed.converged && cold.converged);
        for r in shrunk.task_refs() {
            assert_eq!(
                resumed.response(r.tx, r.idx),
                cold.response(r.tx, r.idx),
                "response mismatch at {r}"
            );
            assert_eq!(
                resumed.tasks[r.tx][r.idx].jitter, cold.tasks[r.tx][r.idx].jitter,
                "jitter mismatch at {r}"
            );
        }
        // The frozen transaction never moved off its pinned seed.
        assert_eq!(resumed.tasks[1], survivors.tasks[1]);
    }

    #[test]
    fn rta_cache_is_invisible_in_results() {
        let set = paper_example::transactions();
        let with = analyze_with(&set, &AnalysisConfig::default()).unwrap();
        let without = analyze_with(
            &set,
            &AnalysisConfig {
                rta_cache: false,
                ..AnalysisConfig::default()
            },
        )
        .unwrap();
        assert_eq!(with.tasks, without.tasks);
        assert_eq!(with.trace, without.trace);
        // Gauss-Seidel invalidates mid-sweep; results still identical.
        let gs = AnalysisConfig {
            update_order: crate::UpdateOrder::GaussSeidel,
            ..AnalysisConfig::default()
        };
        let gs_with = analyze_with(&set, &gs).unwrap();
        let gs_without = analyze_with(
            &set,
            &AnalysisConfig {
                rta_cache: false,
                ..gs
            },
        )
        .unwrap();
        assert_eq!(gs_with.tasks, gs_without.tasks);
    }

    #[test]
    fn warm_start_shape_mismatch_falls_back_to_cold() {
        let set = paper_example::transactions();
        let bad = WarmStart {
            jitters: vec![vec![Time::ZERO]; 2],
            frozen: None,
        };
        // debug_assert trips under `cargo test`; exercise the lenient path
        // only in release. In debug, assert the guard itself.
        if cfg!(debug_assertions) {
            assert!(std::panic::catch_unwind(|| {
                analyze_resumed(&set, &AnalysisConfig::default(), Some(&bad))
            })
            .is_err());
        } else {
            let cold = analyze(&set);
            let resumed = analyze_resumed(&set, &AnalysisConfig::default(), Some(&bad)).unwrap();
            assert_eq!(resumed.tasks, cold.tasks);
        }
    }

    #[test]
    fn overloaded_system_reports_divergence() {
        let mut platforms = PlatformSet::new();
        let p = platforms.add(Platform::linear("tiny", rat(1, 10), rat(0, 1), rat(0, 1)).unwrap());
        let hog = Transaction::new(
            "hog",
            rat(10, 1),
            rat(10, 1),
            vec![Task::new("h", rat(2, 1), rat(2, 1), 2, p)],
        )
        .unwrap();
        let set = hsched_transaction::TransactionSet::new(platforms, vec![hog]).unwrap();
        let report = analyze(&set);
        assert!(report.diverged);
        assert!(!report.schedulable());
    }

    #[test]
    fn deadline_miss_without_divergence() {
        // Schedulable demand but a deadline tighter than the response.
        let mut platforms = PlatformSet::new();
        let p = platforms.add(Platform::linear("half", rat(1, 2), rat(2, 1), rat(0, 1)).unwrap());
        let tx = Transaction::new(
            "tight",
            rat(100, 1),
            rat(3, 1), // deadline 3 < response 2 + 1/0.5 = 4
            vec![Task::new("t", rat(1, 1), rat(1, 1), 1, p)],
        )
        .unwrap();
        let set = hsched_transaction::TransactionSet::new(platforms, vec![tx]).unwrap();
        let report = analyze(&set);
        assert!(report.converged);
        assert!(!report.diverged);
        assert!(!report.schedulable());
        assert_eq!(report.response(0, 0), rat(4, 1));
    }

    #[test]
    fn exact_curve_mode_is_no_more_pessimistic() {
        // Platforms built from real periodic servers: the exact staircase
        // inversion must give responses ≤ the linear abstraction's.
        let mut platforms = PlatformSet::new();
        let p = platforms.add(Platform::server("srv", rat(2, 1), rat(5, 1)).unwrap());
        let tx = Transaction::new(
            "t",
            rat(50, 1),
            rat(50, 1),
            vec![Task::new("a", rat(3, 1), rat(2, 1), 1, p)],
        )
        .unwrap();
        let set = hsched_transaction::TransactionSet::new(platforms, vec![tx]).unwrap();
        let linear = analyze_with(&set, &AnalysisConfig::default()).unwrap();
        let exact = analyze_with(
            &set,
            &AnalysisConfig {
                service_mode: crate::ServiceTimeMode::ExactCurve,
                ..AnalysisConfig::default()
            },
        )
        .unwrap();
        assert!(exact.response(0, 0) <= linear.response(0, 0));
        // Concretely: linear = Δ + 3/α = 6 + 7.5 = 13.5; staircase = 12.
        assert_eq!(linear.response(0, 0), rat(27, 2));
        assert_eq!(exact.response(0, 0), rat(12, 1));
    }
}
