//! Property tests for the holistic analysis on randomized small systems:
//! ordering and monotonicity laws that must hold whatever the workload.

use hsched_analysis::{analyze_with, AnalysisConfig, UpdateOrder};
use hsched_numeric::{rat, Rational};
use hsched_platform::{Platform, PlatformId, PlatformSet};
use hsched_transaction::{Task, Transaction, TransactionSet};
use proptest::prelude::*;

#[derive(Debug, Clone)]
struct RawTask {
    wcet_tenths: i128,
    bcet_pct: i128,
    priority: u32,
    platform: usize,
}

#[derive(Debug, Clone)]
struct RawSystem {
    alphas: Vec<i128>, // tenths, 1..=10
    deltas: Vec<i128>,
    txs: Vec<(i128, Vec<RawTask>)>, // (period index, tasks)
}

const PERIODS: [i128; 5] = [25, 40, 50, 80, 100];

fn raw_system() -> impl Strategy<Value = RawSystem> {
    let task = (1i128..=10, 25i128..=100, 1u32..=4, 0usize..2).prop_map(
        |(wcet_tenths, bcet_pct, priority, platform)| RawTask {
            wcet_tenths,
            bcet_pct,
            priority,
            platform,
        },
    );
    let tx = (0i128..5, proptest::collection::vec(task, 1..=3));
    (
        proptest::collection::vec(3i128..=10, 2..=2),
        proptest::collection::vec(0i128..=2, 2..=2),
        proptest::collection::vec(tx, 1..=3),
    )
        .prop_map(|(alphas, deltas, txs)| RawSystem {
            alphas,
            deltas,
            txs,
        })
}

fn build(raw: &RawSystem) -> TransactionSet {
    let mut platforms = PlatformSet::new();
    for (k, (&a, &d)) in raw.alphas.iter().zip(&raw.deltas).enumerate() {
        platforms.add(
            Platform::linear(format!("P{k}"), rat(a, 10), rat(d, 1), rat(0, 1)).expect("valid"),
        );
    }
    let txs = raw
        .txs
        .iter()
        .enumerate()
        .map(|(i, (p_idx, tasks))| {
            let period = rat(PERIODS[(*p_idx as usize) % PERIODS.len()], 1);
            let tasks = tasks
                .iter()
                .enumerate()
                .map(|(j, t)| {
                    let wcet = rat(t.wcet_tenths, 10);
                    Task::new(
                        format!("t{i}_{j}"),
                        wcet,
                        wcet * rat(t.bcet_pct, 100),
                        t.priority,
                        PlatformId(t.platform % 2),
                    )
                })
                .collect();
            Transaction::new(format!("tx{i}"), period, period * rat(4, 1), tasks).expect("valid")
        })
        .collect();
    TransactionSet::new(platforms, txs).expect("valid")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn responses_dominate_best_case_chain(raw in raw_system()) {
        let set = build(&raw);
        let report = analyze_with(&set, &AnalysisConfig::default()).unwrap();
        prop_assume!(!report.diverged && report.converged);
        for (i, row) in report.tasks.iter().enumerate() {
            for (j, t) in row.iter().enumerate() {
                prop_assert!(
                    t.response >= t.best_response,
                    "R < Rbest at τ{},{}", i + 1, j + 1
                );
                prop_assert!(t.response.is_positive());
                prop_assert!(!t.jitter.is_negative());
                // Responses grow along the chain (precedence).
                if j > 0 {
                    prop_assert!(
                        t.response >= row[j - 1].response,
                        "chain response not monotone at τ{},{}", i + 1, j + 1
                    );
                }
            }
        }
    }

    #[test]
    fn trace_responses_monotone_across_iterations(raw in raw_system()) {
        let set = build(&raw);
        let report = analyze_with(&set, &AnalysisConfig::default()).unwrap();
        prop_assume!(!report.diverged);
        for k in 1..report.trace.len() {
            for (i, row) in report.trace[k].responses.iter().enumerate() {
                for (j, &r) in row.iter().enumerate() {
                    prop_assert!(
                        r >= report.trace[k - 1].responses[i][j],
                        "iteration {k} shrank R at τ{},{}", i + 1, j + 1
                    );
                }
            }
        }
    }

    #[test]
    fn gauss_seidel_matches_jacobi_fixpoint(raw in raw_system()) {
        let set = build(&raw);
        let jacobi = analyze_with(&set, &AnalysisConfig::default()).unwrap();
        let gs = analyze_with(
            &set,
            &AnalysisConfig {
                update_order: UpdateOrder::GaussSeidel,
                ..AnalysisConfig::default()
            },
        )
        .unwrap();
        prop_assume!(jacobi.converged && gs.converged);
        for r in set.task_refs() {
            prop_assert_eq!(
                jacobi.response(r.tx, r.idx),
                gs.response(r.tx, r.idx),
                "fixpoints differ at {}", r
            );
        }
        prop_assert!(gs.iterations() <= jacobi.iterations());
    }

    #[test]
    fn inflating_a_wcet_never_shrinks_any_response(raw in raw_system()) {
        let set = build(&raw);
        let base = analyze_with(&set, &AnalysisConfig::default()).unwrap();
        prop_assume!(base.converged && !base.diverged);
        // Double the first task's WCET.
        let mut txs: Vec<Transaction> = set.transactions().to_vec();
        let mut tasks = txs[0].tasks().to_vec();
        tasks[0].wcet *= rat(2, 1);
        tasks[0].bcet = tasks[0].bcet.min(tasks[0].wcet);
        txs[0] = Transaction::new(
            txs[0].name.clone(),
            txs[0].period,
            txs[0].deadline,
            tasks,
        )
        .unwrap();
        let heavier = TransactionSet::new(set.platforms().clone(), txs).unwrap();
        let inflated = analyze_with(&heavier, &AnalysisConfig::default()).unwrap();
        prop_assume!(!inflated.diverged);
        for r in set.task_refs() {
            prop_assert!(
                inflated.response(r.tx, r.idx) >= base.response(r.tx, r.idx),
                "heavier load shrank response at {}", r
            );
        }
    }

    #[test]
    fn threads_do_not_change_results(raw in raw_system()) {
        let set = build(&raw);
        let seq = analyze_with(&set, &AnalysisConfig::default()).unwrap();
        let par = analyze_with(
            &set,
            &AnalysisConfig {
                threads: 3,
                ..AnalysisConfig::default()
            },
        )
        .unwrap();
        for r in set.task_refs() {
            prop_assert_eq!(seq.response(r.tx, r.idx), par.response(r.tx, r.idx));
        }
    }

    #[test]
    fn utilization_overflow_always_detected(raw in raw_system()) {
        // Scale all WCETs so that some platform's demand exceeds its rate:
        // the analysis must report divergence rather than fabricate bounds.
        let set = build(&raw);
        let u = set.platform_utilization();
        let alpha0 = set.platforms()[PlatformId(0)].alpha();
        prop_assume!(u[0].is_positive());
        // Factor pushing platform 0 to 1.5× its capacity.
        let factor = alpha0 / u[0] * rat(3, 2);
        let txs: Vec<Transaction> = set
            .transactions()
            .iter()
            .map(|tx| {
                let tasks = tx
                    .tasks()
                    .iter()
                    .map(|t| {
                        let mut t = t.clone();
                        if t.platform == PlatformId(0) {
                            t.wcet *= factor;
                            t.bcet = t.bcet.min(t.wcet);
                        }
                        t
                    })
                    .collect();
                Transaction::new(tx.name.clone(), tx.period, tx.deadline, tasks).unwrap()
            })
            .collect();
        let overloaded = TransactionSet::new(set.platforms().clone(), txs).unwrap();
        prop_assert!(!overloaded.overloaded_platforms().is_empty());
        let report = analyze_with(&overloaded, &AnalysisConfig::default()).unwrap();
        prop_assert!(report.diverged || !report.schedulable());
    }
}

/// Non-proptest determinism anchor: the same raw system analyzed twice gives
/// byte-identical reports.
#[test]
fn analysis_is_deterministic() {
    let raw = RawSystem {
        alphas: vec![4, 7],
        deltas: vec![1, 2],
        txs: vec![
            (
                0,
                vec![
                    RawTask {
                        wcet_tenths: 8,
                        bcet_pct: 50,
                        priority: 2,
                        platform: 0,
                    },
                    RawTask {
                        wcet_tenths: 5,
                        bcet_pct: 100,
                        priority: 1,
                        platform: 1,
                    },
                ],
            ),
            (
                2,
                vec![RawTask {
                    wcet_tenths: 10,
                    bcet_pct: 75,
                    priority: 3,
                    platform: 0,
                }],
            ),
        ],
    };
    let set = build(&raw);
    let a = analyze_with(&set, &AnalysisConfig::default()).unwrap();
    let b = analyze_with(&set, &AnalysisConfig::default()).unwrap();
    assert_eq!(a, b);
    assert_eq!(Rational::ONE, rat(1, 1));
}
