//! Property tests over randomized supply curves: the defining invariants of
//! Definitions 1–5 must hold for every mechanism.

use hsched_numeric::{rat, Rational, Time};
use hsched_supply::{
    extract_linear_bounds, PeriodicServer, QuantizedFluid, SupplyCurve, TdmaSupply,
};
use proptest::prelude::*;

/// Random periodic servers with small rational parameters.
fn server_strategy() -> impl Strategy<Value = PeriodicServer> {
    (1i128..=40, 1i128..=4, 1i128..=40, 1i128..=4).prop_filter_map("Q ≤ P", |(qn, qd, pn, pd)| {
        let q = rat(qn, qd);
        let p = rat(pn, pd);
        if q <= p {
            PeriodicServer::new(q, p).ok()
        } else {
            None
        }
    })
}

/// Random TDMA partitions: a frame with 1–3 disjoint slots.
fn tdma_strategy() -> impl Strategy<Value = TdmaSupply> {
    (
        2i128..=30,
        proptest::collection::vec((0i128..100, 1i128..=30), 1..=3),
    )
        .prop_filter_map("valid slots", |(frame, raw)| {
            let frame = rat(frame, 1);
            // Lay the requested slots end to end with 1-unit gaps, scaled
            // into the frame.
            let mut slots = Vec::new();
            let mut cursor = Rational::ZERO;
            for (start_skip, len) in raw {
                let start = cursor + rat(start_skip % 3, 2);
                let len = rat(len, 10);
                if start + len >= frame {
                    break;
                }
                slots.push((start, len));
                cursor = start + len + rat(1, 2);
            }
            if slots.is_empty() {
                return None;
            }
            TdmaSupply::new(frame, slots).ok()
        })
}

fn sample_times(horizon: Time) -> Vec<Time> {
    (0..=60).map(|k| horizon * rat(k, 60)).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn server_curves_bracket_and_are_monotone(s in server_strategy()) {
        let horizon = s.period() * rat(4, 1) + s.blackout();
        let mut prev_min = Rational::ZERO;
        let mut prev_max = Rational::ZERO;
        for t in sample_times(horizon) {
            let lo = s.zmin(t);
            let hi = s.zmax(t);
            prop_assert!(lo >= Rational::ZERO);
            prop_assert!(lo <= hi, "zmin {lo} > zmax {hi} at t={t}");
            prop_assert!(hi <= t, "physical cap violated at t={t}");
            prop_assert!(lo >= prev_min);
            prop_assert!(hi >= prev_max);
            prev_min = lo;
            prev_max = hi;
        }
    }

    #[test]
    fn server_linear_abstraction_brackets(s in server_strategy()) {
        let lin = s.to_linear();
        let horizon = s.period() * rat(4, 1) + s.blackout();
        for t in sample_times(horizon) {
            prop_assert!(lin.zmin(t) <= s.zmin(t), "linear lower bound broken at t={t}");
            prop_assert!(lin.zmax(t) >= s.zmax(t), "linear upper bound broken at t={t}");
        }
    }

    #[test]
    fn server_inverse_galois(s in server_strategy(), cn in 1i128..=60, cd in 1i128..=4) {
        let c = rat(cn, cd).min(s.budget() * rat(8, 1));
        let t = s.time_to_supply_min(c);
        prop_assert!(s.zmin(t) >= c, "zmin(inverse(c)) < c");
        // Minimality: slightly earlier must not satisfy the demand.
        let eps = rat(1, 1000);
        if t > eps {
            prop_assert!(s.zmin(t - eps) < c, "inverse not minimal for c={c}");
        }
        let tb = s.time_to_supply_max(c);
        prop_assert!(s.zmax(tb) >= c);
        prop_assert!(tb <= t, "best case slower than worst case");
    }

    #[test]
    fn server_extraction_matches_closed_form(s in server_strategy()) {
        let horizon = s.blackout() + s.period() * rat(3, 1);
        let got = extract_linear_bounds(&s, horizon).model;
        let expect = s.to_linear();
        prop_assert_eq!(got.alpha(), expect.alpha());
        prop_assert_eq!(got.delay(), expect.delay());
        prop_assert_eq!(got.burstiness(), expect.burstiness());
    }

    #[test]
    fn tdma_curves_bracket_and_invert(t in tdma_strategy()) {
        let horizon = t.frame() * rat(3, 1);
        let mut prev_min = Rational::ZERO;
        for x in sample_times(horizon) {
            let lo = t.zmin(x);
            let hi = t.zmax(x);
            prop_assert!(lo <= hi);
            prop_assert!(hi <= x);
            prop_assert!(lo >= prev_min);
            prev_min = lo;
        }
        // Rate sanity: zmin over k frames equals k × per-frame supply.
        let per_frame = t.rate() * t.frame();
        prop_assert_eq!(t.zmin(t.frame() * rat(2, 1)) + per_frame, t.zmin(t.frame() * rat(3, 1)));
        // Inverse round trip.
        let c = per_frame * rat(3, 2);
        let inv = t.time_to_supply_min(c);
        prop_assert!(t.zmin(inv) >= c);
    }

    #[test]
    fn tdma_linear_bounds_bracket(t in tdma_strategy()) {
        let horizon = t.frame() * rat(3, 1);
        let lb = extract_linear_bounds(&t, horizon);
        for x in sample_times(horizon) {
            prop_assert!(lb.model.zmin(x) <= t.zmin(x), "lower bound broken at {x}");
            prop_assert!(lb.model.zmax(x) >= t.zmax(x), "upper bound broken at {x}");
        }
    }

    #[test]
    fn quantized_fluid_consistent(an in 1i128..=9, lagn in 0i128..=8) {
        let alpha = rat(an, 10);
        let lag = rat(lagn, 2);
        let q = QuantizedFluid::new(alpha, lag).unwrap();
        for k in 0..40 {
            let t = rat(k, 2);
            prop_assert!(q.zmin(t) <= q.zmax(t));
            prop_assert!(q.zmax(t) <= t.max(Rational::ZERO));
        }
        let c = rat(3, 1);
        prop_assert!(q.zmin(q.time_to_supply_min(c)) >= c);
        prop_assert!(q.zmax(q.time_to_supply_max(c)) >= c);
    }
}
