//! Exact supply staircases of a periodic server (Figure 3 of the paper).

use crate::{BoundedDelay, SupplyCurve};
use hsched_numeric::{Cycles, Rational, Time};

/// A periodic server granting a budget of `Q` cycles every period `P`
/// (polling server, periodic resource, CBS with hard reservation — all share
/// these bounds).
///
/// The **minimum** supply pattern (Figure 3, "(min)") starts right after a
/// budget that was scheduled as early as possible in its period, followed by
/// a budget scheduled as late as possible: an initial blackout of
/// `2(P − Q)`, then `Q` cycles at full speed each period.
///
/// The **maximum** pattern ("(max)") starts at the beginning of a budget that
/// was scheduled as late as possible, immediately followed by the next
/// period's budget: `2Q` cycles back-to-back, then `Q` each period.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct PeriodicServer {
    budget: Cycles,
    period: Time,
}

impl PeriodicServer {
    /// Creates a server; requires `0 < Q ≤ P`.
    pub fn new(budget: Cycles, period: Time) -> Result<PeriodicServer, String> {
        if !budget.is_positive() {
            return Err(format!("server budget must be > 0, got {budget}"));
        }
        if period < budget {
            return Err(format!(
                "server period must be ≥ budget, got Q={budget} > P={period}"
            ));
        }
        Ok(PeriodicServer { budget, period })
    }

    /// Budget `Q`.
    #[inline]
    pub fn budget(&self) -> Cycles {
        self.budget
    }

    /// Period `P`.
    #[inline]
    pub fn period(&self) -> Time {
        self.period
    }

    /// The worst-case initial blackout, `2(P − Q)`.
    #[inline]
    pub fn blackout(&self) -> Time {
        (self.period - self.budget) * Rational::from_integer(2)
    }

    /// The paper's linear abstraction of this server:
    /// `α = Q/P`, `Δ = 2(P − Q)`, `β = 2(P − Q)` (β in time units).
    pub fn to_linear(&self) -> BoundedDelay {
        let two = Rational::from_integer(2);
        let gap = self.period - self.budget;
        BoundedDelay::new(self.budget / self.period, two * gap, two * gap)
            .expect("valid server yields valid linear model")
    }

    /// Synthesizes the server `(Q, P)` whose linear abstraction meets a
    /// requested `(α, Δ)`: the largest period with `Q/P = α` and
    /// `2(P − Q) ≤ Δ`, i.e. `P = Δ / (2(1 − α))`, `Q = αP`.
    ///
    /// Returns `None` when `α ≥ 1` (a dedicated processor needs no server)
    /// or when `Δ = 0` with `α < 1` (unachievable by any periodic server).
    pub fn from_linear_params(alpha: Rational, delta: Time) -> Option<PeriodicServer> {
        if alpha >= Rational::ONE || !alpha.is_positive() {
            return None;
        }
        if !delta.is_positive() {
            return None;
        }
        let two = Rational::from_integer(2);
        let period = delta / (two * (Rational::ONE - alpha));
        let budget = alpha * period;
        PeriodicServer::new(budget, period).ok()
    }

    /// Bandwidth utilization `Q/P`.
    #[inline]
    pub fn utilization(&self) -> Rational {
        self.budget / self.period
    }
}

/// Evaluates the repeating staircase `k·Q + min(rem, Q)` with
/// `k = floor(t/P)`, `rem = t − kP`, for `t ≥ 0`.
fn staircase(budget: Cycles, period: Time, t: Time) -> Cycles {
    if !t.is_positive() {
        return Cycles::ZERO;
    }
    let k = (t / period).floor();
    let rem = t - period * Rational::from_integer(k);
    Cycles::from_integer(k) * budget + rem.min(budget)
}

/// Least `t ≥ 0` with `staircase(t) ≥ c`, for `c > 0`.
fn staircase_inverse(budget: Cycles, period: Time, c: Cycles) -> Time {
    debug_assert!(c.is_positive());
    // c = k·Q + r with r ∈ (0, Q]: the k complete periods plus r into the
    // (k+1)-th budget.
    let k = (c / budget).ceil() - 1;
    let r = c - Cycles::from_integer(k) * budget;
    period * Rational::from_integer(k) + r
}

impl SupplyCurve for PeriodicServer {
    fn zmin(&self, t: Time) -> Cycles {
        let d = self.blackout();
        if t <= d {
            return Cycles::ZERO;
        }
        staircase(self.budget, self.period, t - d)
    }

    fn zmax(&self, t: Time) -> Cycles {
        if t <= Time::ZERO {
            return Cycles::ZERO;
        }
        if t <= self.budget {
            return t;
        }
        // After the first back-to-back budget, early budgets every period.
        self.budget + staircase(self.budget, self.period, t - self.budget)
    }

    fn rate(&self) -> Rational {
        self.budget / self.period
    }

    fn time_to_supply_min(&self, c: Cycles) -> Time {
        if !c.is_positive() {
            return Time::ZERO;
        }
        self.blackout() + staircase_inverse(self.budget, self.period, c)
    }

    fn time_to_supply_max(&self, c: Cycles) -> Time {
        if !c.is_positive() {
            return Time::ZERO;
        }
        if c <= self.budget {
            return c;
        }
        self.budget + staircase_inverse(self.budget, self.period, c - self.budget)
    }

    fn breakpoints(&self, horizon: Time) -> Vec<Time> {
        let mut points = vec![Time::ZERO];
        let d = self.blackout();
        let mut base = Time::ZERO;
        while base <= horizon {
            // zmin slope changes at d + kP (start serving) and d + kP + Q.
            points.push(d + base);
            points.push(d + base + self.budget);
            // zmax slope changes at Q + kP and at kP boundaries of its runs.
            points.push(self.budget + base);
            points.push(self.budget + base + self.budget);
            base += self.period;
        }
        points.retain(|&p| p <= horizon);
        points.sort_unstable();
        points.dedup();
        points
    }
}

impl std::fmt::Display for PeriodicServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "server(Q={}, P={})", self.budget, self.period)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::check_curve_invariants;
    use hsched_numeric::rat;

    fn q2p5() -> PeriodicServer {
        PeriodicServer::new(rat(2, 1), rat(5, 1)).unwrap()
    }

    #[test]
    fn construction_validation() {
        assert!(PeriodicServer::new(rat(2, 1), rat(5, 1)).is_ok());
        assert!(PeriodicServer::new(rat(5, 1), rat(5, 1)).is_ok()); // full CPU
        assert!(PeriodicServer::new(Cycles::ZERO, rat(5, 1)).is_err());
        assert!(PeriodicServer::new(rat(6, 1), rat(5, 1)).is_err());
    }

    #[test]
    fn zmin_blackout_then_staircase() {
        let s = q2p5();
        // Blackout 2(P−Q) = 6.
        assert_eq!(s.blackout(), rat(6, 1));
        assert_eq!(s.zmin(rat(6, 1)), Cycles::ZERO);
        assert_eq!(s.zmin(rat(3, 1)), Cycles::ZERO);
        // Then slope 1 for Q=2: zmin(7)=1, zmin(8)=2, plateau to 6+5=11.
        assert_eq!(s.zmin(rat(7, 1)), rat(1, 1));
        assert_eq!(s.zmin(rat(8, 1)), rat(2, 1));
        assert_eq!(s.zmin(rat(10, 1)), rat(2, 1));
        assert_eq!(s.zmin(rat(11, 1)), rat(2, 1));
        assert_eq!(s.zmin(rat(12, 1)), rat(3, 1));
        assert_eq!(s.zmin(rat(13, 1)), rat(4, 1));
    }

    #[test]
    fn zmax_burst_then_staircase() {
        let s = q2p5();
        // 2Q back-to-back: slope 1 to t=4.
        assert_eq!(s.zmax(rat(1, 1)), rat(1, 1));
        assert_eq!(s.zmax(rat(4, 1)), rat(4, 1));
        // Plateau until Q+P=7, then slope 1 again.
        assert_eq!(s.zmax(rat(7, 1)), rat(4, 1));
        assert_eq!(s.zmax(rat(8, 1)), rat(5, 1));
        assert_eq!(s.zmax(rat(9, 1)), rat(6, 1));
        assert_eq!(s.zmax(rat(12, 1)), rat(6, 1));
    }

    #[test]
    fn inverses_are_exact() {
        let s = q2p5();
        // 3 cycles worst-case: blackout 6 + one full period 5 + 1 = 12.
        assert_eq!(s.time_to_supply_min(rat(3, 1)), rat(12, 1));
        assert_eq!(s.zmin(rat(12, 1)), rat(3, 1));
        // Exactly Q cycles: 6 + 2.
        assert_eq!(s.time_to_supply_min(rat(2, 1)), rat(8, 1));
        // Best case 3 cycles: 2 back-to-back… 3 ≤ 2Q=4 → t = 3.
        assert_eq!(s.time_to_supply_max(rat(3, 1)), rat(3, 1));
        // Best case 5 cycles: 2 + inverse(3 over staircase) = 2 + 5 + 1 = 8.
        assert_eq!(s.time_to_supply_max(rat(5, 1)), rat(8, 1));
    }

    #[test]
    fn linear_abstraction_brackets_staircase() {
        let s = q2p5();
        let lin = s.to_linear();
        assert_eq!(lin.alpha(), rat(2, 5));
        assert_eq!(lin.delay(), rat(6, 1));
        assert_eq!(lin.burstiness(), rat(6, 1));
        for k in 0..=400 {
            let t = rat(k, 8);
            assert!(
                lin.zmin(t) <= s.zmin(t),
                "linear zmin above staircase at {t}"
            );
            assert!(
                lin.zmax(t) >= s.zmax(t),
                "linear zmax below staircase at {t}"
            );
        }
        // Tightness: the bounds touch the staircase.
        // zmin touches at the end of each plateau: t = d + P = 11.
        assert_eq!(lin.zmin(rat(11, 1)), s.zmin(rat(11, 1)));
        // zmax touches at the end of the initial burst: t = 2Q = 4.
        assert_eq!(lin.zmax(rat(4, 1)), s.zmax(rat(4, 1)));
    }

    #[test]
    fn full_processor_degenerate_case() {
        let s = PeriodicServer::new(rat(5, 1), rat(5, 1)).unwrap();
        for k in 0..40 {
            let t = rat(k, 2);
            assert_eq!(s.zmin(t), t);
            assert_eq!(s.zmax(t), t);
        }
        let lin = s.to_linear();
        assert_eq!(lin.alpha(), Rational::ONE);
        assert_eq!(lin.delay(), Time::ZERO);
    }

    #[test]
    fn from_linear_params_roundtrip() {
        // α=0.4, Δ=6 → P = 6/(2·0.6) = 5, Q = 2.
        let s = PeriodicServer::from_linear_params(rat(2, 5), rat(6, 1)).unwrap();
        assert_eq!(s.budget(), rat(2, 1));
        assert_eq!(s.period(), rat(5, 1));
        let lin = s.to_linear();
        assert_eq!(lin.alpha(), rat(2, 5));
        assert_eq!(lin.delay(), rat(6, 1));
        // Degenerate requests.
        assert!(PeriodicServer::from_linear_params(Rational::ONE, rat(6, 1)).is_none());
        assert!(PeriodicServer::from_linear_params(rat(2, 5), Time::ZERO).is_none());
    }

    #[test]
    fn rate_is_long_run_slope() {
        let s = q2p5();
        // Zmin(t)/t and Zmax(t)/t converge to α = 0.4.
        let big = rat(5_000, 1);
        let lo = s.zmin(big) / big;
        let hi = s.zmax(big) / big;
        assert!((lo - rat(2, 5)).abs() < rat(1, 100));
        assert!((hi - rat(2, 5)).abs() < rat(1, 100));
        assert_eq!(s.rate(), rat(2, 5));
        assert_eq!(s.utilization(), rat(2, 5));
    }

    #[test]
    fn curve_invariants() {
        check_curve_invariants(&q2p5(), rat(60, 1));
        check_curve_invariants(
            &PeriodicServer::new(rat(1, 2), rat(7, 2)).unwrap(),
            rat(50, 1),
        );
        check_curve_invariants(
            &PeriodicServer::new(rat(5, 1), rat(5, 1)).unwrap(),
            rat(30, 1),
        );
    }

    #[test]
    fn breakpoints_cover_slope_changes() {
        let s = q2p5();
        let pts = s.breakpoints(rat(20, 1));
        assert!(pts.contains(&rat(6, 1))); // zmin starts
        assert!(pts.contains(&rat(8, 1))); // zmin plateau
        assert!(pts.contains(&rat(4, 1))); // zmax plateau after burst
        assert!(pts.windows(2).all(|w| w[0] < w[1]), "sorted, deduped");
    }
}
