//! P-fair-like quantized fluid supply (the paper's citation [13],
//! Srinivasan & Anderson's rate-based multiprocessor scheduling).

use crate::SupplyCurve;
use hsched_numeric::{Cycles, Rational, Time};

/// A proportional-share resource that tracks the fluid allocation `α·t`
/// within a bounded lag (P-fair schedulers guarantee lag < 1 quantum):
///
/// * `Zmin(t) = max(0, α·t − L)`
/// * `Zmax(t) = min(t, α·t + L)`
///
/// where `L` is the lag bound in cycles.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct QuantizedFluid {
    alpha: Rational,
    lag: Cycles,
}

impl QuantizedFluid {
    /// Creates the model; requires `0 < α ≤ 1` and `L ≥ 0`.
    pub fn new(alpha: Rational, lag: Cycles) -> Result<QuantizedFluid, String> {
        if !alpha.is_positive() || alpha > Rational::ONE {
            return Err(format!("rate must satisfy 0 < α ≤ 1, got {alpha}"));
        }
        if lag.is_negative() {
            return Err(format!("lag must be ≥ 0, got {lag}"));
        }
        Ok(QuantizedFluid { alpha, lag })
    }

    /// Rate α.
    #[inline]
    pub fn alpha(&self) -> Rational {
        self.alpha
    }

    /// Lag bound in cycles.
    #[inline]
    pub fn lag(&self) -> Cycles {
        self.lag
    }

    /// The linear abstraction: `Δ = L/α` (time the fluid line needs to make
    /// up the lag) and `β = L/α`.
    pub fn to_linear(&self) -> crate::BoundedDelay {
        let d = self.lag / self.alpha;
        crate::BoundedDelay::new(self.alpha, d, d).expect("valid fluid model")
    }
}

impl SupplyCurve for QuantizedFluid {
    fn zmin(&self, t: Time) -> Cycles {
        (self.alpha * t - self.lag).max(Cycles::ZERO)
    }

    fn zmax(&self, t: Time) -> Cycles {
        if !t.is_positive() {
            return Cycles::ZERO;
        }
        (self.alpha * t + self.lag).min(t)
    }

    fn rate(&self) -> Rational {
        self.alpha
    }

    fn time_to_supply_min(&self, c: Cycles) -> Time {
        if !c.is_positive() {
            return Time::ZERO;
        }
        (c + self.lag) / self.alpha
    }

    fn time_to_supply_max(&self, c: Cycles) -> Time {
        if !c.is_positive() {
            return Time::ZERO;
        }
        // Need both t ≥ c (physical cap) and αt + L ≥ c.
        let fluid = (c - self.lag) / self.alpha;
        fluid.max(c).max(Time::ZERO)
    }
}

impl std::fmt::Display for QuantizedFluid {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "pfair(α={}, lag={})", self.alpha, self.lag)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::check_curve_invariants;
    use hsched_numeric::rat;

    fn half_rate() -> QuantizedFluid {
        QuantizedFluid::new(rat(1, 2), rat(1, 1)).unwrap()
    }

    #[test]
    fn validation() {
        assert!(QuantizedFluid::new(rat(1, 2), Cycles::ZERO).is_ok());
        assert!(QuantizedFluid::new(Rational::ZERO, Cycles::ZERO).is_err());
        assert!(QuantizedFluid::new(rat(3, 2), Cycles::ZERO).is_err());
        assert!(QuantizedFluid::new(rat(1, 2), rat(-1, 1)).is_err());
    }

    #[test]
    fn bounds_track_fluid_within_lag() {
        let q = half_rate();
        for k in 0..=40 {
            let t = rat(k, 2);
            let fluid = rat(1, 2) * t;
            assert!(q.zmin(t) >= (fluid - rat(1, 1)).max(Cycles::ZERO));
            assert!(q.zmax(t) <= fluid + rat(1, 1));
        }
    }

    #[test]
    fn physical_cap_applies_to_zmax() {
        let q = half_rate();
        // At t = 1: fluid + lag = 1.5 but only 1 time unit elapsed.
        assert_eq!(q.zmax(rat(1, 1)), rat(1, 1));
        // At t = 4: fluid + lag = 3 < 4.
        assert_eq!(q.zmax(rat(4, 1)), rat(3, 1));
    }

    #[test]
    fn inverses() {
        let q = half_rate();
        // Worst case for 2 cycles: (2 + 1)/0.5 = 6.
        assert_eq!(q.time_to_supply_min(rat(2, 1)), rat(6, 1));
        assert_eq!(q.zmin(rat(6, 1)), rat(2, 1));
        // Best case for 2 cycles: max(2, (2−1)/0.5) = 2 (cap binds).
        assert_eq!(q.time_to_supply_max(rat(2, 1)), rat(2, 1));
        // Best case for 4 cycles: max(4, 6) = 6.
        assert_eq!(q.time_to_supply_max(rat(4, 1)), rat(6, 1));
    }

    #[test]
    fn linear_abstraction() {
        let lin = half_rate().to_linear();
        assert_eq!(lin.alpha(), rat(1, 2));
        assert_eq!(lin.delay(), rat(2, 1));
        assert_eq!(lin.burstiness(), rat(2, 1));
    }

    #[test]
    fn curve_invariants() {
        check_curve_invariants(&half_rate(), rat(30, 1));
        check_curve_invariants(
            &QuantizedFluid::new(rat(3, 4), rat(1, 2)).unwrap(),
            rat(30, 1),
        );
    }
}
