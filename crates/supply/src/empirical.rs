//! Supply curves measured from a running platform rather than derived from
//! a mechanism's closed form.
//!
//! In deployment, a component's reservation is often implemented by an
//! opaque hypervisor or OS mechanism; what *is* observable is the cycle
//! count delivered over sliding windows. [`EmpiricalSupply`] turns such
//! measurements — a conservative lower envelope and an upper envelope over
//! one repetition period, plus the long-run rate — into a [`SupplyCurve`]
//! usable everywhere a closed-form mechanism is: analysis (both service
//! modes), linear-bound extraction, platform construction.

use crate::{PiecewiseCurve, SupplyCurve};
use hsched_numeric::{Cycles, Rational, Time};

/// A measured supply-curve pair, periodic after a measured prefix:
/// for `t` beyond the measured horizon `H`, the curves continue as
/// `curve(t) = curve(t − k·P) + k·(α·P)` where `P` is the repetition period.
///
/// Invariants checked at construction:
/// * both envelopes start at `(0, 0)` and are non-decreasing;
/// * `min(t) ≤ max(t)` at every breakpoint of either curve;
/// * the measured horizon covers at least one period;
/// * the per-period gain of both envelopes equals `α·P` (otherwise the
///   periodic extension would drift away from the measurement).
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct EmpiricalSupply {
    min_curve: PiecewiseCurve,
    max_curve: PiecewiseCurve,
    period: Time,
    rate: Rational,
}

impl EmpiricalSupply {
    /// Builds an empirical supply from measured envelopes.
    ///
    /// `min_points` / `max_points` are breakpoints over `[0, period]`
    /// (values in cycles); `rate` is the long-run rate α.
    pub fn new(
        min_points: Vec<(Time, Cycles)>,
        max_points: Vec<(Time, Cycles)>,
        period: Time,
        rate: Rational,
    ) -> Result<EmpiricalSupply, String> {
        if !period.is_positive() {
            return Err("measurement period must be positive".into());
        }
        if !rate.is_positive() || rate > Rational::ONE {
            return Err(format!("rate must satisfy 0 < α ≤ 1, got {rate}"));
        }
        let per_period = rate * period;
        let check_envelope = |points: &[(Time, Cycles)], what: &str| -> Result<(), String> {
            let Some(&(t0, v0)) = points.first() else {
                return Err(format!("{what} envelope needs breakpoints"));
            };
            if !t0.is_zero() || !v0.is_zero() {
                return Err(format!("{what} envelope must start at (0, 0)"));
            }
            let &(tn, vn) = points.last().expect("non-empty");
            if tn != period {
                return Err(format!(
                    "{what} envelope must extend exactly to the period {period}, ends at {tn}"
                ));
            }
            if vn != per_period {
                return Err(format!(
                    "{what} envelope gains {vn} per period but α·P = {per_period}; \
                     the periodic extension would drift"
                ));
            }
            Ok(())
        };
        check_envelope(&min_points, "min")?;
        check_envelope(&max_points, "max")?;
        let min_curve = PiecewiseCurve::new(min_points, rate)?;
        let max_curve = PiecewiseCurve::new(max_points, rate)?;
        // Pointwise ordering at the union of breakpoints (exact for
        // piecewise-linear curves: between breakpoints both are linear and
        // agree at endpoints, so a crossing would show at a breakpoint of
        // the union or be preserved on the whole segment).
        let mut ts: Vec<Time> = min_curve
            .points()
            .iter()
            .chain(max_curve.points())
            .map(|&(t, _)| t)
            .collect();
        ts.sort_unstable();
        ts.dedup();
        for &t in &ts {
            if min_curve.eval(t) > max_curve.eval(t) {
                return Err(format!("min envelope exceeds max envelope at t = {t}"));
            }
        }
        Ok(EmpiricalSupply {
            min_curve,
            max_curve,
            period,
            rate,
        })
    }

    /// The repetition period of the measurement.
    #[inline]
    pub fn period(&self) -> Time {
        self.period
    }

    /// Evaluates one envelope with periodic extension.
    fn eval_periodic(&self, curve: &PiecewiseCurve, t: Time) -> Cycles {
        if t <= Time::ZERO {
            return Cycles::ZERO;
        }
        let k = (t / self.period).floor();
        let rem = t - self.period * Rational::from_integer(k);
        curve.eval(rem) + self.rate * self.period * Rational::from_integer(k)
    }

    /// Least `t` with the periodic extension of `curve` reaching `c`.
    fn inverse_periodic(&self, curve: &PiecewiseCurve, c: Cycles) -> Time {
        if !c.is_positive() {
            return Time::ZERO;
        }
        let per_period = self.rate * self.period;
        let k = (c / per_period).ceil() - 1;
        let base = per_period * Rational::from_integer(k);
        let rem = c - base;
        // rem ∈ (0, per_period]; the within-period envelope reaches it.
        let t = curve
            .inverse(rem)
            .expect("envelope reaches α·P within one period");
        self.period * Rational::from_integer(k) + t
    }
}

impl SupplyCurve for EmpiricalSupply {
    fn zmin(&self, t: Time) -> Cycles {
        self.eval_periodic(&self.min_curve, t)
    }

    fn zmax(&self, t: Time) -> Cycles {
        self.eval_periodic(&self.max_curve, t)
    }

    fn rate(&self) -> Rational {
        self.rate
    }

    fn time_to_supply_min(&self, c: Cycles) -> Time {
        self.inverse_periodic(&self.min_curve, c)
    }

    fn time_to_supply_max(&self, c: Cycles) -> Time {
        self.inverse_periodic(&self.max_curve, c)
    }

    fn breakpoints(&self, horizon: Time) -> Vec<Time> {
        let mut points = Vec::new();
        let mut base = Time::ZERO;
        while base <= horizon {
            for &(t, _) in self
                .min_curve
                .points()
                .iter()
                .chain(self.max_curve.points())
            {
                let x = base + t;
                if x <= horizon {
                    points.push(x);
                }
            }
            base += self.period;
        }
        points.sort_unstable();
        points.dedup();
        points
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{check_curve_invariants, extract_linear_bounds, PeriodicServer};
    use hsched_numeric::rat;

    /// A measured Q=2/P=5 server: worst window sees nothing for 3 then 2 at
    /// speed 1 (a pessimistic but valid measurement of the real blackout 6
    /// folded into one period would not close; we measure the *repeating*
    /// part: gap 3, then slope 1 for 2).
    fn measured() -> EmpiricalSupply {
        EmpiricalSupply::new(
            vec![
                (rat(0, 1), rat(0, 1)),
                (rat(3, 1), rat(0, 1)),
                (rat(5, 1), rat(2, 1)),
            ],
            vec![
                (rat(0, 1), rat(0, 1)),
                (rat(2, 1), rat(2, 1)),
                (rat(5, 1), rat(2, 1)),
            ],
            rat(5, 1),
            rat(2, 5),
        )
        .unwrap()
    }

    #[test]
    fn validation() {
        // Envelope not reaching α·P per period drifts.
        let err = EmpiricalSupply::new(
            vec![(rat(0, 1), rat(0, 1)), (rat(5, 1), rat(1, 1))],
            vec![(rat(0, 1), rat(0, 1)), (rat(5, 1), rat(2, 1))],
            rat(5, 1),
            rat(2, 5),
        )
        .unwrap_err();
        assert!(err.contains("drift"));
        // Min above max rejected.
        let err = EmpiricalSupply::new(
            vec![
                (rat(0, 1), rat(0, 1)),
                (rat(1, 1), rat(2, 1)),
                (rat(5, 1), rat(2, 1)),
            ],
            vec![
                (rat(0, 1), rat(0, 1)),
                (rat(4, 1), rat(0, 1)),
                (rat(5, 1), rat(2, 1)),
            ],
            rat(5, 1),
            rat(2, 5),
        )
        .unwrap_err();
        assert!(err.contains("exceeds max"));
        // Must start at origin and end at the period.
        assert!(EmpiricalSupply::new(
            vec![(rat(1, 1), rat(0, 1)), (rat(5, 1), rat(2, 1))],
            vec![(rat(0, 1), rat(0, 1)), (rat(5, 1), rat(2, 1))],
            rat(5, 1),
            rat(2, 5),
        )
        .is_err());
    }

    #[test]
    fn periodic_extension() {
        let m = measured();
        assert_eq!(m.zmin(rat(5, 1)), rat(2, 1));
        assert_eq!(m.zmin(rat(10, 1)), rat(4, 1));
        assert_eq!(m.zmin(rat(13, 1)), rat(4, 1)); // 2 periods + gap
        assert_eq!(m.zmin(rat(14, 1)), rat(5, 1));
        assert_eq!(m.zmax(rat(7, 1)), rat(4, 1)); // 2 + next burst
        assert_eq!(m.zmax(rat(12, 1)), rat(6, 1));
    }

    #[test]
    fn inverses() {
        let m = measured();
        // 3 cycles worst case: one period (2 cycles) + gap 3 + 1 = 9.
        assert_eq!(m.time_to_supply_min(rat(3, 1)), rat(9, 1));
        assert_eq!(m.zmin(rat(9, 1)), rat(3, 1));
        // Best case 3 cycles: 2 immediately, 1 more at 5+1.
        assert_eq!(m.time_to_supply_max(rat(3, 1)), rat(6, 1));
    }

    #[test]
    fn curve_invariants_hold() {
        check_curve_invariants(&measured(), rat(30, 1));
    }

    #[test]
    fn linear_extraction_works_on_measurements() {
        let m = measured();
        let lb = extract_linear_bounds(&m, rat(20, 1));
        assert_eq!(lb.model.alpha(), rat(2, 5));
        // Worst gap 3, fluid catch-up at period end: Δ = 3·(P/(P−…)) — check
        // by bracketing instead of a closed form.
        for k in 0..=80 {
            let t = rat(k, 4);
            assert!(lb.model.zmin(t) <= m.zmin(t));
            assert!(lb.model.zmax(t) >= m.zmax(t));
        }
    }

    #[test]
    fn tighter_than_worst_case_server_model() {
        // The measurement (gap ≤ 3) is tighter than the a-priori server
        // envelope (blackout 6): the measured zmin dominates.
        let server = PeriodicServer::new(rat(2, 1), rat(5, 1)).unwrap();
        let m = measured();
        for k in 0..=60 {
            let t = rat(k, 2);
            assert!(
                m.zmin(t) >= server.zmin(t),
                "measurement below server floor at {t}"
            );
        }
    }
}
