//! The linear (α, Δ, β) supply model — the paper's abstraction of a platform.

use crate::SupplyCurve;
use hsched_numeric::{Cycles, Rational, Time};

/// The bounded-delay linear supply model `(α, Δ, β)`:
///
/// * `Zmin(t) = max(0, α·(t − Δ))` — the platform guarantees rate `α` after
///   an initial service delay of at most `Δ`;
/// * `Zmax(t) = α·(t + β)` — it can run ahead of the fluid rate by a burst
///   worth `β` time units of service.
///
/// Setting `α = 1, Δ = 0, β = 0` recovers a dedicated unit-speed processor,
/// as the paper notes at the end of §2.3.
///
/// Note that `Zmax` here is the *abstraction's* upper line: it deliberately
/// exceeds the physical `Zmax(t) ≤ t` cap for small `t`, exactly as the
/// paper's best-case formula `max(0, Cbest/α − β)` does. Wrap curves that
/// need the physical cap in a mechanism-specific type instead
/// ([`crate::PeriodicServer`], [`crate::TdmaSupply`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct BoundedDelay {
    alpha: Rational,
    delta: Time,
    beta: Time,
}

impl BoundedDelay {
    /// Creates the model; requires `0 < α ≤ 1`, `Δ ≥ 0`, `β ≥ 0`.
    pub fn new(alpha: Rational, delta: Time, beta: Time) -> Result<BoundedDelay, String> {
        if !alpha.is_positive() || alpha > Rational::ONE {
            return Err(format!("platform rate must satisfy 0 < α ≤ 1, got {alpha}"));
        }
        if delta.is_negative() {
            return Err(format!("platform delay must be ≥ 0, got {delta}"));
        }
        if beta.is_negative() {
            return Err(format!("platform burstiness must be ≥ 0, got {beta}"));
        }
        Ok(BoundedDelay { alpha, delta, beta })
    }

    /// A dedicated unit-speed processor: `(1, 0, 0)`.
    pub fn dedicated() -> BoundedDelay {
        BoundedDelay {
            alpha: Rational::ONE,
            delta: Time::ZERO,
            beta: Time::ZERO,
        }
    }

    /// Rate α.
    #[inline]
    pub fn alpha(&self) -> Rational {
        self.alpha
    }

    /// Delay Δ.
    #[inline]
    pub fn delay(&self) -> Time {
        self.delta
    }

    /// Burstiness β (time units; the cycles value of Definition 5 is `α·β`).
    #[inline]
    pub fn burstiness(&self) -> Time {
        self.beta
    }

    /// The burstiness expressed in cycles, as in Definition 5 of the paper.
    #[inline]
    pub fn burstiness_cycles(&self) -> Cycles {
        self.alpha * self.beta
    }

    /// Worst-case time to serve `c` cycles *from the start of a busy
    /// interval*: `Δ + c/α` (0 for `c = 0`). This is the `Δ + …/α` shape of
    /// Eq. (13).
    #[inline]
    pub fn worst_case_service(&self, c: Cycles) -> Time {
        if !c.is_positive() {
            return Time::ZERO;
        }
        self.delta + c / self.alpha
    }

    /// Best-case time to serve `c` cycles: `max(0, c/α − β)` — the §3.2
    /// best-case term.
    #[inline]
    pub fn best_case_service(&self, c: Cycles) -> Time {
        (c / self.alpha - self.beta).max(Time::ZERO)
    }
}

impl SupplyCurve for BoundedDelay {
    fn zmin(&self, t: Time) -> Cycles {
        (self.alpha * (t - self.delta)).max(Cycles::ZERO)
    }

    fn zmax(&self, t: Time) -> Cycles {
        if t < Time::ZERO {
            return Cycles::ZERO;
        }
        self.alpha * (t + self.beta)
    }

    fn rate(&self) -> Rational {
        self.alpha
    }

    fn time_to_supply_min(&self, c: Cycles) -> Time {
        self.worst_case_service(c)
    }

    fn time_to_supply_max(&self, c: Cycles) -> Time {
        if !c.is_positive() {
            return Time::ZERO;
        }
        self.best_case_service(c)
    }
}

impl std::fmt::Display for BoundedDelay {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "(α={}, Δ={}, β={})", self.alpha, self.delta, self.beta)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::check_curve_invariants;
    use hsched_numeric::rat;

    fn pi3() -> BoundedDelay {
        // Π3 of the paper's example: (0.2, 2, 1).
        BoundedDelay::new(rat(1, 5), rat(2, 1), rat(1, 1)).unwrap()
    }

    #[test]
    fn construction_validation() {
        assert!(BoundedDelay::new(rat(1, 2), Time::ZERO, Time::ZERO).is_ok());
        assert!(BoundedDelay::new(Rational::ZERO, Time::ZERO, Time::ZERO).is_err());
        assert!(BoundedDelay::new(rat(3, 2), Time::ZERO, Time::ZERO).is_err());
        assert!(BoundedDelay::new(rat(1, 2), rat(-1, 1), Time::ZERO).is_err());
        assert!(BoundedDelay::new(rat(1, 2), Time::ZERO, rat(-1, 1)).is_err());
        assert!(BoundedDelay::new(Rational::ONE, Time::ZERO, Time::ZERO).is_ok());
    }

    #[test]
    fn dedicated_processor_is_identity() {
        let cpu = BoundedDelay::dedicated();
        for k in 0..20 {
            let t = rat(k, 2);
            assert_eq!(cpu.zmin(t), t);
            assert_eq!(cpu.zmax(t), t);
        }
        assert_eq!(cpu.worst_case_service(rat(7, 2)), rat(7, 2));
        assert_eq!(cpu.best_case_service(rat(7, 2)), rat(7, 2));
    }

    #[test]
    fn zmin_zero_until_delay() {
        let p = pi3();
        assert_eq!(p.zmin(Time::ZERO), Cycles::ZERO);
        assert_eq!(p.zmin(rat(2, 1)), Cycles::ZERO);
        assert_eq!(p.zmin(rat(1, 1)), Cycles::ZERO);
        // After Δ the slope is α: zmin(7) = 0.2·5 = 1.
        assert_eq!(p.zmin(rat(7, 1)), Rational::ONE);
    }

    #[test]
    fn zmax_starts_with_burst() {
        let p = pi3();
        // zmax(0) = α·β = 0.2 cycles.
        assert_eq!(p.zmax(Time::ZERO), rat(1, 5));
        assert_eq!(p.zmax(rat(4, 1)), rat(1, 1));
        assert_eq!(p.burstiness_cycles(), rat(1, 5));
    }

    #[test]
    fn worst_case_service_matches_eq13_shape() {
        let p = pi3();
        // Serving C = 1 cycle: Δ + C/α = 2 + 5 = 7 (used by τ1,1's analysis).
        assert_eq!(p.worst_case_service(rat(1, 1)), rat(7, 1));
        assert_eq!(p.worst_case_service(Cycles::ZERO), Time::ZERO);
        // zmin at the returned instant indeed covers the demand.
        assert_eq!(p.zmin(rat(7, 1)), rat(1, 1));
    }

    #[test]
    fn best_case_service_matches_paper_phi_min() {
        // φmin of τ1,2 in Table 1: best-case of τ1,1 on Π3 = 0.8/0.2 − 1 = 3.
        let p = pi3();
        assert_eq!(p.best_case_service(rat(4, 5)), rat(3, 1));
        // Saturation at zero for small demands on bursty platforms.
        let p1 = BoundedDelay::new(rat(2, 5), rat(1, 1), rat(1, 1)).unwrap();
        assert_eq!(p1.best_case_service(rat(1, 4)), Time::ZERO); // 0.25/0.4 − 1 < 0
        assert_eq!(p1.best_case_service(rat(4, 5)), rat(1, 1)); // 0.8/0.4 − 1 = 1
    }

    #[test]
    fn curve_invariants() {
        check_curve_invariants(&pi3(), rat(60, 1));
        check_curve_invariants(&BoundedDelay::dedicated(), rat(20, 1));
        check_curve_invariants(
            &BoundedDelay::new(rat(2, 5), rat(1, 1), rat(1, 1)).unwrap(),
            rat(60, 1),
        );
    }

    #[test]
    fn display() {
        assert_eq!(pi3().to_string(), "(α=0.2, Δ=2, β=1)");
    }
}
