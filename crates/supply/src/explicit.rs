//! Arbitrary piecewise-linear monotone curves: the building block for custom
//! supply models (measured traces, composed reservations).

use hsched_numeric::{Cycles, Rational, Time};

/// A non-decreasing piecewise-linear function through given breakpoints,
/// continuing after the last breakpoint with a configurable tail slope.
///
/// The first breakpoint must be `(0, 0)` for supply-function use, but the
/// type itself only requires monotonicity in both coordinates.
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct PiecewiseCurve {
    /// Breakpoints `(t, value)`, strictly increasing in `t`,
    /// non-decreasing in `value`.
    points: Vec<(Time, Cycles)>,
    /// Slope after the final breakpoint.
    tail_slope: Rational,
}

impl PiecewiseCurve {
    /// Builds a curve from breakpoints and the slope past the last one.
    pub fn new(
        points: Vec<(Time, Cycles)>,
        tail_slope: Rational,
    ) -> Result<PiecewiseCurve, String> {
        if points.is_empty() {
            return Err("piecewise curve needs at least one breakpoint".into());
        }
        if tail_slope.is_negative() {
            return Err(format!("tail slope must be ≥ 0, got {tail_slope}"));
        }
        for w in points.windows(2) {
            if w[1].0 <= w[0].0 {
                return Err(format!(
                    "breakpoints must strictly increase in t: {} then {}",
                    w[0].0, w[1].0
                ));
            }
            if w[1].1 < w[0].1 {
                return Err(format!(
                    "breakpoint values must be non-decreasing: {} then {}",
                    w[0].1, w[1].1
                ));
            }
        }
        Ok(PiecewiseCurve { points, tail_slope })
    }

    /// The supply-function zero curve: single point `(0,0)`, tail slope α.
    pub fn linear(rate: Rational) -> PiecewiseCurve {
        PiecewiseCurve {
            points: vec![(Time::ZERO, Cycles::ZERO)],
            tail_slope: rate,
        }
    }

    /// Breakpoints of the curve.
    #[inline]
    pub fn points(&self) -> &[(Time, Cycles)] {
        &self.points
    }

    /// Slope after the last breakpoint.
    #[inline]
    pub fn tail_slope(&self) -> Rational {
        self.tail_slope
    }

    /// Evaluates the curve at `t`. Values before the first breakpoint are
    /// clamped to the first value.
    pub fn eval(&self, t: Time) -> Cycles {
        let (t0, v0) = self.points[0];
        if t <= t0 {
            return v0;
        }
        // Binary search for the segment containing t.
        let idx = self.points.partition_point(|&(bt, _)| bt <= t);
        let (lt, lv) = self.points[idx - 1];
        if idx == self.points.len() {
            return lv + self.tail_slope * (t - lt);
        }
        let (rt, rv) = self.points[idx];
        let slope = (rv - lv) / (rt - lt);
        lv + slope * (t - lt)
    }

    /// Least `t` with `eval(t) ≥ c`; `None` if the curve never reaches `c`
    /// (zero tail slope and all breakpoints below `c`).
    pub fn inverse(&self, c: Cycles) -> Option<Time> {
        let (t0, v0) = self.points[0];
        if c <= v0 {
            return Some(t0.min(Time::ZERO).max(Time::ZERO).min(t0));
        }
        for w in self.points.windows(2) {
            let (lt, lv) = w[0];
            let (rt, rv) = w[1];
            if c <= rv {
                if rv == lv {
                    // Flat segment; target reached exactly at its end only
                    // if c == rv, which the next segment start handles; here
                    // c <= rv and c > lv == rv is impossible, so c == rv.
                    return Some(rt);
                }
                let slope = (rv - lv) / (rt - lt);
                return Some(lt + (c - lv) / slope);
            }
        }
        let (lt, lv) = *self.points.last().expect("non-empty");
        if self.tail_slope.is_zero() {
            return None;
        }
        Some(lt + (c - lv) / self.tail_slope)
    }

    /// Pointwise minimum with another curve, sampled at the union of
    /// breakpoints (exact when crossings happen at breakpoints; otherwise a
    /// conservative under-approximation refined by the crossing points).
    pub fn pointwise_min(&self, other: &PiecewiseCurve) -> PiecewiseCurve {
        let mut ts: Vec<Time> = self
            .points
            .iter()
            .chain(other.points.iter())
            .map(|&(t, _)| t)
            .collect();
        // Add segment-crossing instants so the min is exact.
        ts.extend(self.crossings(other));
        // The tails are straight lines; if they cross past the last
        // breakpoint, that crossing is a kink of the min too.
        let tmax = ts.iter().copied().max().unwrap_or(Time::ZERO);
        let d0 = self.eval(tmax) - other.eval(tmax);
        let dslope = self.tail_slope - other.tail_slope;
        if !d0.is_zero() && !dslope.is_zero() {
            let t_star = tmax - d0 / dslope;
            if t_star > tmax {
                ts.push(t_star);
            }
        }
        ts.sort_unstable();
        ts.dedup();
        let pts = ts
            .into_iter()
            .map(|t| (t, self.eval(t).min(other.eval(t))))
            .collect();
        PiecewiseCurve {
            points: pts,
            tail_slope: self.tail_slope.min(other.tail_slope),
        }
    }

    /// Instants where the two curves cross (within the union breakpoint span).
    fn crossings(&self, other: &PiecewiseCurve) -> Vec<Time> {
        let mut ts: Vec<Time> = self
            .points
            .iter()
            .chain(other.points.iter())
            .map(|&(t, _)| t)
            .collect();
        ts.sort_unstable();
        ts.dedup();
        let mut out = Vec::new();
        for w in ts.windows(2) {
            let (a, b) = (w[0], w[1]);
            let fa = self.eval(a) - other.eval(a);
            let fb = self.eval(b) - other.eval(b);
            if (fa.is_positive() && fb.is_negative()) || (fa.is_negative() && fb.is_positive()) {
                // Linear on [a, b] for both: solve exactly.
                let num = fa;
                let den = fa - fb;
                let t = a + (b - a) * (num / den);
                out.push(t);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hsched_numeric::rat;

    fn staircase() -> PiecewiseCurve {
        // (0,0) → (2,2) slope 1, flat to 5, then tail slope 0.4.
        PiecewiseCurve::new(
            vec![
                (rat(0, 1), rat(0, 1)),
                (rat(2, 1), rat(2, 1)),
                (rat(5, 1), rat(2, 1)),
            ],
            rat(2, 5),
        )
        .unwrap()
    }

    #[test]
    fn validation() {
        assert!(PiecewiseCurve::new(vec![], rat(1, 1)).is_err());
        assert!(PiecewiseCurve::new(
            vec![(rat(0, 1), rat(0, 1)), (rat(0, 1), rat(1, 1))],
            rat(1, 1)
        )
        .is_err());
        assert!(PiecewiseCurve::new(
            vec![(rat(0, 1), rat(1, 1)), (rat(1, 1), rat(0, 1))],
            rat(1, 1)
        )
        .is_err());
        assert!(PiecewiseCurve::new(vec![(rat(0, 1), rat(0, 1))], rat(-1, 1)).is_err());
    }

    #[test]
    fn eval_segments_and_tail() {
        let c = staircase();
        assert_eq!(c.eval(rat(0, 1)), rat(0, 1));
        assert_eq!(c.eval(rat(1, 1)), rat(1, 1));
        assert_eq!(c.eval(rat(2, 1)), rat(2, 1));
        assert_eq!(c.eval(rat(3, 1)), rat(2, 1));
        assert_eq!(c.eval(rat(5, 1)), rat(2, 1));
        assert_eq!(c.eval(rat(10, 1)), rat(4, 1)); // 2 + 0.4·5
        assert_eq!(c.eval(rat(-3, 1)), rat(0, 1)); // clamped
    }

    #[test]
    fn inverse_hits_first_crossing() {
        let c = staircase();
        assert_eq!(c.inverse(rat(0, 1)), Some(rat(0, 1)));
        assert_eq!(c.inverse(rat(1, 1)), Some(rat(1, 1)));
        assert_eq!(c.inverse(rat(2, 1)), Some(rat(2, 1)));
        assert_eq!(c.inverse(rat(3, 1)), Some(rat(15, 2))); // 5 + 1/0.4
        let flat = PiecewiseCurve::new(
            vec![(rat(0, 1), rat(0, 1)), (rat(1, 1), rat(1, 1))],
            Rational::ZERO,
        )
        .unwrap();
        assert_eq!(flat.inverse(rat(2, 1)), None);
    }

    #[test]
    fn inverse_eval_galois() {
        let c = staircase();
        for k in 0..=20 {
            let v = rat(k, 4);
            if let Some(t) = c.inverse(v) {
                assert!(c.eval(t) >= v);
                // No earlier instant reaches v (check slightly before).
                if t.is_positive() {
                    let eps = rat(1, 1000);
                    assert!(c.eval(t - eps) < v, "inverse not minimal");
                }
            }
        }
    }

    #[test]
    fn linear_constructor() {
        let c = PiecewiseCurve::linear(rat(1, 2));
        assert_eq!(c.eval(rat(4, 1)), rat(2, 1));
        assert_eq!(c.inverse(rat(2, 1)), Some(rat(4, 1)));
    }

    #[test]
    fn pointwise_min_exact_at_crossings() {
        let a = PiecewiseCurve::linear(rat(1, 1));
        let b = PiecewiseCurve::new(
            vec![(rat(0, 1), rat(3, 1))], // constant 3 then slope 0.25
            rat(1, 4),
        )
        .unwrap();
        let m = a.pointwise_min(&b);
        // min(t, 3 + 0.25t): crossing at t = 4.
        assert_eq!(m.eval(rat(2, 1)), rat(2, 1));
        assert_eq!(m.eval(rat(4, 1)), rat(4, 1));
        assert_eq!(m.eval(rat(8, 1)), rat(5, 1));
    }
}
