//! Extraction of the (α, Δ, β) linear abstraction from an arbitrary supply
//! curve (Definitions 3–5 of the paper, computed exactly at breakpoints).

use crate::{BoundedDelay, SupplyCurve};
use hsched_numeric::Time;

/// Result of [`extract_linear_bounds`]: the linear model plus the instants
/// where each bound is tight (useful for plotting Figure 3).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LinearBounds {
    /// The extracted `(α, Δ, β)` model.
    pub model: BoundedDelay,
    /// An instant at which `Zmin(t) = α(t − Δ)` (the lower bound touches).
    pub delay_witness: Time,
    /// An instant at which `Zmax(t) = α(t + β)` (the upper bound touches).
    pub burst_witness: Time,
}

/// Computes the tightest linear bounds of Definitions 4–5 for a curve whose
/// slope changes only at its reported breakpoints (true for every curve in
/// this crate).
///
/// `horizon` must span enough of the curve that the worst alignment repeats
/// — for a periodic mechanism, the initial blackout plus two frames is
/// sufficient; passing more is harmless.
///
/// Δ is `max over t of (t − Zmin(t)/α)` and β is
/// `max over t of (Zmax(t)/α − t)` (time units; see the crate docs on units).
/// Both expressions are linear between slope changes, so evaluating at
/// breakpoints is exact.
pub fn extract_linear_bounds<S: SupplyCurve>(curve: &S, horizon: Time) -> LinearBounds {
    let alpha = curve.rate();
    assert!(
        alpha.is_positive(),
        "cannot extract linear bounds of a zero-rate curve"
    );
    let mut points = curve.breakpoints(horizon);
    if points.is_empty() {
        points.push(Time::ZERO);
        points.push(horizon);
    }
    if *points.last().expect("non-empty") < horizon {
        points.push(horizon);
    }

    let mut delta = Time::ZERO;
    let mut delay_witness = Time::ZERO;
    let mut beta = Time::ZERO;
    let mut burst_witness = Time::ZERO;
    for &t in &points {
        let d = t - curve.zmin(t) / alpha;
        if d > delta {
            delta = d;
            delay_witness = t;
        }
        let b = curve.zmax(t) / alpha - t;
        if b > beta {
            beta = b;
            burst_witness = t;
        }
    }
    LinearBounds {
        model: BoundedDelay::new(alpha, delta, beta)
            .expect("extracted parameters are non-negative by construction"),
        delay_witness,
        burst_witness,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{PeriodicServer, QuantizedFluid, TdmaSupply};
    use hsched_numeric::rat;

    #[test]
    fn periodic_server_matches_closed_form() {
        let s = PeriodicServer::new(rat(2, 1), rat(5, 1)).unwrap();
        let horizon = s.blackout() + s.period() * rat(3, 1);
        let got = extract_linear_bounds(&s, horizon);
        let expect = s.to_linear();
        assert_eq!(got.model.alpha(), expect.alpha());
        assert_eq!(got.model.delay(), expect.delay());
        assert_eq!(got.model.burstiness(), expect.burstiness());
        // Witnesses: lower bound touches at end of a plateau (d + P = 11),
        // upper at end of the initial double burst (2Q = 4).
        assert_eq!(s.zmin(got.delay_witness), expect.zmin(got.delay_witness));
        assert_eq!(s.zmax(got.burst_witness), expect.zmax(got.burst_witness));
    }

    #[test]
    fn fractional_server_matches_closed_form() {
        let s = PeriodicServer::new(rat(1, 2), rat(7, 2)).unwrap();
        let horizon = s.blackout() + s.period() * rat(3, 1);
        let got = extract_linear_bounds(&s, horizon).model;
        let expect = s.to_linear();
        assert_eq!(got, expect);
    }

    #[test]
    fn tdma_bounds_bracket_curve() {
        let t = TdmaSupply::new(
            rat(10, 1),
            vec![(rat(1, 1), rat(2, 1)), (rat(6, 1), rat(1, 1))],
        )
        .unwrap();
        let horizon = rat(40, 1);
        let lb = extract_linear_bounds(&t, horizon);
        for k in 0..=320 {
            let x = horizon * rat(k, 320);
            assert!(
                lb.model.zmin(x) <= t.zmin(x),
                "lower bound violated at t={x}"
            );
            assert!(
                lb.model.zmax(x) >= t.zmax(x),
                "upper bound violated at t={x}"
            );
        }
        // Tightness: the bounds touch at the witnesses.
        assert_eq!(lb.model.zmin(lb.delay_witness), t.zmin(lb.delay_witness));
        assert_eq!(lb.model.zmax(lb.burst_witness), t.zmax(lb.burst_witness));
    }

    #[test]
    fn already_linear_curve_has_trivial_bounds() {
        let q = QuantizedFluid::new(rat(1, 2), rat(1, 1)).unwrap();
        // QuantizedFluid reports no breakpoints; bounds from endpoints only.
        let lb = extract_linear_bounds(&q, rat(100, 1));
        assert_eq!(lb.model.alpha(), rat(1, 2));
        // Δ = lag/α = 2 at any t past 0 where zmin > 0… the max of
        // t − zmin/α is 2 for t ≥ 2, attained at the horizon sample.
        assert_eq!(lb.model.delay(), rat(2, 1));
    }
}
