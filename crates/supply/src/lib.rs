//! Supply functions for abstract computing platforms (§2.3 of the paper).
//!
//! An *abstract computing platform* Π delivers processor (or network) cycles
//! to the component running on it. Its behaviour over any interval of length
//! `t` is bracketed by two functions (Definitions 1 and 2):
//!
//! * the **minimum supply function** `Zmin(t)` — the least amount of cycles Π
//!   can deliver in any window of length `t`, and
//! * the **maximum supply function** `Zmax(t)` — the most it can deliver.
//!
//! From these the paper abstracts three scalars (Definitions 3–5):
//!
//! * the **rate** `α` — the long-run slope of both curves,
//! * the **delay** `Δ` — the x-intercept of the tightest linear lower bound
//!   `α(t − Δ) ≤ Zmin(t)`, and
//! * the **burstiness** `β` — the tightest linear upper bound on `Zmax`.
//!
//! This crate implements concrete supply curves for the global-scheduler
//! mechanisms the paper cites — periodic/polling servers ([`PeriodicServer`],
//! Figure 3), static time partitioning ([`TdmaSupply`]), and P-fair-like
//! quantized fluid schedulers ([`QuantizedFluid`]) — together with the linear
//! abstraction itself ([`BoundedDelay`]) and arbitrary piecewise-linear
//! curves ([`PiecewiseCurve`]). Every curve knows its exact pseudo-inverse,
//! which is what response-time analysis consumes: *the earliest instant by
//! which a demand of `c` cycles is guaranteed served*.
//!
//! # Units for β
//!
//! Definition 5 of the paper states `Zmax(t) ≥ b + αt`, which puts `b` in
//! *cycles*. The paper's own best-case formula (§3.2) and the worked example
//! (Table 1, column φmin) instead subtract β from a *time* quantity:
//! `max(0, Cbest/α − β)`. The two agree if β is measured in time with
//! `Zmax(t) = α·(t + β)`. We follow the worked example — **β is in time
//! units** throughout this workspace — because that is the only reading that
//! reproduces Table 1. The cycles value of Definition 5 is `α·β`.
//!
//! # Example
//!
//! ```
//! use hsched_numeric::rat;
//! use hsched_supply::{BoundedDelay, PeriodicServer, SupplyCurve};
//!
//! // A server granting 2 cycles every 5: rate 0.4.
//! let server = PeriodicServer::new(rat(2, 1), rat(5, 1)).unwrap();
//! assert_eq!(server.rate(), rat(2, 5));
//!
//! // Its linear abstraction: α = 0.4, Δ = 2(P−Q) = 6, β = 2(P−Q) = 6.
//! let linear: BoundedDelay = server.to_linear();
//! assert_eq!(linear.delay(), rat(6, 1));
//!
//! // The abstraction never promises more than the real mechanism delivers.
//! for k in 0..60 {
//!     let t = rat(k, 4);
//!     assert!(linear.zmin(t) <= server.zmin(t));
//!     assert!(linear.zmax(t) >= server.zmax(t));
//! }
//! ```

mod empirical;
mod explicit;
mod linear;
mod params;
mod periodic;
mod quantized;
mod tdma;

pub use empirical::EmpiricalSupply;
pub use explicit::PiecewiseCurve;
pub use linear::BoundedDelay;
pub use params::{extract_linear_bounds, LinearBounds};
pub use periodic::PeriodicServer;
pub use quantized::QuantizedFluid;
pub use tdma::{TdmaError, TdmaSupply};

use hsched_numeric::{Cycles, Time};

/// A supply curve pair `Zmin`/`Zmax` for an abstract computing platform.
///
/// Implementations must satisfy, for all `t ≥ 0`:
///
/// * `zmin(0) == 0` and `zmin` is non-decreasing;
/// * `zmin(t) <= zmax(t)`;
/// * `time_to_supply_min(c)` is the least `t` with `zmin(t) >= c`
///   (the *latest guaranteed completion* of a demand of `c` cycles);
/// * `time_to_supply_max(c)` is the least `t` with `zmax(t) >= c`
///   (the *earliest possible completion*).
pub trait SupplyCurve {
    /// Minimum cycles delivered in any window of length `t` (Definition 1).
    fn zmin(&self, t: Time) -> Cycles;

    /// Maximum cycles delivered in any window of length `t` (Definition 2).
    fn zmax(&self, t: Time) -> Cycles;

    /// Long-run rate α (Definition 3). All mechanisms modelled here have
    /// `αmin == αmax`, as the paper assumes.
    fn rate(&self) -> hsched_numeric::Rational;

    /// Pseudo-inverse of `zmin`: least `t` such that `zmin(t) >= c`.
    ///
    /// For `c == 0` this is `0`.
    fn time_to_supply_min(&self, c: Cycles) -> Time;

    /// Pseudo-inverse of `zmax`: least `t` such that `zmax(t) >= c`.
    fn time_to_supply_max(&self, c: Cycles) -> Time;

    /// Abscissae at which the curves change slope, up to `horizon`
    /// (used for exact linear-bound extraction). May be empty for curves
    /// that are already linear.
    fn breakpoints(&self, horizon: Time) -> Vec<Time> {
        let _ = horizon;
        Vec::new()
    }
}

#[cfg(test)]
pub(crate) use trait_tests::check_curve_invariants;

#[cfg(test)]
mod trait_tests {
    use super::*;
    use hsched_numeric::rat;

    /// Generic conformance check run against every curve implementation.
    pub(crate) fn check_curve_invariants<S: SupplyCurve>(curve: &S, horizon: Time) {
        let steps = 240;
        let mut prev_min = Cycles::ZERO;
        let mut prev_max = Cycles::ZERO;
        for k in 0..=steps {
            let t = horizon * rat(k, steps);
            let lo = curve.zmin(t);
            let hi = curve.zmax(t);
            assert!(lo >= Cycles::ZERO, "zmin negative at t={t}");
            assert!(lo <= hi, "zmin > zmax at t={t}: {lo} > {hi}");
            assert!(lo >= prev_min, "zmin decreasing at t={t}");
            assert!(hi >= prev_max, "zmax decreasing at t={t}");
            // Inverse consistency: completing zmin(t) cycles needs at most t.
            if lo.is_positive() {
                let back = curve.time_to_supply_min(lo);
                assert!(back <= t, "inverse_zmin({lo}) = {back} > {t}");
                assert!(
                    curve.zmin(back) >= lo,
                    "zmin(inverse_zmin({lo})) < {lo} at t={t}"
                );
            }
            if hi.is_positive() {
                let back = curve.time_to_supply_max(hi);
                assert!(back <= t, "inverse_zmax({hi}) = {back} > {t}");
            }
            prev_min = lo;
            prev_max = hi;
        }
        assert_eq!(curve.zmin(Time::ZERO), Cycles::ZERO);
        assert_eq!(curve.time_to_supply_min(Cycles::ZERO), Time::ZERO);
        assert_eq!(curve.time_to_supply_max(Cycles::ZERO), Time::ZERO);
    }
}
