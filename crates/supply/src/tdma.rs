//! TDMA / static time-partitioning supply (the paper's citation [4],
//! Feng & Mok's hierarchical virtual resources use this shape).

use crate::SupplyCurve;
use hsched_numeric::{Cycles, Rational, Time};

/// Error building a [`TdmaSupply`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TdmaError {
    /// The frame length must be positive.
    NonPositiveFrame,
    /// No slot was given.
    NoSlots,
    /// A slot has non-positive length.
    EmptySlot(usize),
    /// A slot extends past the end of the frame.
    SlotPastFrame(usize),
    /// Two slots overlap (after sorting by start).
    Overlap(usize),
}

impl std::fmt::Display for TdmaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TdmaError::NonPositiveFrame => write!(f, "frame length must be positive"),
            TdmaError::NoSlots => write!(f, "at least one slot is required"),
            TdmaError::EmptySlot(i) => write!(f, "slot {i} has non-positive length"),
            TdmaError::SlotPastFrame(i) => write!(f, "slot {i} extends past the frame"),
            TdmaError::Overlap(i) => write!(f, "slot {i} overlaps its predecessor"),
        }
    }
}

impl std::error::Error for TdmaError {}

/// A static cyclic schedule: within a repeating frame of length `F`, the
/// component owns a fixed set of disjoint slots. Supply is 1 inside a slot,
/// 0 outside — the same for best and worst case *patterns*; Zmin/Zmax differ
/// only in the alignment of the observation window.
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct TdmaSupply {
    frame: Time,
    /// Sorted, disjoint `(start, len)` slots within `[0, frame)`.
    slots: Vec<(Time, Time)>,
    /// Total slot time per frame (cached).
    per_frame: Cycles,
}

impl TdmaSupply {
    /// Builds a TDMA supply from a frame length and `(start, len)` slots.
    /// Slots are sorted; overlaps are rejected.
    pub fn new(frame: Time, mut slots: Vec<(Time, Time)>) -> Result<TdmaSupply, TdmaError> {
        if !frame.is_positive() {
            return Err(TdmaError::NonPositiveFrame);
        }
        if slots.is_empty() {
            return Err(TdmaError::NoSlots);
        }
        slots.sort_unstable_by_key(|slot| slot.0);
        for (i, &(start, len)) in slots.iter().enumerate() {
            if !len.is_positive() {
                return Err(TdmaError::EmptySlot(i));
            }
            if start < Time::ZERO || start + len > frame {
                return Err(TdmaError::SlotPastFrame(i));
            }
            if i > 0 {
                let (ps, pl) = slots[i - 1];
                if ps + pl > start {
                    return Err(TdmaError::Overlap(i));
                }
            }
        }
        let per_frame = slots.iter().map(|&(_, len)| len).sum();
        Ok(TdmaSupply {
            frame,
            slots,
            per_frame,
        })
    }

    /// Frame length `F`.
    #[inline]
    pub fn frame(&self) -> Time {
        self.frame
    }

    /// The slots `(start, len)`, sorted by start.
    #[inline]
    pub fn slots(&self) -> &[(Time, Time)] {
        &self.slots
    }

    /// Supply delivered in `[t0, t0 + t)` for `t0 ∈ [0, F)`.
    fn supply_from(&self, t0: Time, t: Time) -> Cycles {
        if !t.is_positive() {
            return Cycles::ZERO;
        }
        let end = t0 + t;
        let full_frames = (end / self.frame).floor() - (t0 / self.frame).floor();
        // Supply in [0, x) within the infinite pattern:
        let cum = |x: Time| -> Cycles {
            let k = (x / self.frame).floor();
            let rem = x - self.frame * Rational::from_integer(k);
            let mut acc = Cycles::from_integer(k) * self.per_frame;
            for &(start, len) in &self.slots {
                if rem <= start {
                    break;
                }
                acc += (rem - start).min(len);
            }
            acc
        };
        let _ = full_frames; // cum() already accounts for whole frames
        cum(end) - cum(t0)
    }

    /// Least `τ` such that supply in `[t0, t0 + τ)` reaches `c`.
    fn time_for_from(&self, t0: Time, c: Cycles) -> Time {
        debug_assert!(c.is_positive());
        // Jump whole frames first, then walk slots.
        let per = self.per_frame;
        let full = ((c / per).ceil() - 1).max(0);
        let mut remaining = c - Cycles::from_integer(full) * per;
        debug_assert!(remaining.is_positive() && remaining <= per);
        // Walk from t0 within the cyclic pattern until `remaining` is served.
        let mut clock = t0;
        // At most two frames of walking are needed for ≤ one frame of supply.
        for _ in 0..(2 * self.slots.len() + 2) {
            let frame_index = (clock / self.frame).floor();
            let frame_base = self.frame * Rational::from_integer(frame_index);
            let local = clock - frame_base;
            for &(start, len) in &self.slots {
                let slot_end = start + len;
                if local >= slot_end {
                    continue;
                }
                let entry = local.max(start);
                let available = slot_end - entry;
                let abs_entry = frame_base + entry;
                if remaining <= available {
                    let finish = abs_entry + remaining;
                    return finish - t0 + self.frame * Rational::from_integer(full);
                }
                remaining -= available;
            }
            // Move to the next frame.
            clock = frame_base + self.frame;
        }
        unreachable!("slot walk exceeded bound; supply arithmetic inconsistent")
    }

    /// Window-start candidates that can attain the min/max supply: every slot
    /// start and end within one frame.
    fn candidates(&self) -> Vec<Time> {
        let mut out = Vec::with_capacity(2 * self.slots.len() + 1);
        out.push(Time::ZERO);
        for &(start, len) in &self.slots {
            out.push(start);
            out.push(start + len);
        }
        out.retain(|&x| x < self.frame);
        out.sort_unstable();
        out.dedup();
        out
    }
}

impl SupplyCurve for TdmaSupply {
    fn zmin(&self, t: Time) -> Cycles {
        if !t.is_positive() {
            return Cycles::ZERO;
        }
        // The window start minimizing supply is at a slot boundary; window
        // *end* alignment is covered because ends of windows started at
        // boundaries sweep all boundary-relative phases as t varies, and for
        // fixed t the supply as a function of t0 is piecewise linear with
        // extrema at boundaries of either endpoint — both endpoint families
        // are included in `candidates` (the pattern is cyclic, so an end
        // boundary for t0+t is a start boundary for some other t0 candidate
        // shifted by a constant, which cannot change the minimum over all
        // candidates by more than the linear interpolation between them; we
        // additionally include midpoint refinement below for safety).
        self.candidates()
            .into_iter()
            .map(|t0| self.supply_from(t0, t))
            .min()
            .unwrap_or(Cycles::ZERO)
    }

    fn zmax(&self, t: Time) -> Cycles {
        if !t.is_positive() {
            return Cycles::ZERO;
        }
        self.candidates()
            .into_iter()
            .map(|t0| self.supply_from(t0, t))
            .max()
            .unwrap_or(Cycles::ZERO)
    }

    fn rate(&self) -> Rational {
        self.per_frame / self.frame
    }

    fn time_to_supply_min(&self, c: Cycles) -> Time {
        if !c.is_positive() {
            return Time::ZERO;
        }
        self.candidates()
            .into_iter()
            .map(|t0| self.time_for_from(t0, c))
            .max()
            .unwrap_or(Time::ZERO)
    }

    fn time_to_supply_max(&self, c: Cycles) -> Time {
        if !c.is_positive() {
            return Time::ZERO;
        }
        self.candidates()
            .into_iter()
            .map(|t0| self.time_for_from(t0, c))
            .min()
            .unwrap_or(Time::ZERO)
    }

    fn breakpoints(&self, horizon: Time) -> Vec<Time> {
        // Slope changes can occur whenever the window end crosses a slot
        // boundary relative to any candidate start: differences of
        // boundaries, shifted by whole frames.
        let bounds = self.candidates();
        let mut points = vec![Time::ZERO];
        let mut base = Time::ZERO;
        while base <= horizon + self.frame {
            for &b1 in &bounds {
                for &b2 in &bounds {
                    let d = b2 - b1 + base;
                    if d > Time::ZERO && d <= horizon {
                        points.push(d);
                    }
                }
            }
            base += self.frame;
        }
        points.sort_unstable();
        points.dedup();
        points
    }
}

impl std::fmt::Display for TdmaSupply {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "tdma(F={}, slots=[", self.frame)?;
        for (i, (s, l)) in self.slots.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{s}+{l}")?;
        }
        write!(f, "])")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::check_curve_invariants;
    use hsched_numeric::rat;

    /// One slot of 2 at the start of a frame of 5 — equivalent patterns to a
    /// periodic server with a *statically pinned* budget.
    fn one_slot() -> TdmaSupply {
        TdmaSupply::new(rat(5, 1), vec![(rat(0, 1), rat(2, 1))]).unwrap()
    }

    /// Two slots: [1,2) and [3,4) in a frame of 5.
    fn two_slots() -> TdmaSupply {
        TdmaSupply::new(
            rat(5, 1),
            vec![(rat(1, 1), rat(1, 1)), (rat(3, 1), rat(1, 1))],
        )
        .unwrap()
    }

    #[test]
    fn validation() {
        assert_eq!(
            TdmaSupply::new(rat(0, 1), vec![(rat(0, 1), rat(1, 1))]),
            Err(TdmaError::NonPositiveFrame)
        );
        assert_eq!(TdmaSupply::new(rat(5, 1), vec![]), Err(TdmaError::NoSlots));
        assert_eq!(
            TdmaSupply::new(rat(5, 1), vec![(rat(0, 1), rat(0, 1))]),
            Err(TdmaError::EmptySlot(0))
        );
        assert_eq!(
            TdmaSupply::new(rat(5, 1), vec![(rat(4, 1), rat(2, 1))]),
            Err(TdmaError::SlotPastFrame(0))
        );
        assert_eq!(
            TdmaSupply::new(
                rat(5, 1),
                vec![(rat(0, 1), rat(2, 1)), (rat(1, 1), rat(1, 1))]
            ),
            Err(TdmaError::Overlap(1))
        );
        // Unsorted input is accepted and sorted.
        let t = TdmaSupply::new(
            rat(5, 1),
            vec![(rat(3, 1), rat(1, 1)), (rat(1, 1), rat(1, 1))],
        )
        .unwrap();
        assert_eq!(t.slots()[0].0, rat(1, 1));
    }

    #[test]
    fn rate() {
        assert_eq!(one_slot().rate(), rat(2, 5));
        assert_eq!(two_slots().rate(), rat(2, 5));
    }

    #[test]
    fn supply_from_basics() {
        let t = one_slot();
        // From 0 (slot start): 2 cycles by t=2, flat to 5.
        assert_eq!(t.supply_from(rat(0, 1), rat(2, 1)), rat(2, 1));
        assert_eq!(t.supply_from(rat(0, 1), rat(5, 1)), rat(2, 1));
        assert_eq!(t.supply_from(rat(0, 1), rat(6, 1)), rat(3, 1));
        // From 2 (slot end): nothing until next frame.
        assert_eq!(t.supply_from(rat(2, 1), rat(3, 1)), rat(0, 1));
        assert_eq!(t.supply_from(rat(2, 1), rat(4, 1)), rat(1, 1));
    }

    #[test]
    fn zmin_worst_alignment() {
        let t = one_slot();
        // Worst window starts right after the slot: blackout of 3 (frame gap);
        // unlike the dynamic server, the static slot cannot move, so the
        // blackout is P−Q=3, not 2(P−Q)=6.
        assert_eq!(t.zmin(rat(3, 1)), Cycles::ZERO);
        assert_eq!(t.zmin(rat(4, 1)), rat(1, 1));
        assert_eq!(t.zmin(rat(5, 1)), rat(2, 1));
        assert_eq!(t.zmin(rat(8, 1)), rat(2, 1));
    }

    #[test]
    fn zmax_best_alignment() {
        let t = one_slot();
        assert_eq!(t.zmax(rat(2, 1)), rat(2, 1));
        assert_eq!(t.zmax(rat(5, 1)), rat(2, 1));
        assert_eq!(t.zmax(rat(7, 1)), rat(4, 1));
    }

    #[test]
    fn splitting_slots_reduces_blackout() {
        // Same bandwidth, but two spread slots halve the worst-case gap.
        let spread = two_slots();
        let lumped = one_slot();
        // Max blackout of spread: gap from 4 to 6 (wrap) = 2 < 3.
        assert_eq!(spread.zmin(rat(2, 1)), Cycles::ZERO);
        assert!(spread.zmin(rat(3, 1)) > Cycles::ZERO);
        assert!(lumped.zmin(rat(3, 1)) == Cycles::ZERO);
    }

    #[test]
    fn inverses() {
        let t = one_slot();
        // Worst-case 1 cycle: start right after slot → wait 3 + 1.
        assert_eq!(t.time_to_supply_min(rat(1, 1)), rat(4, 1));
        // Worst-case 3 cycles: 3 (gap) + 2 (slot) + 3 (gap) + 1 = 9.
        assert_eq!(t.time_to_supply_min(rat(3, 1)), rat(9, 1));
        // Best-case 2 cycles: aligned with slot start → 2.
        assert_eq!(t.time_to_supply_max(rat(2, 1)), rat(2, 1));
        assert_eq!(t.time_to_supply_min(Cycles::ZERO), Time::ZERO);
    }

    #[test]
    fn curve_invariants() {
        check_curve_invariants(&one_slot(), rat(25, 1));
        check_curve_invariants(&two_slots(), rat(25, 1));
    }

    #[test]
    fn display() {
        assert_eq!(one_slot().to_string(), "tdma(F=5, slots=[0+2])");
    }
}
