//! Validator findings: everything the checker can hold against an
//! execution, each carrying the replayable schedule that produced it.

use std::fmt;

/// One validator finding from an explored execution.
///
/// Every variant carries the schedule string of the execution that
/// produced it; feeding that string to [`crate::replay`] reproduces the
/// exact interleaving (and therefore the exact report) deterministically.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Report {
    /// A lock acquisition that inverts the documented partial order: the
    /// thread already held a lock ranked *after* the one it is acquiring,
    /// closing a cycle in the wait-for graph that the order exists to
    /// forbid. Both lock classes are named.
    LockOrder {
        /// Model thread id of the offender.
        thread: usize,
        /// Display form of the class being acquired (name + rank).
        acquired: String,
        /// Display form of the already-held class that outranks it.
        held: String,
        /// Replayable schedule of the offending execution.
        schedule: String,
    },
    /// A condition-variable wait entered while holding a lock other than
    /// the mutex being waited on — a sleeping thread would block every
    /// other thread's acquisition path.
    CondvarHold {
        /// Model thread id of the offender.
        thread: usize,
        /// Class of the mutex released by the wait.
        waited: String,
        /// Classes of the *other* locks still held across the sleep.
        also_held: Vec<String>,
        /// Replayable schedule of the offending execution.
        schedule: String,
    },
    /// A data race on an atomic cell: the load observed a store that is
    /// neither happens-before ordered with it (via lock or spawn/join
    /// edges) nor synchronized by a Release-store/Acquire-load pair.
    /// Execution itself is sequentially consistent, so this flags any
    /// ordering *weakened below the documented contract* rather than
    /// simulating reordering.
    Race {
        /// Name of the atomic cell (as given to the shim constructor).
        cell: String,
        /// Thread that performed the unsynchronized store.
        writer: usize,
        /// Memory ordering the store used.
        writer_ord: String,
        /// Thread whose load observed it without synchronization.
        reader: usize,
        /// Memory ordering the load used.
        reader_ord: String,
        /// Replayable schedule of the offending execution.
        schedule: String,
    },
    /// No thread is runnable but some are blocked — a deadlock or a lost
    /// wakeup (a `notify_one` that fired before the waiter slept is gone
    /// forever, exactly like the real primitive).
    Deadlock {
        /// One human-readable line per blocked thread ("thread 1 blocked
        /// on lock `core`").
        blocked: Vec<String>,
        /// Replayable schedule of the offending execution.
        schedule: String,
    },
    /// A model thread panicked (an assertion inside the code under test,
    /// not a checker abort).
    Panic {
        /// Model thread id that panicked.
        thread: usize,
        /// The panic payload, stringified.
        message: String,
        /// Replayable schedule of the offending execution.
        schedule: String,
    },
}

impl Report {
    /// The replayable schedule string of the execution that produced this
    /// finding.
    pub fn schedule(&self) -> &str {
        match self {
            Report::LockOrder { schedule, .. }
            | Report::CondvarHold { schedule, .. }
            | Report::Race { schedule, .. }
            | Report::Deadlock { schedule, .. }
            | Report::Panic { schedule, .. } => schedule,
        }
    }
}

impl fmt::Display for Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Report::LockOrder {
                thread,
                acquired,
                held,
                schedule,
            } => write!(
                f,
                "lock-order cycle: thread {thread} acquires {acquired} while holding {held}; \
                 the documented order requires {acquired} before {held} [schedule {schedule}]"
            ),
            Report::CondvarHold {
                thread,
                waited,
                also_held,
                schedule,
            } => write!(
                f,
                "condvar wait on {waited} by thread {thread} while still holding [{}] \
                 [schedule {schedule}]",
                also_held.join(", ")
            ),
            Report::Race {
                cell,
                writer,
                writer_ord,
                reader,
                reader_ord,
                schedule,
            } => write!(
                f,
                "data race on `{cell}`: thread {reader} load ({reader_ord}) observes thread \
                 {writer} store ({writer_ord}) with no happens-before edge and no \
                 release/acquire pair [schedule {schedule}]"
            ),
            Report::Deadlock { blocked, schedule } => write!(
                f,
                "deadlock / lost wakeup: no runnable thread; {} [schedule {schedule}]",
                blocked.join("; ")
            ),
            Report::Panic {
                thread,
                message,
                schedule,
            } => write!(
                f,
                "thread {thread} panicked: {message} [schedule {schedule}]"
            ),
        }
    }
}
