//! Scoped threads under the model: [`scope`] mirrors
//! `std::thread::scope`, but threads spawned inside an exploration
//! become model threads — registered with the scheduler, started on
//! their first turn, and joined through the model so the explorer can
//! interleave the join itself.

use crate::sched::{current, payload_message, set_current, Abort, Execution};
use std::cell::RefCell;
use std::panic::{self, AssertUnwindSafe};
use std::sync::Arc;

/// A scope handle mirroring `std::thread::Scope`. Outside an exploration
/// it is a passthrough; inside, every spawn registers a model thread.
pub struct Scope<'scope, 'env: 'scope> {
    std: &'scope std::thread::Scope<'scope, 'env>,
    model: Option<ScopeModel>,
}

struct ScopeModel {
    exec: Arc<Execution>,
    parent: usize,
    children: RefCell<Vec<usize>>,
}

/// Handle to a spawned thread; joining waits through the model when the
/// thread is a model thread.
pub struct JoinHandle<'scope, T> {
    std: std::thread::ScopedJoinHandle<'scope, Option<T>>,
    model: Option<(Arc<Execution>, usize)>,
}

impl<T> JoinHandle<'_, T> {
    /// Waits for the thread to finish and returns its result. A model
    /// thread that panicked yields `Err` with the panic already recorded
    /// as a [`crate::Report::Panic`].
    pub fn join(self) -> std::thread::Result<T> {
        if let (Some((exec, child)), Some((_, me))) = (&self.model, current()) {
            exec.join_thread(me, *child);
        }
        match self.std.join() {
            Ok(Some(value)) => Ok(value),
            Ok(None) => Err(Box::new("model thread panicked".to_string())),
            Err(e) => Err(e),
        }
    }
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a thread inside the scope (a scheduler yield point under
    /// the model: the explorer decides whether child or parent runs
    /// first).
    pub fn spawn<F, T>(&self, f: F) -> JoinHandle<'scope, T>
    where
        F: FnOnce() -> T + Send + 'scope,
        T: Send + 'scope,
    {
        match &self.model {
            None => JoinHandle {
                std: self.std.spawn(move || Some(f())),
                model: None,
            },
            Some(m) => {
                let id = m.exec.register_thread(m.parent);
                m.children.borrow_mut().push(id);
                let exec = m.exec.clone();
                let handle = self.std.spawn(move || {
                    set_current(Some((exec.clone(), id)));
                    exec.thread_started(id);
                    let result = panic::catch_unwind(AssertUnwindSafe(f));
                    let value = match result {
                        Ok(v) => Some(v),
                        Err(payload) => {
                            if payload.downcast_ref::<Abort>().is_none() {
                                exec.record_thread_panic(id, payload_message(payload.as_ref()));
                            }
                            None
                        }
                    };
                    exec.thread_finished(id);
                    set_current(None);
                    value
                });
                // Only now that the OS thread exists can the explorer
                // hand it the token.
                m.exec.yield_now(m.parent);
                JoinHandle {
                    std: handle,
                    model: Some((m.exec.clone(), id)),
                }
            }
        }
    }
}

/// Mirror of `std::thread::scope`: all threads spawned through the
/// passed [`Scope`] are joined (through the model, inside an
/// exploration) before the call returns.
pub fn scope<'env, F, T>(f: F) -> T
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> T,
{
    let model = current();
    std::thread::scope(|s| {
        let scope = Scope {
            std: s,
            model: model.map(|(exec, parent)| ScopeModel {
                exec,
                parent,
                children: RefCell::new(Vec::new()),
            }),
        };
        match panic::catch_unwind(AssertUnwindSafe(|| f(&scope))) {
            Ok(result) => {
                // Implicit joins: the scope only returns once every model
                // child has finished (explored as schedule points).
                if let Some(m) = &scope.model {
                    let children = m.children.borrow().clone();
                    for child in children {
                        m.exec.join_thread(m.parent, child);
                    }
                }
                result
            }
            Err(payload) => {
                // The scope body panicked with model children possibly
                // still parked; abort the execution so they unwind
                // instead of hanging the underlying std scope join.
                if let Some(m) = &scope.model {
                    m.exec.abort_execution();
                }
                panic::resume_unwind(payload);
            }
        }
    })
}
