//! The deterministic cooperative scheduler and its DFS explorer.
//!
//! Model threads are real OS threads, but exactly one — the token holder
//! — runs at a time. Every instrumented operation (lock, atomic access,
//! condvar wait, spawn) is a *yield point*: the running thread applies
//! the operation's semantics under the execution's state lock, asks the
//! scheduler which thread runs next, and passes the token. When more
//! than one thread could run, the choice is a *decision point*; the DFS
//! explorer enumerates the alternatives across executions, bounded by a
//! preemption budget (picking a thread other than the current runnable
//! one costs one preemption). The sequence of decision indices is the
//! *schedule*: printable, and replayable bit-for-bit via [`replay`].

use crate::clock::VClock;
use crate::order::{LockClass, UNRANKED};
use crate::report::Report;
use std::cell::RefCell;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering as AtomOrd};
use std::sync::{Arc, Condvar as StdCondvar, Mutex as StdMutex, MutexGuard as StdMutexGuard};
use std::sync::{Once, PoisonError};
use std::time::Instant;

/// Exploration limits for [`explore`].
#[derive(Clone, Debug)]
pub struct Config {
    /// Maximum number of preemptions (scheduling a runnable thread other
    /// than the current one) per execution; `None` = unbounded, i.e. full
    /// DFS over every interleaving.
    pub preemption_bound: Option<u32>,
    /// Stop after this many executions even if the schedule space is not
    /// exhausted.
    pub max_interleavings: u64,
    /// Wall-clock cap on the whole exploration, in seconds.
    pub max_seconds: u64,
    /// Return as soon as one execution produces reports (its schedule is
    /// then [`Stats::failing_schedule`]).
    pub stop_on_report: bool,
}

impl Default for Config {
    fn default() -> Config {
        Config {
            preemption_bound: Some(2),
            max_interleavings: 100_000,
            max_seconds: 60,
            stop_on_report: true,
        }
    }
}

impl Config {
    /// [`Config::default`] overridden by the `HSCHED_MODEL_MAX_INTERLEAVINGS`,
    /// `HSCHED_MODEL_MAX_SECONDS`, and `HSCHED_MODEL_PREEMPTION_BOUND`
    /// environment variables when set — how CI keeps the model-check job
    /// inside its wall-clock budget.
    pub fn from_env() -> Config {
        let mut cfg = Config::default();
        if let Some(n) = env_u64("HSCHED_MODEL_MAX_INTERLEAVINGS") {
            cfg.max_interleavings = n;
        }
        if let Some(n) = env_u64("HSCHED_MODEL_MAX_SECONDS") {
            cfg.max_seconds = n;
        }
        if let Some(n) = env_u64("HSCHED_MODEL_PREEMPTION_BOUND") {
            cfg.preemption_bound = Some(n as u32);
        }
        cfg
    }
}

fn env_u64(key: &str) -> Option<u64> {
    std::env::var(key).ok().and_then(|v| v.parse().ok())
}

/// What an exploration (or replay) found.
#[derive(Clone, Debug)]
pub struct Stats {
    /// Distinct executions (interleavings) run.
    pub interleavings: u64,
    /// The bounded schedule space was fully enumerated (nothing left to
    /// try under the configured preemption bound).
    pub exhausted: bool,
    /// Every validator finding, in discovery order.
    pub reports: Vec<Report>,
    /// Schedule string of the first failing execution, if any — feed it
    /// to [`replay`] to reproduce deterministically.
    pub failing_schedule: Option<String>,
}

/// Panic payload used internally to unwind every model thread out of an
/// aborted execution (deadlock detected). Never escapes [`explore`].
pub(crate) struct Abort;

thread_local! {
    static CURRENT: RefCell<Option<(Arc<Execution>, usize)>> = const { RefCell::new(None) };
}

/// The execution handle and thread id of the calling model thread, if it
/// is running inside an exploration.
pub(crate) fn current() -> Option<(Arc<Execution>, usize)> {
    CURRENT.with(|c| c.borrow().clone())
}

pub(crate) fn set_current(v: Option<(Arc<Execution>, usize)>) {
    CURRENT.with(|c| *c.borrow_mut() = v);
}

/// Installs (once, process-wide) a panic hook that silences the
/// checker's internal [`Abort`] unwinds while delegating everything else
/// to the previous hook.
fn install_hook() {
    static HOOK: Once = Once::new();
    HOOK.call_once(|| {
        let prev = panic::take_hook();
        panic::set_hook(Box::new(move |info| {
            if info.payload().downcast_ref::<Abort>().is_none() {
                prev(info);
            }
        }));
    });
}

pub(crate) fn payload_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

#[derive(Clone, Debug, PartialEq, Eq)]
pub(crate) enum BlockedOn {
    Lock(usize),
    Read(usize),
    Write(usize),
    Cv(usize),
    Join(usize),
}

#[derive(Clone, Debug, PartialEq, Eq)]
pub(crate) enum Status {
    Runnable,
    Blocked(BlockedOn),
    Finished,
}

#[derive(Clone, Debug)]
pub(crate) struct Held {
    pub lock: usize,
    pub class: LockClass,
    pub write: bool,
}

pub(crate) struct ModelThread {
    pub status: Status,
    pub clock: VClock,
    pub held: Vec<Held>,
}

impl ModelThread {
    fn new(id: usize) -> ModelThread {
        let mut clock = VClock::default();
        clock.tick(id);
        ModelThread {
            status: Status::Runnable,
            clock,
            held: Vec::new(),
        }
    }
}

pub(crate) struct LockState {
    pub class: LockClass,
    pub holder: Option<usize>,
    pub readers: Vec<usize>,
    pub clock: VClock,
}

pub(crate) struct CvState {
    pub name: &'static str,
    /// FIFO wait queue. A `notify_one` against an empty queue is lost,
    /// exactly like the real primitive — that is the missed-wakeup
    /// hazard the gate generation counter exists to close.
    pub waiters: Vec<usize>,
}

pub(crate) struct LastStore {
    pub thread: usize,
    pub clock: VClock,
    pub release: bool,
    pub ord: &'static str,
}

pub(crate) struct AtomicMeta {
    pub name: &'static str,
    pub last_store: Option<LastStore>,
    /// Join of the clocks of every release-store so far; acquire-loads
    /// join it into their thread clock (the synchronizes-with edge).
    pub cell_clock: VClock,
}

#[derive(Clone, Debug)]
struct DecisionPoint {
    options: Vec<usize>,
    chosen: usize,
}

pub(crate) struct ExecState {
    pub threads: Vec<ModelThread>,
    pub active: usize,
    pub locks: Vec<LockState>,
    pub cvs: Vec<CvState>,
    pub atomics: Vec<AtomicMeta>,
    pub reports: Vec<Report>,
    pub aborted: bool,
    pub generation: u64,
    bound: Option<u32>,
    preemptions: u32,
    script: Vec<usize>,
    cursor: usize,
    trace: Vec<DecisionPoint>,
}

/// One exploration's shared state: the big lock every yield point runs
/// under, and the condvar parked threads sleep on while another thread
/// holds the token.
pub(crate) struct Execution {
    state: StdMutex<ExecState>,
    wake: StdCondvar,
}

type Guard<'a> = StdMutexGuard<'a, ExecState>;

impl Execution {
    fn new(bound: Option<u32>) -> Execution {
        Execution {
            state: StdMutex::new(ExecState {
                threads: Vec::new(),
                active: 0,
                locks: Vec::new(),
                cvs: Vec::new(),
                atomics: Vec::new(),
                reports: Vec::new(),
                aborted: false,
                generation: 0,
                bound,
                preemptions: 0,
                script: Vec::new(),
                cursor: 0,
                trace: Vec::new(),
            }),
            wake: StdCondvar::new(),
        }
    }

    pub(crate) fn lock_state(&self) -> Guard<'_> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Registers (or re-finds) an object slot for this execution
    /// generation. `slot` packs `(generation + 1) << 32 | (id + 1)` so a
    /// shim object surviving from an earlier execution re-registers
    /// cleanly.
    fn slot_id(
        g: &mut ExecState,
        slot: &AtomicU64,
        alloc: impl FnOnce(&mut ExecState) -> usize,
    ) -> usize {
        let packed = slot.load(AtomOrd::SeqCst);
        let gen = packed >> 32;
        if gen == g.generation + 1 {
            return ((packed & 0xffff_ffff) - 1) as usize;
        }
        let id = alloc(g);
        slot.store((g.generation + 1) << 32 | (id as u64 + 1), AtomOrd::SeqCst);
        id
    }

    fn lock_id(&self, g: &mut ExecState, slot: &AtomicU64, class: &LockClass) -> usize {
        Self::slot_id(g, slot, |g| {
            g.locks.push(LockState {
                class: class.clone(),
                holder: None,
                readers: Vec::new(),
                clock: VClock::default(),
            });
            g.locks.len() - 1
        })
    }

    fn cv_id(&self, g: &mut ExecState, slot: &AtomicU64, name: &'static str) -> usize {
        Self::slot_id(g, slot, |g| {
            g.cvs.push(CvState {
                name,
                waiters: Vec::new(),
            });
            g.cvs.len() - 1
        })
    }

    fn atomic_id(&self, g: &mut ExecState, slot: &AtomicU64, name: &'static str) -> usize {
        Self::slot_id(g, slot, |g| {
            g.atomics.push(AtomicMeta {
                name,
                last_store: None,
                cell_clock: VClock::default(),
            });
            g.atomics.len() - 1
        })
    }

    fn schedule_string(g: &ExecState) -> String {
        schedule_string_parts(g.bound, &g.trace)
    }

    /// The scheduling decision at a yield point: picks the next thread,
    /// records a decision point when there was a real choice, publishes
    /// `active`, and wakes the chosen thread. Does *not* wait — callers
    /// that must regain the token follow up with [`Execution::wait_for_token`].
    fn pick_next(&self, g: &mut Guard<'_>, me: usize) -> usize {
        let runnable: Vec<usize> = g
            .threads
            .iter()
            .enumerate()
            .filter(|(_, t)| t.status == Status::Runnable)
            .map(|(i, _)| i)
            .collect();
        if runnable.is_empty() {
            if g.threads
                .iter()
                .any(|t| matches!(t.status, Status::Blocked(_)))
            {
                self.deadlock(g);
            }
            // Everyone finished: keep the token, nothing to schedule.
            return me;
        }
        let me_runnable = g.threads[me].status == Status::Runnable;
        let default = if me_runnable { me } else { runnable[0] };
        let mut options = vec![default];
        let may_preempt = match g.bound {
            Some(bound) => g.preemptions < bound,
            None => true,
        };
        if !me_runnable || may_preempt {
            options.extend(runnable.iter().copied().filter(|&t| t != default));
        }
        let chosen = if options.len() == 1 {
            default
        } else {
            let idx = if g.cursor < g.script.len() {
                g.script[g.cursor].min(options.len() - 1)
            } else {
                0
            };
            g.cursor += 1;
            g.trace.push(DecisionPoint {
                options: options.clone(),
                chosen: idx,
            });
            options[idx]
        };
        if me_runnable && chosen != me {
            g.preemptions += 1;
        }
        g.active = chosen;
        if chosen != me {
            self.wake.notify_all();
        }
        chosen
    }

    /// Parks the calling thread until the scheduler hands it the token
    /// (or the execution aborts).
    fn wait_for_token<'a>(&'a self, mut g: Guard<'a>, me: usize) -> Guard<'a> {
        loop {
            if g.aborted {
                drop(g);
                panic::panic_any(Abort);
            }
            if g.active == me {
                return g;
            }
            g = self.wake.wait(g).unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// A full yield point: schedule, then (if the token moved) park until
    /// it comes back.
    fn reschedule<'a>(&'a self, mut g: Guard<'a>, me: usize) -> Guard<'a> {
        if g.aborted {
            drop(g);
            panic::panic_any(Abort);
        }
        let chosen = self.pick_next(&mut g, me);
        if chosen != me {
            g = self.wait_for_token(g, me);
        }
        g
    }

    /// Records a deadlock (or lost wakeup) report and aborts the
    /// execution: every parked thread unwinds with [`Abort`].
    fn deadlock(&self, g: &mut Guard<'_>) -> ! {
        let schedule = Self::schedule_string(g);
        let blocked = g
            .threads
            .iter()
            .enumerate()
            .filter_map(|(i, t)| match &t.status {
                Status::Blocked(on) => Some(format!("thread {i} blocked on {}", describe(g, on))),
                _ => None,
            })
            .collect();
        g.reports.push(Report::Deadlock { blocked, schedule });
        g.aborted = true;
        self.wake.notify_all();
        panic::panic_any(Abort)
    }

    // ---- lock-order + condvar-hold validation ------------------------

    /// Validates an acquisition of `id` against the documented order,
    /// recording a [`Report::LockOrder`] for every held lock that
    /// outranks it. Runs *before* the acquisition blocks, so the
    /// violation is reported even on interleavings where no deadlock
    /// manifests.
    fn check_acquire(&self, g: &mut ExecState, me: usize, id: usize) {
        let class = g.locks[id].class.clone();
        if class.major == UNRANKED {
            return;
        }
        if let Some(em) = class.exempt_under_write {
            if g.threads[me]
                .held
                .iter()
                .any(|h| h.write && h.class.major == em)
            {
                return;
            }
        }
        let schedule = Self::schedule_string(g);
        let mut found: Vec<Report> = Vec::new();
        for h in &g.threads[me].held {
            if h.class.major == UNRANKED {
                continue;
            }
            let violation = h.lock == id
                || h.class.major > class.major
                || (h.class.major == class.major
                    && (class.at_most_one || class.minor <= h.class.minor));
            if violation {
                found.push(Report::LockOrder {
                    thread: me,
                    acquired: class.display(),
                    held: h.class.display(),
                    schedule: schedule.clone(),
                });
            }
        }
        g.reports.extend(found);
    }

    // ---- mutex / rwlock ops ------------------------------------------

    pub(crate) fn mutex_lock(&self, me: usize, slot: &AtomicU64, class: &LockClass) {
        let mut g = self.lock_state();
        let id = self.lock_id(&mut g, slot, class);
        g.threads[me].clock.tick(me);
        self.check_acquire(&mut g, me, id);
        loop {
            g = self.reschedule(g, me);
            let lock = &g.locks[id];
            if lock.holder.is_none() && lock.readers.is_empty() {
                g.locks[id].holder = Some(me);
                let lc = g.locks[id].clock.clone();
                let class = g.locks[id].class.clone();
                g.threads[me].clock.join(&lc);
                g.threads[me].held.push(Held {
                    lock: id,
                    class,
                    write: true,
                });
                return;
            }
            g.threads[me].status = Status::Blocked(BlockedOn::Lock(id));
        }
    }

    pub(crate) fn rw_write(&self, me: usize, slot: &AtomicU64, class: &LockClass) {
        let mut g = self.lock_state();
        let id = self.lock_id(&mut g, slot, class);
        g.threads[me].clock.tick(me);
        self.check_acquire(&mut g, me, id);
        loop {
            g = self.reschedule(g, me);
            let lock = &g.locks[id];
            if lock.holder.is_none() && lock.readers.is_empty() {
                g.locks[id].holder = Some(me);
                let lc = g.locks[id].clock.clone();
                let class = g.locks[id].class.clone();
                g.threads[me].clock.join(&lc);
                g.threads[me].held.push(Held {
                    lock: id,
                    class,
                    write: true,
                });
                return;
            }
            g.threads[me].status = Status::Blocked(BlockedOn::Write(id));
        }
    }

    pub(crate) fn rw_read(&self, me: usize, slot: &AtomicU64, class: &LockClass) {
        let mut g = self.lock_state();
        let id = self.lock_id(&mut g, slot, class);
        g.threads[me].clock.tick(me);
        self.check_acquire(&mut g, me, id);
        loop {
            g = self.reschedule(g, me);
            if g.locks[id].holder.is_none() {
                g.locks[id].readers.push(me);
                let lc = g.locks[id].clock.clone();
                let class = g.locks[id].class.clone();
                g.threads[me].clock.join(&lc);
                g.threads[me].held.push(Held {
                    lock: id,
                    class,
                    write: false,
                });
                return;
            }
            g.threads[me].status = Status::Blocked(BlockedOn::Read(id));
        }
    }

    /// Release bookkeeping shared by mutex unlock and rwlock guard drops.
    /// Not a yield point, and deliberately panic-free: it runs from
    /// guard `Drop` impls, possibly mid-unwind.
    pub(crate) fn unlock(&self, me: usize, slot: &AtomicU64) {
        let mut g = self.lock_state();
        let packed = slot.load(AtomOrd::SeqCst);
        if packed >> 32 != g.generation + 1 {
            return; // guard outlived its execution; nothing to track
        }
        let id = ((packed & 0xffff_ffff) - 1) as usize;
        g.threads[me].clock.tick(me);
        let tc = g.threads[me].clock.clone();
        g.locks[id].clock.join(&tc);
        if g.locks[id].holder == Some(me) {
            g.locks[id].holder = None;
        }
        g.locks[id].readers.retain(|&r| r != me);
        g.threads[me].held.retain(|h| h.lock != id);
        let free = g.locks[id].holder.is_none();
        let no_readers = g.locks[id].readers.is_empty();
        for t in g.threads.iter_mut() {
            match &t.status {
                Status::Blocked(BlockedOn::Lock(l)) | Status::Blocked(BlockedOn::Write(l))
                    if *l == id && free && no_readers =>
                {
                    t.status = Status::Runnable;
                }
                Status::Blocked(BlockedOn::Read(l)) if *l == id && free => {
                    t.status = Status::Runnable;
                }
                _ => {}
            }
        }
    }

    // ---- condvar ops --------------------------------------------------

    /// First half of a condvar wait, run while the caller still holds the
    /// real mutex guard: validates nothing else is held, releases the
    /// mutex in the model, and enqueues the waiter. The caller then drops
    /// the real guard and calls [`Execution::cv_wait_block`] — the token
    /// is kept throughout, so no other thread can observe the
    /// intermediate state.
    pub(crate) fn cv_wait_release(
        &self,
        me: usize,
        cv_slot: &AtomicU64,
        cv_name: &'static str,
        lock_slot: &AtomicU64,
    ) {
        let mut g = self.lock_state();
        let cv = self.cv_id(&mut g, cv_slot, cv_name);
        let packed = lock_slot.load(AtomOrd::SeqCst);
        debug_assert_eq!(packed >> 32, g.generation + 1);
        let lock_id = ((packed & 0xffff_ffff) - 1) as usize;
        g.threads[me].clock.tick(me);
        let also_held: Vec<String> = g.threads[me]
            .held
            .iter()
            .filter(|h| h.lock != lock_id)
            .map(|h| h.class.display())
            .collect();
        if !also_held.is_empty() {
            let schedule = Self::schedule_string(&g);
            let waited = g.locks[lock_id].class.display();
            g.reports.push(Report::CondvarHold {
                thread: me,
                waited,
                also_held,
                schedule,
            });
        }
        // Model-release the mutex (same bookkeeping as unlock).
        let tc = g.threads[me].clock.clone();
        g.locks[lock_id].clock.join(&tc);
        g.locks[lock_id].holder = None;
        g.threads[me].held.retain(|h| h.lock != lock_id);
        for t in g.threads.iter_mut() {
            if matches!(
                &t.status,
                Status::Blocked(BlockedOn::Lock(l)) | Status::Blocked(BlockedOn::Write(l))
                | Status::Blocked(BlockedOn::Read(l)) if *l == lock_id
            ) {
                t.status = Status::Runnable;
            }
        }
        g.threads[me].status = Status::Blocked(BlockedOn::Cv(cv));
        g.cvs[cv].waiters.push(me);
    }

    /// Second half of a condvar wait: hand the token over and park until
    /// a notification makes this thread runnable again.
    pub(crate) fn cv_wait_block(&self, me: usize) {
        let g = self.lock_state();
        let _g = self.reschedule(g, me);
    }

    /// `notify_one` / `notify_all`. Not a yield point. Notifying an empty
    /// queue is a no-op — the signal is lost, as with the real primitive.
    pub(crate) fn cv_notify(&self, me: usize, slot: &AtomicU64, name: &'static str, all: bool) {
        let mut g = self.lock_state();
        let cv = self.cv_id(&mut g, slot, name);
        g.threads[me].clock.tick(me);
        let n = if all {
            g.cvs[cv].waiters.len()
        } else {
            g.cvs[cv].waiters.len().min(1)
        };
        for _ in 0..n {
            let t = g.cvs[cv].waiters.remove(0);
            g.threads[t].status = Status::Runnable;
        }
    }

    // ---- atomic ops ---------------------------------------------------

    /// Checks the happens-before side of a load (or the load half of an
    /// RMW): a read observing the latest store must either be ordered
    /// after it by existing HB edges or synchronize with it via a
    /// release-store/acquire-load pair.
    fn check_read(
        &self,
        g: &mut ExecState,
        me: usize,
        id: usize,
        acquire: bool,
        ord: &'static str,
    ) {
        let meta = &g.atomics[id];
        if let Some(ls) = &meta.last_store {
            if ls.thread != me && !ls.clock.le(&g.threads[me].clock) && !(ls.release && acquire) {
                let report = Report::Race {
                    cell: meta.name.to_string(),
                    writer: ls.thread,
                    writer_ord: ls.ord.to_string(),
                    reader: me,
                    reader_ord: ord.to_string(),
                    schedule: Self::schedule_string(g),
                };
                g.reports.push(report);
            }
        }
        if acquire {
            let cc = g.atomics[id].cell_clock.clone();
            g.threads[me].clock.join(&cc);
        }
    }

    fn record_store(
        &self,
        g: &mut ExecState,
        me: usize,
        id: usize,
        release: bool,
        ord: &'static str,
    ) {
        if release {
            let tc = g.threads[me].clock.clone();
            g.atomics[id].cell_clock.join(&tc);
        }
        g.atomics[id].last_store = Some(LastStore {
            thread: me,
            clock: g.threads[me].clock.clone(),
            release,
            ord,
        });
    }

    pub(crate) fn atomic_load(
        &self,
        me: usize,
        slot: &AtomicU64,
        name: &'static str,
        acquire: bool,
        ord: &'static str,
    ) {
        let mut g = self.lock_state();
        let id = self.atomic_id(&mut g, slot, name);
        g.threads[me].clock.tick(me);
        g = self.reschedule(g, me);
        self.check_read(&mut g, me, id, acquire, ord);
    }

    pub(crate) fn atomic_store(
        &self,
        me: usize,
        slot: &AtomicU64,
        name: &'static str,
        release: bool,
        ord: &'static str,
    ) {
        let mut g = self.lock_state();
        let id = self.atomic_id(&mut g, slot, name);
        g.threads[me].clock.tick(me);
        g = self.reschedule(g, me);
        self.record_store(&mut g, me, id, release, ord);
    }

    pub(crate) fn atomic_rmw(
        &self,
        me: usize,
        slot: &AtomicU64,
        name: &'static str,
        acquire: bool,
        release: bool,
        ord: &'static str,
    ) {
        let mut g = self.lock_state();
        let id = self.atomic_id(&mut g, slot, name);
        g.threads[me].clock.tick(me);
        g = self.reschedule(g, me);
        self.check_read(&mut g, me, id, acquire, ord);
        self.record_store(&mut g, me, id, release, ord);
    }

    // ---- thread lifecycle ---------------------------------------------

    /// Registers a child thread (runnable, clock joined from the parent)
    /// *without* yielding: the caller must spawn the OS thread first and
    /// then call [`Execution::yield_now`] — yielding before the OS
    /// thread exists would hand it a token nobody can accept.
    pub(crate) fn register_thread(&self, parent: usize) -> usize {
        let mut g = self.lock_state();
        g.threads[parent].clock.tick(parent);
        let id = g.threads.len();
        let mut t = ModelThread::new(id);
        let pc = g.threads[parent].clock.clone();
        t.clock.join(&pc);
        g.threads.push(t);
        id
    }

    /// A bare yield point (the post-spawn decision: child first or
    /// parent continues).
    pub(crate) fn yield_now(&self, me: usize) {
        let g = self.lock_state();
        let _g = self.reschedule(g, me);
    }

    /// A freshly spawned OS thread parks here until its first turn.
    pub(crate) fn thread_started(&self, me: usize) {
        let g = self.lock_state();
        let _g = self.wait_for_token(g, me);
    }

    /// Marks a thread finished, wakes its joiners, and hands the token
    /// off without waiting for it back.
    pub(crate) fn thread_finished(&self, me: usize) {
        let mut g = self.lock_state();
        if g.aborted {
            return;
        }
        g.threads[me].clock.tick(me);
        g.threads[me].status = Status::Finished;
        for t in g.threads.iter_mut() {
            if t.status == Status::Blocked(BlockedOn::Join(me)) {
                t.status = Status::Runnable;
            }
        }
        self.pick_next(&mut g, me);
    }

    /// Aborts the current execution (used when the scope body panics
    /// while model children are still parked): every waiting thread
    /// unwinds with [`Abort`] instead of hanging the OS-level join.
    pub(crate) fn abort_execution(&self) {
        let mut g = self.lock_state();
        g.aborted = true;
        self.wake.notify_all();
    }

    pub(crate) fn record_thread_panic(&self, me: usize, message: String) {
        let mut g = self.lock_state();
        let schedule = Self::schedule_string(&g);
        g.reports.push(Report::Panic {
            thread: me,
            message,
            schedule,
        });
    }

    /// Blocks `me` until `child` has finished, then joins its clock (the
    /// join happens-before edge).
    pub(crate) fn join_thread(&self, me: usize, child: usize) {
        let mut g = self.lock_state();
        g.threads[me].clock.tick(me);
        loop {
            if g.threads[child].status == Status::Finished {
                let cc = g.threads[child].clock.clone();
                g.threads[me].clock.join(&cc);
                return;
            }
            g.threads[me].status = Status::Blocked(BlockedOn::Join(child));
            g = self.reschedule(g, me);
        }
    }

    // ---- one execution ------------------------------------------------

    fn run_once(
        self: &Arc<Execution>,
        script: &[usize],
        f: &impl Fn(),
    ) -> (Vec<Report>, Vec<DecisionPoint>) {
        {
            let mut g = self.lock_state();
            g.generation += 1;
            g.threads.clear();
            g.threads.push(ModelThread::new(0));
            g.active = 0;
            g.locks.clear();
            g.cvs.clear();
            g.atomics.clear();
            g.reports.clear();
            g.aborted = false;
            g.preemptions = 0;
            g.script = script.to_vec();
            g.cursor = 0;
            g.trace.clear();
        }
        set_current(Some((self.clone(), 0)));
        let result = panic::catch_unwind(AssertUnwindSafe(f));
        set_current(None);
        let mut g = self.lock_state();
        if let Err(payload) = result {
            if payload.downcast_ref::<Abort>().is_none() {
                let schedule = Self::schedule_string(&g);
                let message = payload_message(payload.as_ref());
                g.reports.push(Report::Panic {
                    thread: 0,
                    message,
                    schedule,
                });
            }
        }
        (std::mem::take(&mut g.reports), std::mem::take(&mut g.trace))
    }
}

fn describe(g: &ExecState, on: &BlockedOn) -> String {
    match on {
        BlockedOn::Lock(id) | BlockedOn::Write(id) | BlockedOn::Read(id) => {
            format!("lock {}", g.locks[*id].class.display())
        }
        BlockedOn::Cv(cv) => format!("condvar `{}`", g.cvs[*cv].name),
        BlockedOn::Join(t) => format!("join of thread {t}"),
    }
}

fn schedule_string_parts(bound: Option<u32>, trace: &[DecisionPoint]) -> String {
    let prefix = match bound {
        Some(b) => format!("b{b}"),
        None => "b-".to_string(),
    };
    if trace.is_empty() {
        return format!("{prefix}:-");
    }
    let body: Vec<String> = trace.iter().map(|d| d.chosen.to_string()).collect();
    format!("{prefix}:{}", body.join("."))
}

fn parse_schedule(s: &str) -> Option<(Option<u32>, Vec<usize>)> {
    let (prefix, body) = s.split_once(':')?;
    let bound = match prefix.strip_prefix('b')? {
        "-" => None,
        n => Some(n.parse().ok()?),
    };
    let script = if body == "-" {
        Vec::new()
    } else {
        body.split('.')
            .map(|p| p.parse().ok())
            .collect::<Option<Vec<usize>>>()?
    };
    Some((bound, script))
}

/// The deepest decision point with an untried sibling, turned into the
/// next DFS script; `None` when the bounded space is exhausted.
fn next_script(trace: &[DecisionPoint]) -> Option<Vec<usize>> {
    for i in (0..trace.len()).rev() {
        if trace[i].chosen + 1 < trace[i].options.len() {
            let mut script: Vec<usize> = trace[..i].iter().map(|d| d.chosen).collect();
            script.push(trace[i].chosen + 1);
            return Some(script);
        }
    }
    None
}

/// Explores the interleavings of `f` by preemption-bounded DFS.
///
/// `f` is run once per schedule on the calling thread (model thread 0);
/// concurrency inside it must go through [`crate::thread::scope`] and
/// the [`crate::sync`] shims. Returns aggregate [`Stats`]; when
/// [`Config::stop_on_report`] is set (the default) exploration stops at
/// the first failing execution, whose schedule is
/// [`Stats::failing_schedule`].
pub fn explore(cfg: &Config, f: impl Fn()) -> Stats {
    install_hook();
    assert!(
        current().is_none(),
        "nested explore()/replay() is not supported"
    );
    let exec = Arc::new(Execution::new(cfg.preemption_bound));
    let started = Instant::now();
    let mut stats = Stats {
        interleavings: 0,
        exhausted: false,
        reports: Vec::new(),
        failing_schedule: None,
    };
    let mut script: Vec<usize> = Vec::new();
    loop {
        let (reports, trace) = exec.run_once(&script, &f);
        stats.interleavings += 1;
        if !reports.is_empty() {
            if stats.failing_schedule.is_none() {
                stats.failing_schedule = Some(schedule_string_parts(cfg.preemption_bound, &trace));
            }
            stats.reports.extend(reports);
            if cfg.stop_on_report {
                return stats;
            }
        }
        match next_script(&trace) {
            None => {
                stats.exhausted = true;
                return stats;
            }
            Some(next) => script = next,
        }
        if stats.interleavings >= cfg.max_interleavings
            || started.elapsed().as_secs() >= cfg.max_seconds
        {
            return stats;
        }
    }
}

/// Replays one recorded schedule (a [`Stats::failing_schedule`] or
/// [`Report::schedule`] string) against `f`, deterministically
/// reproducing the interleaving and any reports it yields.
///
/// Panics if `schedule` is not a valid schedule string.
pub fn replay(schedule: &str, f: impl Fn()) -> Stats {
    install_hook();
    assert!(
        current().is_none(),
        "nested explore()/replay() is not supported"
    );
    let (bound, script) = parse_schedule(schedule)
        .unwrap_or_else(|| panic!("malformed schedule string `{schedule}`"));
    let exec = Arc::new(Execution::new(bound));
    let (reports, trace) = exec.run_once(&script, &f);
    let replayed = schedule_string_parts(bound, &trace);
    Stats {
        interleavings: 1,
        exhausted: false,
        failing_schedule: if reports.is_empty() {
            None
        } else {
            Some(replayed)
        },
        reports,
    }
}
