//! Lock classes: a lock's position in a documented acquisition order.
//!
//! The validator does not discover an order — it checks every runtime
//! acquisition against the order the system *documents* (for the engine,
//! the `stripe → slot table → slot cell → core → gate` chain in
//! `docs/ARCHITECTURE.md`). Classes are ranked by a `(major, minor)`
//! pair: acquisitions must be strictly ascending in major rank, and
//! strictly ascending in minor rank within one major rank.

/// Major rank reserved for locks that opt out of order checking
/// entirely (scratch cells, ad-hoc job queues).
pub const UNRANKED: u16 = u16::MAX;

/// A lock's position in the documented acquisition order, plus the two
/// escape hatches real systems need: `at_most_one` (a rank whose members
/// are taken transiently, never two together, so intra-rank order is
/// irrelevant) and `exempt_under_write` (a rank whose members may be
/// taken freely while a designated coarser write lock is held, because
/// that write lock already excludes every competitor).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LockClass {
    /// Human-readable class name, used verbatim in reports.
    pub name: &'static str,
    /// Major rank: acquisitions must be strictly ascending. [`UNRANKED`]
    /// skips checking.
    pub major: u16,
    /// Minor rank inside one major rank (e.g. a stripe index): must also
    /// be strictly ascending unless the class is `at_most_one`.
    pub minor: u32,
    /// At most one lock of this major rank may be held at a time
    /// (holding two is itself a violation; minor order is moot).
    pub at_most_one: bool,
    /// While a *write-mode* lock of this major rank is held, members of
    /// this class may be acquired without order checks.
    pub exempt_under_write: Option<u16>,
}

impl LockClass {
    /// A class excluded from order validation (still tracked for condvar
    /// hold checks and deadlock display).
    pub const fn unranked(name: &'static str) -> LockClass {
        LockClass {
            name,
            major: UNRANKED,
            minor: 0,
            at_most_one: false,
            exempt_under_write: None,
        }
    }

    /// A class at `(major, minor)` in the documented order.
    pub const fn ranked(name: &'static str, major: u16, minor: u32) -> LockClass {
        LockClass {
            name,
            major,
            minor,
            at_most_one: false,
            exempt_under_write: None,
        }
    }

    /// Marks the class transient: at most one member held at a time.
    pub const fn singular(mut self) -> LockClass {
        self.at_most_one = true;
        self
    }

    /// Exempts the class from order checks while a write-mode lock of
    /// `major` is held.
    pub const fn exempt_under_write(mut self, major: u16) -> LockClass {
        self.exempt_under_write = Some(major);
        self
    }

    /// Display form used in reports: `` `name` (rank major.minor)``.
    pub fn display(&self) -> String {
        if self.major == UNRANKED {
            format!("`{}` (unranked)", self.name)
        } else {
            format!("`{}` (rank {}.{})", self.name, self.major, self.minor)
        }
    }
}
