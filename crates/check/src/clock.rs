//! Vector clocks for happens-before tracking.

/// A vector clock: one logical-time component per model thread,
/// grow-on-demand (absent components are zero).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub(crate) struct VClock(Vec<u64>);

impl VClock {
    /// Advances this thread's own component.
    pub(crate) fn tick(&mut self, thread: usize) {
        if self.0.len() <= thread {
            self.0.resize(thread + 1, 0);
        }
        self.0[thread] += 1;
    }

    /// Component-wise maximum: afterwards `self` dominates both inputs.
    pub(crate) fn join(&mut self, other: &VClock) {
        if self.0.len() < other.0.len() {
            self.0.resize(other.0.len(), 0);
        }
        for (slot, &v) in self.0.iter_mut().zip(other.0.iter()) {
            *slot = (*slot).max(v);
        }
    }

    /// `self ≤ other` component-wise: everything this clock has seen,
    /// `other` has seen too — i.e. `self` happens-before (or equals)
    /// `other`.
    pub(crate) fn le(&self, other: &VClock) -> bool {
        self.0
            .iter()
            .enumerate()
            .all(|(i, &v)| v <= other.0.get(i).copied().unwrap_or(0))
    }
}
