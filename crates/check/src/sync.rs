//! Drop-in instrumented replacements for the `std::sync` primitives the
//! engine's front door uses.
//!
//! Outside an exploration every shim is a thin passthrough to the real
//! primitive (so code compiled against the shims still runs normally —
//! e.g. the non-model tests of a `--cfg hsched_model` build). Inside an
//! exploration every operation is a scheduler yield point: the model
//! serializes all threads, so the *inner* std primitives never contend;
//! they exist to hold the data and keep guard lifetimes honest.
//!
//! Lock APIs return [`LockResult`] like std, but never a poisoned `Err`
//! — the checker records panics as reports instead of propagating
//! poison.

use crate::order::LockClass;
use crate::sched::current;
use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::atomic::{AtomicBool as StdAtomicBool, AtomicU64 as StdAtomicU64, Ordering};
use std::sync::{Condvar as StdCondvar, LockResult, PoisonError};
use std::sync::{Mutex as StdMutex, MutexGuard as StdMutexGuard, RwLock as StdRwLock};
use std::sync::{RwLockReadGuard as StdRwLockReadGuard, RwLockWriteGuard as StdRwLockWriteGuard};

fn acquires(ord: Ordering) -> bool {
    matches!(ord, Ordering::Acquire | Ordering::AcqRel | Ordering::SeqCst)
}

fn releases(ord: Ordering) -> bool {
    matches!(ord, Ordering::Release | Ordering::AcqRel | Ordering::SeqCst)
}

fn ord_name(ord: Ordering) -> &'static str {
    match ord {
        Ordering::SeqCst => "SeqCst",
        Ordering::AcqRel => "AcqRel",
        Ordering::Acquire => "Acquire",
        Ordering::Release => "Release",
        _ => "Relaxed",
    }
}

// ---- Mutex ------------------------------------------------------------

/// A mutex whose acquisitions become scheduler yield points and are
/// validated against its [`LockClass`] when run under [`crate::explore`].
pub struct Mutex<T> {
    class: LockClass,
    slot: StdAtomicU64,
    inner: StdMutex<T>,
}

impl<T> Mutex<T> {
    /// An order-unranked mutex (still race- and deadlock-checked).
    pub fn new(value: T) -> Mutex<T> {
        Mutex::with_class(LockClass::unranked("mutex"), value)
    }

    /// A mutex at a documented position in the acquisition order.
    pub fn with_class(class: LockClass, value: T) -> Mutex<T> {
        Mutex {
            class,
            slot: StdAtomicU64::new(0),
            inner: StdMutex::new(value),
        }
    }

    /// Acquires the mutex. Always `Ok`; see the module docs on poisoning.
    pub fn lock(&self) -> LockResult<MutexGuard<'_, T>> {
        let model = current();
        if let Some((exec, me)) = &model {
            exec.mutex_lock(*me, &self.slot, &self.class);
        }
        let std = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        Ok(MutexGuard {
            lock: self,
            std: Some(std),
            model,
        })
    }

    /// Direct access through an exclusive borrow — no locking, no model
    /// traffic (mirrors `std::sync::Mutex::get_mut`).
    pub fn get_mut(&mut self) -> LockResult<&mut T> {
        Ok(self.inner.get_mut().unwrap_or_else(PoisonError::into_inner))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> LockResult<T> {
        Ok(self
            .inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner))
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Mutex")
            .field("class", &self.class.name)
            .finish_non_exhaustive()
    }
}

/// Guard returned by [`Mutex::lock`].
pub struct MutexGuard<'a, T> {
    lock: &'a Mutex<T>,
    std: Option<StdMutexGuard<'a, T>>,
    model: Option<(std::sync::Arc<crate::sched::Execution>, usize)>,
}

impl<T> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.std.as_ref().expect("guard taken")
    }
}

impl<T> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.std.as_mut().expect("guard taken")
    }
}

impl<T> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        // Model release first, real unlock second: the token is held
        // through both, so no other model thread can race the window.
        if let Some((exec, me)) = self.model.take() {
            exec.unlock(me, &self.lock.slot);
        }
        self.std = None;
    }
}

// ---- Condvar ----------------------------------------------------------

/// A condition variable with FIFO wakeups under the model (a
/// `notify_one` with no waiter is lost, like the real primitive).
pub struct Condvar {
    name: &'static str,
    slot: StdAtomicU64,
    inner: StdCondvar,
}

impl Condvar {
    /// An anonymous condvar.
    pub fn new() -> Condvar {
        Condvar::named("condvar")
    }

    /// A condvar with a name used in deadlock reports.
    pub fn named(name: &'static str) -> Condvar {
        Condvar {
            name,
            slot: StdAtomicU64::new(0),
            inner: StdCondvar::new(),
        }
    }

    /// Releases the guard's mutex, sleeps until notified, re-acquires.
    /// The checker validates that no *other* lock is held across the
    /// sleep.
    pub fn wait<'a, T>(&self, mut guard: MutexGuard<'a, T>) -> LockResult<MutexGuard<'a, T>> {
        match guard.model.take() {
            None => {
                let std = guard.std.take().expect("guard taken");
                let lock = guard.lock;
                drop(guard);
                let std = self.inner.wait(std).unwrap_or_else(PoisonError::into_inner);
                Ok(MutexGuard {
                    lock,
                    std: Some(std),
                    model: None,
                })
            }
            Some((exec, me)) => {
                let lock = guard.lock;
                exec.cv_wait_release(me, &self.slot, self.name, &lock.slot);
                guard.std = None; // real unlock, still holding the token
                drop(guard);
                exec.cv_wait_block(me);
                lock.lock()
            }
        }
    }

    /// Wakes one waiter (FIFO under the model).
    pub fn notify_one(&self) {
        match current() {
            None => self.inner.notify_one(),
            Some((exec, me)) => exec.cv_notify(me, &self.slot, self.name, false),
        }
    }

    /// Wakes every waiter.
    pub fn notify_all(&self) {
        match current() {
            None => self.inner.notify_all(),
            Some((exec, me)) => exec.cv_notify(me, &self.slot, self.name, true),
        }
    }
}

impl Default for Condvar {
    fn default() -> Condvar {
        Condvar::new()
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Condvar")
            .field("name", &self.name)
            .finish_non_exhaustive()
    }
}

// ---- RwLock -----------------------------------------------------------

/// A reader-writer lock under the same instrumentation as [`Mutex`].
pub struct RwLock<T> {
    class: LockClass,
    slot: StdAtomicU64,
    inner: StdRwLock<T>,
}

impl<T> RwLock<T> {
    /// An order-unranked rwlock.
    pub fn new(value: T) -> RwLock<T> {
        RwLock::with_class(LockClass::unranked("rwlock"), value)
    }

    /// An rwlock at a documented position in the acquisition order.
    pub fn with_class(class: LockClass, value: T) -> RwLock<T> {
        RwLock {
            class,
            slot: StdAtomicU64::new(0),
            inner: StdRwLock::new(value),
        }
    }

    /// Acquires shared read access.
    pub fn read(&self) -> LockResult<RwLockReadGuard<'_, T>> {
        let model = current();
        if let Some((exec, me)) = &model {
            exec.rw_read(*me, &self.slot, &self.class);
        }
        let std = self.inner.read().unwrap_or_else(PoisonError::into_inner);
        Ok(RwLockReadGuard {
            lock: self,
            std: Some(std),
            model,
        })
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> LockResult<RwLockWriteGuard<'_, T>> {
        let model = current();
        if let Some((exec, me)) = &model {
            exec.rw_write(*me, &self.slot, &self.class);
        }
        let std = self.inner.write().unwrap_or_else(PoisonError::into_inner);
        Ok(RwLockWriteGuard {
            lock: self,
            std: Some(std),
            model,
        })
    }

    /// Direct access through an exclusive borrow — no locking.
    pub fn get_mut(&mut self) -> LockResult<&mut T> {
        Ok(self.inner.get_mut().unwrap_or_else(PoisonError::into_inner))
    }
}

impl<T: fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RwLock")
            .field("class", &self.class.name)
            .finish_non_exhaustive()
    }
}

/// Guard returned by [`RwLock::read`].
pub struct RwLockReadGuard<'a, T> {
    lock: &'a RwLock<T>,
    std: Option<StdRwLockReadGuard<'a, T>>,
    model: Option<(std::sync::Arc<crate::sched::Execution>, usize)>,
}

impl<T> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.std.as_ref().expect("guard taken")
    }
}

impl<T> Drop for RwLockReadGuard<'_, T> {
    fn drop(&mut self) {
        if let Some((exec, me)) = self.model.take() {
            exec.unlock(me, &self.lock.slot);
        }
        self.std = None;
    }
}

/// Guard returned by [`RwLock::write`].
pub struct RwLockWriteGuard<'a, T> {
    lock: &'a RwLock<T>,
    std: Option<StdRwLockWriteGuard<'a, T>>,
    model: Option<(std::sync::Arc<crate::sched::Execution>, usize)>,
}

impl<T> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.std.as_ref().expect("guard taken")
    }
}

impl<T> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.std.as_mut().expect("guard taken")
    }
}

impl<T> Drop for RwLockWriteGuard<'_, T> {
    fn drop(&mut self) {
        if let Some((exec, me)) = self.model.take() {
            exec.unlock(me, &self.lock.slot);
        }
        self.std = None;
    }
}

// ---- atomics ----------------------------------------------------------

/// An `AtomicU64` whose accesses are yield points with vector-clock
/// happens-before validation under the model. Execution is sequentially
/// consistent; the validator flags loads that *observe* a store without
/// an HB edge or a release/acquire pair — i.e. any ordering weakened
/// below the documented contract.
pub struct AtomicU64 {
    name: &'static str,
    slot: StdAtomicU64,
    inner: StdAtomicU64,
}

impl AtomicU64 {
    /// An anonymous cell.
    pub const fn new(value: u64) -> AtomicU64 {
        AtomicU64::named("atomic_u64", value)
    }

    /// A cell named for race reports.
    pub const fn named(name: &'static str, value: u64) -> AtomicU64 {
        AtomicU64 {
            name,
            slot: StdAtomicU64::new(0),
            inner: StdAtomicU64::new(value),
        }
    }

    /// Loads the value.
    pub fn load(&self, ord: Ordering) -> u64 {
        if let Some((exec, me)) = current() {
            exec.atomic_load(me, &self.slot, self.name, acquires(ord), ord_name(ord));
            self.inner.load(Ordering::SeqCst)
        } else {
            self.inner.load(ord)
        }
    }

    /// Stores a value.
    pub fn store(&self, value: u64, ord: Ordering) {
        if let Some((exec, me)) = current() {
            exec.atomic_store(me, &self.slot, self.name, releases(ord), ord_name(ord));
            self.inner.store(value, Ordering::SeqCst);
        } else {
            self.inner.store(value, ord);
        }
    }

    /// Adds to the value, returning the previous value.
    pub fn fetch_add(&self, value: u64, ord: Ordering) -> u64 {
        if let Some((exec, me)) = current() {
            exec.atomic_rmw(
                me,
                &self.slot,
                self.name,
                acquires(ord),
                releases(ord),
                ord_name(ord),
            );
            self.inner.fetch_add(value, Ordering::SeqCst)
        } else {
            self.inner.fetch_add(value, ord)
        }
    }
}

impl fmt::Debug for AtomicU64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("AtomicU64")
            .field("name", &self.name)
            .finish_non_exhaustive()
    }
}

/// An `AtomicBool` under the same instrumentation as [`AtomicU64`].
pub struct AtomicBool {
    name: &'static str,
    slot: StdAtomicU64,
    inner: StdAtomicBool,
}

impl AtomicBool {
    /// An anonymous cell.
    pub const fn new(value: bool) -> AtomicBool {
        AtomicBool::named("atomic_bool", value)
    }

    /// A cell named for race reports.
    pub const fn named(name: &'static str, value: bool) -> AtomicBool {
        AtomicBool {
            name,
            slot: StdAtomicU64::new(0),
            inner: StdAtomicBool::new(value),
        }
    }

    /// Loads the value.
    pub fn load(&self, ord: Ordering) -> bool {
        if let Some((exec, me)) = current() {
            exec.atomic_load(me, &self.slot, self.name, acquires(ord), ord_name(ord));
            self.inner.load(Ordering::SeqCst)
        } else {
            self.inner.load(ord)
        }
    }

    /// Stores a value.
    pub fn store(&self, value: bool, ord: Ordering) {
        if let Some((exec, me)) = current() {
            exec.atomic_store(me, &self.slot, self.name, releases(ord), ord_name(ord));
            self.inner.store(value, Ordering::SeqCst);
        } else {
            self.inner.store(value, ord);
        }
    }

    /// Swaps in a new value, returning the previous one.
    pub fn swap(&self, value: bool, ord: Ordering) -> bool {
        if let Some((exec, me)) = current() {
            exec.atomic_rmw(
                me,
                &self.slot,
                self.name,
                acquires(ord),
                releases(ord),
                ord_name(ord),
            );
            self.inner.swap(value, Ordering::SeqCst)
        } else {
            self.inner.swap(value, ord)
        }
    }
}

impl fmt::Debug for AtomicBool {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("AtomicBool")
            .field("name", &self.name)
            .finish_non_exhaustive()
    }
}
