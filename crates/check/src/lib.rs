//! `hsched-check` — a dependency-free, loom-style concurrency model
//! checker for the service front door.
//!
//! The engine's concurrent protocol (striped routing, slot checkout,
//! ticketed settle, group-committed fsync) is verified here by
//! *exhaustive bounded exploration* instead of stress sampling:
//!
//! * **Deterministic cooperative scheduler** ([`explore`]): model
//!   threads are real OS threads, but exactly one runs at a time; every
//!   instrumented operation is a yield point. A DFS over the resulting
//!   decision tree enumerates distinct interleavings, bounded by a
//!   preemption budget ([`Config::preemption_bound`]). Failing
//!   executions print a schedule string that [`replay`] reproduces
//!   bit-for-bit.
//! * **Lock-order validation** ([`LockClass`]): every acquisition is
//!   checked against the documented partial order (for the engine:
//!   name stripes → platform stripes → slot table → slot cells → core →
//!   gate); violations report the offending cycle with both lock
//!   classes named. Condvar waits are additionally checked to hold
//!   nothing but the mutex they sleep on.
//! * **Vector-clock race detection** over the atomic shims: execution is
//!   sequentially consistent, and every load is checked to observe its
//!   store through a happens-before edge or a release/acquire pair — so
//!   an ordering weakened below the documented contract (`issued`,
//!   `poison_present`, `platforms_version`) is flagged even though the
//!   interleaving itself still "worked".
//! * **Deadlock / lost-wakeup detection**: a state where no thread is
//!   runnable but some are blocked aborts the execution with a report
//!   naming what each thread is blocked on. `notify_one` against an
//!   empty wait queue is lost, exactly like the real primitive, so
//!   missed-wakeup windows surface as deadlocks.
//!
//! The engine compiles against these shims only under
//! `--cfg hsched_model` (see `crates/engine/src/sync.rs`); this crate
//! itself is an ordinary dependency-free library, fully exercised by its
//! own tier-1 test suite.
//!
//! ```
//! use hsched_check::{explore, sync::Mutex, thread, Config};
//!
//! let stats = explore(&Config::default(), || {
//!     let cell = Mutex::new(0u32);
//!     thread::scope(|s| {
//!         s.spawn(|| *cell.lock().unwrap() += 1);
//!         *cell.lock().unwrap() += 1;
//!     });
//!     assert_eq!(*cell.lock().unwrap(), 2);
//! });
//! assert!(stats.exhausted && stats.reports.is_empty());
//! ```

#![warn(missing_docs)]

mod clock;
pub mod order;
pub mod report;
mod sched;
pub mod sync;
pub mod thread;

pub use order::LockClass;
pub use report::Report;
pub use sched::{explore, replay, Config, Stats};
