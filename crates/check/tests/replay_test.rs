//! Schedule replay determinism: a recorded failing schedule seed must
//! reproduce the same interleaving — and therefore the byte-identical
//! validator report — every time it is replayed.

use hsched_check::sync::Mutex;
use hsched_check::{explore, replay, thread, Config, LockClass, Report};

/// A scenario with a deliberate lock-order inversion whose report only
/// fires on schedules that interleave the two threads a particular way.
fn inverted_order_scenario() {
    let outer = Mutex::with_class(LockClass::ranked("outer", 1, 0), 0u32);
    let inner = Mutex::with_class(LockClass::ranked("inner", 2, 0), 0u32);
    thread::scope(|s| {
        s.spawn(|| {
            let _a = outer.lock().unwrap();
            let _b = inner.lock().unwrap();
        });
        let _b = inner.lock().unwrap();
        let _a = outer.lock().unwrap();
    });
}

#[test]
fn recorded_failing_schedule_replays_identically_twice() {
    let stats = explore(&Config::default(), inverted_order_scenario);
    let seed = stats
        .failing_schedule
        .clone()
        .expect("the inverted scenario must fail somewhere");
    let first_report = stats.reports.first().cloned().expect("at least one report");

    let replay_a = replay(&seed, inverted_order_scenario);
    let replay_b = replay(&seed, inverted_order_scenario);

    // Same interleaving: the replays agree with each other...
    assert_eq!(
        replay_a.reports, replay_b.reports,
        "two replays of one seed diverged"
    );
    assert_eq!(replay_a.failing_schedule, replay_b.failing_schedule);
    // ...and with the original discovery, including the embedded
    // schedule string.
    assert_eq!(
        replay_a.reports.first(),
        Some(&first_report),
        "replay must reproduce the originally recorded report"
    );
    assert_eq!(replay_a.failing_schedule.as_deref(), Some(seed.as_str()));
}

#[test]
fn clean_schedule_replays_clean() {
    let ok_scenario = || {
        let cell = Mutex::new(0u32);
        thread::scope(|s| {
            s.spawn(|| *cell.lock().unwrap() += 1);
            *cell.lock().unwrap() += 1;
        });
    };
    let stats = explore(&Config::default(), ok_scenario);
    assert!(stats.exhausted && stats.reports.is_empty());
    // Replaying the serial schedule of a clean scenario stays clean.
    let replayed = replay("b2:-", ok_scenario);
    assert!(replayed.reports.is_empty(), "{replayed:?}");
}

#[test]
fn schedule_strings_report_the_failing_seed() {
    let stats = explore(&Config::default(), inverted_order_scenario);
    for report in &stats.reports {
        match report {
            Report::LockOrder { schedule, .. } => {
                // Every report carries a parseable seed.
                let replayed = replay(schedule, inverted_order_scenario);
                assert!(
                    replayed.reports.iter().any(|r| r == report),
                    "seed {schedule} did not reproduce its report"
                );
            }
            other => panic!("unexpected report kind: {other}"),
        }
    }
}
