//! Self-tests for the model checker: each validator is exercised with a
//! known-good and a known-bad scenario, so the engine's model suite can
//! trust a clean report.

use hsched_check::sync::{AtomicBool, AtomicU64, Condvar, Mutex, RwLock};
use hsched_check::{explore, thread, Config, LockClass, Report};
use std::sync::atomic::Ordering;

fn quick() -> Config {
    Config {
        max_interleavings: 50_000,
        max_seconds: 60,
        ..Config::default()
    }
}

#[test]
fn mutex_provides_mutual_exclusion_in_every_interleaving() {
    let stats = explore(&quick(), || {
        let cell = Mutex::new((0u32, false));
        thread::scope(|s| {
            for _ in 0..2 {
                s.spawn(|| {
                    let mut g = cell.lock().unwrap();
                    assert!(!g.1, "two threads inside the critical section");
                    g.1 = true;
                    g.0 += 1;
                    g.1 = false;
                });
            }
        });
        assert_eq!(cell.lock().unwrap().0, 2);
    });
    assert!(stats.reports.is_empty(), "reports: {:?}", stats.reports);
    assert!(stats.exhausted, "tiny space must exhaust: {stats:?}");
    assert!(
        stats.interleavings > 1,
        "exploration found only one interleaving"
    );
}

#[test]
fn misordered_acquisition_reports_cycle_naming_both_classes() {
    let outer = LockClass::ranked("outer", 1, 0);
    let inner = LockClass::ranked("inner", 2, 0);
    let stats = explore(&quick(), move || {
        let a = Mutex::with_class(outer.clone(), ());
        let b = Mutex::with_class(inner.clone(), ());
        thread::scope(|s| {
            s.spawn(|| {
                let _a = a.lock().unwrap();
                let _b = b.lock().unwrap();
            });
            // Inverted order: acquires `outer` while holding `inner`.
            let _b = b.lock().unwrap();
            let _a = a.lock().unwrap();
        });
    });
    let cycle = stats
        .reports
        .iter()
        .find_map(|r| match r {
            Report::LockOrder { acquired, held, .. } => Some((acquired.clone(), held.clone())),
            _ => None,
        })
        .expect("inverted acquisition must produce a lock-order report");
    assert!(
        cycle.0.contains("outer") && cycle.1.contains("inner"),
        "cycle must name both lock classes, got {cycle:?}"
    );
    assert!(stats.failing_schedule.is_some());
}

#[test]
fn rwlock_read_read_is_clean_and_write_excludes() {
    let stats = explore(&quick(), || {
        let table = RwLock::new(vec![1u32, 2, 3]);
        thread::scope(|s| {
            s.spawn(|| {
                let r = table.read().unwrap();
                assert_eq!(r.len(), 3);
            });
            {
                let mut w = table.write().unwrap();
                w.push(4);
                w.pop();
            }
            let r = table.read().unwrap();
            assert_eq!(r.len(), 3);
        });
    });
    assert!(stats.reports.is_empty(), "reports: {:?}", stats.reports);
    assert!(stats.exhausted);
}

#[test]
fn release_acquire_pair_is_race_free() {
    let stats = explore(&quick(), || {
        let flag = AtomicBool::named("flag", false);
        let data = AtomicU64::named("data", 0);
        thread::scope(|s| {
            s.spawn(|| {
                data.store(42, Ordering::Release);
                flag.store(true, Ordering::Release);
            });
            if flag.load(Ordering::Acquire) {
                // The acquire load synchronized with the release store.
                let _ = data.load(Ordering::Acquire);
            }
        });
    });
    assert!(stats.reports.is_empty(), "reports: {:?}", stats.reports);
    assert!(stats.exhausted);
}

#[test]
fn relaxed_publication_is_reported_as_race() {
    // Same shape as above, but the writer publishes with a non-release
    // store: the reader's load can observe it with no happens-before
    // edge, which is exactly the regression the checker must flag.
    let stats = explore(&quick(), || {
        let cell = AtomicU64::named("issued_weak", 0);
        thread::scope(|s| {
            s.spawn(|| {
                cell.store(1, Ordering::Relaxed);
            });
            let _ = cell.load(Ordering::Acquire);
        });
    });
    let race = stats
        .reports
        .iter()
        .find(|r| matches!(r, Report::Race { .. }));
    let Some(Report::Race {
        cell, writer_ord, ..
    }) = race
    else {
        panic!("relaxed publication must race, got {:?}", stats.reports);
    };
    assert_eq!(cell, "issued_weak");
    assert_eq!(writer_ord, "Relaxed");
}

#[test]
fn fetch_add_acqrel_tickets_are_race_free_and_dense() {
    let stats = explore(&quick(), || {
        let counter = AtomicU64::named("tickets", 0);
        thread::scope(|s| {
            for _ in 0..2 {
                s.spawn(|| {
                    let _t = counter.fetch_add(1, Ordering::AcqRel) + 1;
                });
            }
        });
        assert_eq!(counter.load(Ordering::Acquire), 2);
    });
    assert!(stats.reports.is_empty(), "reports: {:?}", stats.reports);
    assert!(stats.exhausted);
}

#[test]
fn missed_wakeup_is_detected_as_deadlock() {
    // The classic lost-wakeup bug: the waiter parks without a predicate
    // to re-check, so if the notifier signals *before* the wait starts,
    // the signal lands in an empty queue and the waiter sleeps forever.
    // Some interleaving must deadlock, and the checker must name the
    // parked thread and its condvar.
    let stats = explore(&quick(), || {
        let state = Mutex::with_class(LockClass::ranked("state", 1, 0), ());
        let cv = Condvar::named("state_changed");
        thread::scope(|s| {
            s.spawn(|| {
                let g = state.lock().unwrap();
                // BUG under test: unconditional wait — an early notify
                // is lost and nothing will ever signal again.
                let _g = cv.wait(g).unwrap();
            });
            cv.notify_one();
        });
    });
    let deadlock = stats
        .reports
        .iter()
        .find(|r| matches!(r, Report::Deadlock { .. }));
    let Some(Report::Deadlock { blocked, .. }) = deadlock else {
        panic!("lost wakeup must deadlock some interleaving: {stats:?}");
    };
    assert!(
        blocked.iter().any(|b| b.contains("state_changed")),
        "deadlock report must name the condvar: {blocked:?}"
    );
}

#[test]
fn condvar_wait_holding_second_lock_is_reported() {
    let stats = explore(&quick(), || {
        let extra = Mutex::with_class(LockClass::ranked("extra", 1, 0), ());
        let state = Mutex::with_class(LockClass::ranked("state", 2, 0), false);
        let cv = Condvar::named("state_changed");
        thread::scope(|s| {
            s.spawn(|| {
                let _extra = extra.lock().unwrap();
                let g = state.lock().unwrap();
                if !*g {
                    // Sleeping while still holding `extra`.
                    let _g = cv.wait(g).unwrap();
                }
            });
            {
                let mut g = state.lock().unwrap();
                *g = true;
            }
            cv.notify_all();
        });
    });
    let hold = stats
        .reports
        .iter()
        .find(|r| matches!(r, Report::CondvarHold { .. }));
    let Some(Report::CondvarHold { also_held, .. }) = hold else {
        panic!("waiting with a second lock held must be reported: {stats:?}");
    };
    assert!(also_held.iter().any(|h| h.contains("extra")));
}

#[test]
fn at_most_one_class_rejects_two_members_held_together() {
    let stats = explore(&quick(), || {
        let cell_a = Mutex::with_class(LockClass::ranked("slot cell", 4, 0).singular(), ());
        let cell_b = Mutex::with_class(LockClass::ranked("slot cell", 4, 1).singular(), ());
        let _a = cell_a.lock().unwrap();
        let _b = cell_b.lock().unwrap();
    });
    assert!(
        stats
            .reports
            .iter()
            .any(|r| matches!(r, Report::LockOrder { .. })),
        "two transient cells held together must be reported: {stats:?}"
    );
}

#[test]
fn exempt_under_write_allows_cells_under_the_table_write_lock() {
    let stats = explore(&quick(), || {
        let table = RwLock::with_class(LockClass::ranked("slot table", 3, 0), ());
        let cell_a = Mutex::with_class(
            LockClass::ranked("slot cell", 4, 0)
                .singular()
                .exempt_under_write(3),
            (),
        );
        let cell_b = Mutex::with_class(
            LockClass::ranked("slot cell", 4, 1)
                .singular()
                .exempt_under_write(3),
            (),
        );
        let _w = table.write().unwrap();
        // Under the table's write lock the whole slot vector is private
        // to this thread; holding several cells is safe and exempt.
        let _a = cell_a.lock().unwrap();
        let _b = cell_b.lock().unwrap();
    });
    assert!(stats.reports.is_empty(), "reports: {:?}", stats.reports);
}

#[test]
fn thread_panic_is_reported_not_hung() {
    let stats = explore(&quick(), || {
        let cell = Mutex::new(0u32);
        thread::scope(|s| {
            s.spawn(|| {
                let _g = cell.lock().unwrap();
                if true {
                    panic!("injected failure");
                }
            });
        });
        // The poisoning panic must not leak into later acquisitions:
        // shim locks never return Err.
        let _g = cell.lock().unwrap();
    });
    assert!(
        stats
            .reports
            .iter()
            .any(|r| matches!(r, Report::Panic { message, .. } if message.contains("injected"))),
        "panics inside model threads must be reported: {stats:?}"
    );
}

#[test]
fn shims_pass_through_outside_explorations() {
    // No execution active: the shims must behave as the real primitives.
    let cell = Mutex::new(5u32);
    *cell.lock().unwrap() += 1;
    let table = RwLock::new(1u32);
    assert_eq!(*table.read().unwrap(), 1);
    let counter = AtomicU64::new(0);
    counter.fetch_add(3, Ordering::AcqRel);
    assert_eq!(counter.load(Ordering::Acquire), 3);
    let flag = AtomicBool::new(false);
    assert!(!flag.swap(true, Ordering::AcqRel));
    std::thread::scope(|s| {
        s.spawn(|| {
            *cell.lock().unwrap() += 1;
        });
    });
    assert_eq!(*cell.lock().unwrap(), 7);
}
