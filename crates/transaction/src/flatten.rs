//! The §2.4 transformation: components + bindings → transactions.

use crate::model::{Task, Transaction, TransactionSet};
use hsched_model::{Action, InstanceId, System, ThreadActivation, ThreadSpec, ValidationError};
use hsched_platform::PlatformSet;

/// Errors of [`flatten`].
#[derive(Debug, Clone, PartialEq)]
pub enum FlattenError {
    /// The system failed [`System::validate`]; flattening requires a valid
    /// system (complete bindings, acyclic call graph, sane timing).
    Invalid(Vec<ValidationError>),
    /// Task platform ids and the given platform set disagree.
    PlatformMismatch(String),
}

impl std::fmt::Display for FlattenError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FlattenError::Invalid(errors) => {
                writeln!(f, "system validation failed:")?;
                for e in errors {
                    writeln!(f, "  - {e}")?;
                }
                Ok(())
            }
            FlattenError::PlatformMismatch(m) => write!(f, "{m}"),
        }
    }
}

impl std::error::Error for FlattenError {}

/// Options controlling the transformation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlattenOptions {
    /// Generate a sporadic transaction (period = MIT, deadline = MIT) for
    /// every provided method that has a realizer but is not bound by any
    /// component in the system — the external service surface. The paper's
    /// Γ4 (`Integrator.read()` exercised by an unmodelled client every
    /// 70 ms) arises this way.
    pub external_stimuli: bool,
}

impl Default for FlattenOptions {
    fn default() -> FlattenOptions {
        FlattenOptions {
            external_stimuli: true,
        }
    }
}

/// Transforms a validated component system into a [`TransactionSet`]
/// following §2.4:
///
/// * each periodic thread originates one transaction;
/// * `Execute` actions become tasks on the instance's platform with the
///   thread's priority;
/// * `Call` actions inline the bound callee realizer's body recursively;
///   cross-node calls wrap the inlined body in request/response message
///   tasks on the binding's network platform;
/// * optionally, unbound provided methods become sporadic transactions at
///   their MIT (see [`FlattenOptions::external_stimuli`]).
pub fn flatten(
    system: &System,
    platforms: &PlatformSet,
    options: FlattenOptions,
) -> Result<TransactionSet, FlattenError> {
    flatten_annotated(system, platforms, options).map(|(set, _)| set)
}

/// [`flatten`], additionally reporting which instance *originated* each
/// transaction (the instance whose periodic thread or provided method
/// triggers it — inlined callee tasks do not change the origin). The vector
/// is index-aligned with the returned set's transactions.
///
/// Online admission uses the annotation to retire every transaction of a
/// departing component without string-matching on generated names.
pub fn flatten_annotated(
    system: &System,
    platforms: &PlatformSet,
    options: FlattenOptions,
) -> Result<(TransactionSet, Vec<InstanceId>), FlattenError> {
    let report = system.validate();
    if !report.is_ok() {
        return Err(FlattenError::Invalid(report.errors));
    }

    let mut transactions = Vec::new();
    let mut origins = Vec::new();

    for (id, inst) in system.instances() {
        let class = system.class_of(id);
        for thread in &class.threads {
            if let ThreadActivation::Periodic { period, deadline } = thread.activation {
                let mut tasks = Vec::new();
                inline_thread(system, id, thread, &mut tasks);
                let tx = Transaction::new(
                    format!("{}.{}", inst.name, thread.name),
                    period,
                    deadline,
                    tasks,
                )
                .map_err(FlattenError::PlatformMismatch)?;
                transactions.push(tx);
                origins.push(id);
            }
        }
    }

    if options.external_stimuli {
        // Provided methods nobody binds: sporadic stimulus at the MIT.
        for (id, inst) in system.instances() {
            let class = system.class_of(id);
            for provided in &class.provided {
                let bound = system
                    .bindings
                    .iter()
                    .any(|b| b.to == id && b.provided == provided.name);
                if bound {
                    continue;
                }
                let Some(realizer) = class.realizer_of(&provided.name) else {
                    continue; // dead interface with no realizer: nothing runs
                };
                let mut tasks = Vec::new();
                inline_thread(system, id, realizer, &mut tasks);
                if tasks.is_empty() {
                    continue;
                }
                let tx = Transaction::new(
                    format!("{}.{}", inst.name, provided.name),
                    provided.mit,
                    provided.mit,
                    tasks,
                )
                .map_err(FlattenError::PlatformMismatch)?;
                transactions.push(tx);
                origins.push(id);
            }
        }
    }

    let set = TransactionSet::new(platforms.clone(), transactions)
        .map_err(FlattenError::PlatformMismatch)?;
    Ok((set, origins))
}

/// Appends the tasks of `thread` (running in `instance`) to `out`, inlining
/// synchronous calls. Recursion terminates because validation rejects call
/// cycles.
fn inline_thread(system: &System, instance: InstanceId, thread: &ThreadSpec, out: &mut Vec<Task>) {
    let inst = &system.instances[instance.0];
    for action in &thread.body {
        match action {
            Action::Execute { name, wcet, bcet } => {
                out.push(Task::new(
                    format!("{}.{}.{}", inst.name, thread.name, name),
                    *wcet,
                    *bcet,
                    thread.priority,
                    inst.platform,
                ));
            }
            Action::Call(method) => {
                let binding = system
                    .binding_for(instance, &method.0)
                    .expect("validated systems have complete bindings");
                let callee_id = binding.to;
                let callee_class = system.class_of(callee_id);
                let realizer = callee_class
                    .realizer_of(&binding.provided)
                    .expect("validated bindings target realized methods");
                if let Some(link) = &binding.link {
                    out.push(Task::message(
                        format!("{}.{}.request", inst.name, method.0),
                        link.request_wcet,
                        link.request_bcet,
                        link.priority,
                        link.network,
                    ));
                    inline_thread(system, callee_id, realizer, out);
                    out.push(Task::message(
                        format!("{}.{}.response", inst.name, method.0),
                        link.response_wcet,
                        link.response_bcet,
                        link.priority,
                        link.network,
                    ));
                } else {
                    inline_thread(system, callee_id, realizer, out);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::TaskKind;
    use hsched_model::{
        ComponentClass, ProvidedMethod, RequiredMethod, RpcLink, SystemBuilder, ThreadSpec,
    };
    use hsched_numeric::rat;
    use hsched_platform::{paper_platforms, Platform, PlatformId};

    fn paper_system() -> (System, PlatformSet) {
        let (platforms, [p1, p2, p3]) = paper_platforms();
        let mut b = SystemBuilder::new();
        let reading = b.add_class(hsched_model_sensor_reading());
        let integration = b.add_class(hsched_model_sensor_integration());
        let s1 = b.instantiate("Sensor1", reading, p1, 0);
        let s2 = b.instantiate("Sensor2", reading, p2, 0);
        let it = b.instantiate("Integrator", integration, p3, 0);
        b.bind(it, "readSensor1", s1, "read");
        b.bind(it, "readSensor2", s2, "read");
        (b.build(), platforms)
    }

    // Local copies of the Figure 1/2 classes (the model crate exposes them
    // only in its own tests; examples rebuild them via the public API).
    fn hsched_model_sensor_reading() -> ComponentClass {
        ComponentClass::new("SensorReading")
            .provides(ProvidedMethod::new("read", rat(50, 1)))
            .thread(ThreadSpec::periodic(
                "Thread1",
                rat(15, 1),
                2,
                vec![Action::task("acquire", rat(1, 1), rat(1, 4))],
            ))
            .thread(ThreadSpec::realizes(
                "Thread2",
                "read",
                1,
                vec![Action::task("serve_read", rat(1, 1), rat(4, 5))],
            ))
    }

    fn hsched_model_sensor_integration() -> ComponentClass {
        ComponentClass::new("SensorIntegration")
            .provides(ProvidedMethod::new("read", rat(70, 1)))
            .requires(RequiredMethod::derived("readSensor1"))
            .requires(RequiredMethod::derived("readSensor2"))
            .thread(ThreadSpec::realizes(
                "Thread1",
                "read",
                1,
                vec![Action::task("serve_read", rat(7, 1), rat(5, 1))],
            ))
            .thread(ThreadSpec::periodic(
                "Thread2",
                rat(50, 1),
                2,
                vec![
                    Action::task("init", rat(1, 1), rat(4, 5)),
                    Action::call("readSensor1"),
                    Action::call("readSensor2"),
                    Action::task("compute", rat(1, 1), rat(4, 5)),
                ],
            ))
    }

    #[test]
    fn paper_system_flattens_to_four_transactions() {
        let (system, platforms) = paper_system();
        let set = flatten(&system, &platforms, FlattenOptions::default()).unwrap();
        let names: Vec<&str> = set.transactions().iter().map(|t| t.name.as_str()).collect();
        assert_eq!(
            names,
            [
                "Sensor1.Thread1",
                "Sensor2.Thread1",
                "Integrator.Thread2",
                "Integrator.read"
            ]
        );
        // Γ from Integrator.Thread2: init, Sensor1 read, Sensor2 read, compute.
        let gamma1 = &set.transactions()[2];
        assert_eq!(gamma1.period, rat(50, 1));
        let task_names: Vec<&str> = gamma1.tasks().iter().map(|t| t.name.as_str()).collect();
        assert_eq!(
            task_names,
            [
                "Integrator.Thread2.init",
                "Sensor1.Thread2.serve_read",
                "Sensor2.Thread2.serve_read",
                "Integrator.Thread2.compute"
            ]
        );
        // Platform mapping: Π3, Π1, Π2, Π3 (Figure 5).
        let plats: Vec<usize> = gamma1.tasks().iter().map(|t| t.platform.0).collect();
        assert_eq!(plats, [2, 0, 1, 2]);
        // The external stimulus Γ4 at MIT 70.
        let gamma4 = &set.transactions()[3];
        assert_eq!(gamma4.period, rat(70, 1));
        assert_eq!(gamma4.deadline, rat(70, 1));
        assert_eq!(gamma4.tasks().len(), 1);
        assert_eq!(gamma4.tasks()[0].wcet, rat(7, 1));
    }

    #[test]
    fn annotated_flatten_reports_origin_instances() {
        let (system, platforms) = paper_system();
        let (set, origins) =
            flatten_annotated(&system, &platforms, FlattenOptions::default()).unwrap();
        assert_eq!(origins.len(), set.transactions().len());
        let names: Vec<&str> = origins
            .iter()
            .map(|id| system.instances[id.0].name.as_str())
            .collect();
        // Sensor1.Thread1, Sensor2.Thread1, Integrator.Thread2, Integrator.read
        assert_eq!(names, ["Sensor1", "Sensor2", "Integrator", "Integrator"]);
    }

    #[test]
    fn external_stimuli_can_be_disabled() {
        let (system, platforms) = paper_system();
        let set = flatten(
            &system,
            &platforms,
            FlattenOptions {
                external_stimuli: false,
            },
        )
        .unwrap();
        assert_eq!(set.transactions().len(), 3);
    }

    #[test]
    fn invalid_system_is_rejected() {
        let (platforms, _) = paper_platforms();
        let mut b = SystemBuilder::new();
        let integration = b.add_class(hsched_model_sensor_integration());
        b.instantiate("Lonely", integration, PlatformId(2), 0);
        // required methods unbound → validation errors
        let err = flatten(&b.build(), &platforms, FlattenOptions::default()).unwrap_err();
        match err {
            FlattenError::Invalid(errors) => assert!(!errors.is_empty()),
            other => panic!("expected Invalid, got {other}"),
        }
    }

    #[test]
    fn cross_node_calls_insert_message_tasks() {
        let (mut platforms, [p1, _, p3]) = paper_platforms();
        let net = platforms.add(Platform::network("CAN", rat(1, 2), rat(1, 1), rat(0, 1)).unwrap());
        let mut b = SystemBuilder::new();
        let reading = b.add_class(hsched_model_sensor_reading());
        let integration = b.add_class(hsched_model_sensor_integration());
        let s1 = b.instantiate("Sensor1", reading, p1, 0);
        let s2 = b.instantiate("Sensor2", reading, p1, 1); // node 1!
        let it = b.instantiate("Integrator", integration, p3, 0);
        b.bind(it, "readSensor1", s1, "read");
        b.bind_remote(
            it,
            "readSensor2",
            s2,
            "read",
            RpcLink {
                network: net,
                request_wcet: rat(1, 2),
                request_bcet: rat(1, 4),
                response_wcet: rat(3, 4),
                response_bcet: rat(1, 2),
                priority: 5,
            },
        );
        let set = flatten(&b.build(), &platforms, FlattenOptions::default()).unwrap();
        let gamma = set
            .transactions()
            .iter()
            .find(|t| t.name == "Integrator.Thread2")
            .unwrap();
        let names: Vec<&str> = gamma.tasks().iter().map(|t| t.name.as_str()).collect();
        assert_eq!(
            names,
            [
                "Integrator.Thread2.init",
                "Sensor1.Thread2.serve_read",
                "Integrator.readSensor2.request",
                "Sensor2.Thread2.serve_read",
                "Integrator.readSensor2.response",
                "Integrator.Thread2.compute"
            ]
        );
        let req = &gamma.tasks()[2];
        assert_eq!(req.kind, TaskKind::Message);
        assert_eq!(req.platform, net);
        assert_eq!(req.priority, 5);
        assert_eq!(req.wcet, rat(1, 2));
        let resp = &gamma.tasks()[4];
        assert_eq!(resp.wcet, rat(3, 4));
    }

    #[test]
    fn nested_rpc_chains_inline_transitively() {
        // A → B → C: A's periodic thread calls B.get, whose realizer calls
        // C.fetch. The flattened chain interleaves all three components.
        let c_class = ComponentClass::new("C")
            .provides(ProvidedMethod::new("fetch", rat(100, 1)))
            .thread(ThreadSpec::realizes(
                "R",
                "fetch",
                1,
                vec![Action::task("leaf", rat(1, 1), rat(1, 1))],
            ));
        let b_class = ComponentClass::new("B")
            .provides(ProvidedMethod::new("get", rat(100, 1)))
            .requires(RequiredMethod::derived("fetch"))
            .thread(ThreadSpec::realizes(
                "R",
                "get",
                2,
                vec![
                    Action::task("pre", rat(1, 2), rat(1, 2)),
                    Action::call("fetch"),
                    Action::task("post", rat(1, 2), rat(1, 2)),
                ],
            ));
        let a_class = ComponentClass::new("A")
            .requires(RequiredMethod::derived("get"))
            .thread(ThreadSpec::periodic(
                "P",
                rat(100, 1),
                3,
                vec![Action::call("get")],
            ));
        let mut platforms = PlatformSet::new();
        let p = platforms.add(Platform::dedicated("cpu"));
        let mut builder = SystemBuilder::new();
        let (ca, cb, cc) = (
            builder.add_class(a_class),
            builder.add_class(b_class),
            builder.add_class(c_class),
        );
        let ia = builder.instantiate("a", ca, p, 0);
        let ib = builder.instantiate("b", cb, p, 0);
        let ic = builder.instantiate("c", cc, p, 0);
        builder.bind(ia, "get", ib, "get");
        builder.bind(ib, "fetch", ic, "fetch");
        let set = flatten(&builder.build(), &platforms, FlattenOptions::default()).unwrap();
        let tx = &set.transactions()[0];
        let names: Vec<&str> = tx.tasks().iter().map(|t| t.name.as_str()).collect();
        assert_eq!(names, ["b.R.pre", "c.R.leaf", "b.R.post"]);
        // Priorities follow the executing thread, not the caller.
        let prios: Vec<u32> = tx.tasks().iter().map(|t| t.priority).collect();
        assert_eq!(prios, [2, 1, 2]);
    }
}
