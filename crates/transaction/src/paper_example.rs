//! The paper's worked example exactly as published: the transactions of
//! Figure 5 with the parameters of Tables 1 and 2.
//!
//! Note that Table 1 assigns *per-task* priorities that renumber (but
//! preserve the order of) the thread priorities of Figures 1–2, and gives
//! `compute` (τ1,4) a priority distinct from `init` (τ1,1) even though both
//! belong to `Integrator.Thread2`. This module reproduces the published
//! numbers verbatim; the general [`crate::flatten`] path derives priorities
//! from threads instead (which yields the same response times for this
//! example — the offsets already separate τ1,1 and τ1,4).

use crate::model::{Task, Transaction, TransactionSet};
use hsched_numeric::rat;
use hsched_platform::paper_platforms;

/// Builds the four transactions of Figure 5 / Table 1:
///
/// | Task | Platform | Cbest | C | T | D | p | φmin |
/// |------|----------|-------|---|---|---|---|------|
/// | τ1,1 | Π3 | 0.8 | 1 | 50 | 50 | 2 | 0 |
/// | τ1,2 | Π1 | 0.8 | 1 | 50 | 50 | 1 | 3 |
/// | τ1,3 | Π2 | 0.8 | 1 | 50 | 50 | 1 | 4 |
/// | τ1,4 | Π3 | 0.8 | 1 | 50 | 50 | 3 | 5 |
/// | τ2,1 | Π1 | 0.25 | 1 | 15 | 15 | 3 | 0 |
/// | τ3,1 | Π2 | 0.25 | 1 | 15 | 15 | 3 | 0 |
/// | τ4,1 | Π3 | 5 | 7 | 70 | 70 | 1 | 0 |
///
/// (φmin is derived by the analysis, not stored here.)
pub fn transactions() -> TransactionSet {
    let (platforms, [p1, p2, p3]) = paper_platforms();
    let gamma1 = Transaction::new(
        "Integrator.Thread2",
        rat(50, 1),
        rat(50, 1),
        vec![
            Task::new("init", rat(1, 1), rat(4, 5), 2, p3),
            Task::new("Sensor1.read", rat(1, 1), rat(4, 5), 1, p1),
            Task::new("Sensor2.read", rat(1, 1), rat(4, 5), 1, p2),
            Task::new("compute", rat(1, 1), rat(4, 5), 3, p3),
        ],
    )
    .expect("valid");
    let gamma2 = Transaction::new(
        "Sensor1.Thread1",
        rat(15, 1),
        rat(15, 1),
        vec![Task::new("acquire", rat(1, 1), rat(1, 4), 3, p1)],
    )
    .expect("valid");
    let gamma3 = Transaction::new(
        "Sensor2.Thread1",
        rat(15, 1),
        rat(15, 1),
        vec![Task::new("acquire", rat(1, 1), rat(1, 4), 3, p2)],
    )
    .expect("valid");
    let gamma4 = Transaction::new(
        "Integrator.read",
        rat(70, 1),
        rat(70, 1),
        vec![Task::new("serve_read", rat(7, 1), rat(5, 1), 1, p3)],
    )
    .expect("valid");
    TransactionSet::new(platforms, vec![gamma1, gamma2, gamma3, gamma4]).expect("valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::TaskRef;
    use hsched_numeric::Rational;

    #[test]
    fn matches_table1() {
        let set = transactions();
        assert_eq!(set.transactions().len(), 4);
        assert_eq!(set.num_tasks(), 7);
        let g1 = &set.transactions()[0];
        assert_eq!(g1.period, rat(50, 1));
        assert_eq!(g1.deadline, rat(50, 1));
        let prios: Vec<u32> = g1.tasks().iter().map(|t| t.priority).collect();
        assert_eq!(prios, [2, 1, 1, 3]);
        let platforms: Vec<usize> = g1.tasks().iter().map(|t| t.platform.0).collect();
        assert_eq!(platforms, [2, 0, 1, 2]);
        for t in g1.tasks() {
            assert_eq!(t.wcet, Rational::ONE);
            assert_eq!(t.bcet, rat(4, 5));
        }
        assert_eq!(set.transactions()[3].tasks()[0].wcet, rat(7, 1));
        assert_eq!(set.transactions()[3].tasks()[0].bcet, rat(5, 1));
    }

    #[test]
    fn utilization_within_platform_rates() {
        // Sanity: the example is not overloaded (necessary condition holds).
        let set = transactions();
        assert!(set.overloaded_platforms().is_empty());
        let u = set.platform_utilization();
        // Π1: 1/50 + 1/15 = 13/150 ≤ 0.4; Π3: 1/50 + 1/50 + 7/70 = 0.14 ≤ 0.2.
        assert_eq!(u[0], rat(13, 150));
        assert_eq!(u[2], rat(7, 50));
    }

    #[test]
    fn task_ref_display_matches_paper_numbering() {
        let set = transactions();
        let refs: Vec<TaskRef> = set.task_refs().collect();
        assert_eq!(refs[3].to_string(), "τ1,4");
        assert_eq!(set.task(refs[3]).name, "compute");
        assert_eq!(refs[6].to_string(), "τ4,1");
    }
}
