//! Task / transaction data model (Figure 4 of the paper).

use hsched_numeric::{Cycles, Rational, Time};
use hsched_platform::{PlatformId, PlatformSet};
use std::collections::HashMap;

/// Whether a task models component code or an RPC message in flight.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum TaskKind {
    /// A piece of component code on a CPU platform.
    Computation,
    /// A message "executed" on a network platform (§2.4: "messages can
    /// simply be modeled by considering additional tasks").
    Message,
}

/// One task τi,j of a transaction.
///
/// Offsets `φ` and jitters `J` are *analysis state*, not structure: the
/// holistic iteration of §3.2 derives them from response times (Eq. 18).
/// They are therefore not stored here; the analysis crate keeps its own
/// per-task state vector.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Task {
    /// Human-readable name, e.g. `Integrator.Thread2.init`.
    pub name: String,
    /// Worst-case execution time `Ci,j` (cycles).
    pub wcet: Cycles,
    /// Best-case execution time `Cbest_i,j ≤ Ci,j` (cycles).
    pub bcet: Cycles,
    /// Priority `pi,j` — greater is higher, compared only among tasks on the
    /// same platform.
    pub priority: u32,
    /// The platform `Π_{si,j}` this task executes on.
    pub platform: PlatformId,
    /// Code or message.
    pub kind: TaskKind,
}

impl Task {
    /// A computation task.
    pub fn new(
        name: impl Into<String>,
        wcet: Cycles,
        bcet: Cycles,
        priority: u32,
        platform: PlatformId,
    ) -> Task {
        Task {
            name: name.into(),
            wcet,
            bcet,
            priority,
            platform,
            kind: TaskKind::Computation,
        }
    }

    /// A message task on a network platform.
    pub fn message(
        name: impl Into<String>,
        wcet: Cycles,
        bcet: Cycles,
        priority: u32,
        network: PlatformId,
    ) -> Task {
        Task {
            name: name.into(),
            wcet,
            bcet,
            priority,
            platform: network,
            kind: TaskKind::Message,
        }
    }
}

/// A transaction Γi: an event stream with period/MIT `T`, end-to-end
/// deadline `D`, and an ordered chain of tasks.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Transaction {
    /// Name, e.g. `Integrator.Thread2` (the originating thread).
    pub name: String,
    /// Period (periodic threads) or MIT (sporadic/external stimuli).
    pub period: Time,
    /// End-to-end relative deadline: the last task must finish within `D`
    /// of the transaction's activation.
    pub deadline: Time,
    /// Release jitter of the triggering event: the first task may be
    /// released up to this much after the nominal periodic activation
    /// (0 for strictly periodic streams — the paper's examples). Responses
    /// are still measured from the *nominal* activation.
    pub release_jitter: Time,
    tasks: Vec<Task>,
}

impl Transaction {
    /// Creates a transaction; `tasks` must be non-empty and is the
    /// precedence order.
    pub fn new(
        name: impl Into<String>,
        period: Time,
        deadline: Time,
        tasks: Vec<Task>,
    ) -> Result<Transaction, String> {
        if tasks.is_empty() {
            return Err("a transaction needs at least one task".into());
        }
        if !period.is_positive() {
            return Err(format!("transaction period must be positive, got {period}"));
        }
        if !deadline.is_positive() {
            return Err(format!(
                "transaction deadline must be positive, got {deadline}"
            ));
        }
        for t in &tasks {
            if !t.wcet.is_positive() {
                return Err(format!("task `{}` has non-positive wcet", t.name));
            }
            if t.bcet.is_negative() || t.bcet > t.wcet {
                return Err(format!("task `{}` has bcet outside [0, wcet]", t.name));
            }
        }
        Ok(Transaction {
            name: name.into(),
            period,
            deadline,
            release_jitter: Time::ZERO,
            tasks,
        })
    }

    /// Sets the release jitter of the triggering event (builder style).
    ///
    /// # Panics
    ///
    /// Panics on negative jitter.
    pub fn with_release_jitter(mut self, jitter: Time) -> Transaction {
        assert!(!jitter.is_negative(), "release jitter must be ≥ 0");
        self.release_jitter = jitter;
        self
    }

    /// The ordered task chain.
    #[inline]
    pub fn tasks(&self) -> &[Task] {
        &self.tasks
    }

    /// Number of tasks `ni`.
    #[inline]
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// Always false (constructor rejects empty chains); provided for clippy
    /// symmetry with [`Transaction::len`].
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    /// Total worst-case demand of the chain in cycles.
    pub fn total_wcet(&self) -> Cycles {
        self.tasks.iter().map(|t| t.wcet).sum()
    }
}

/// Reference to a task: transaction index `i` and position `j` (0-based,
/// unlike the paper's 1-based τi,j — display adds 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct TaskRef {
    /// Transaction index.
    pub tx: usize,
    /// Task position within the transaction.
    pub idx: usize,
}

impl std::fmt::Display for TaskRef {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "τ{},{}", self.tx + 1, self.idx + 1)
    }
}

/// The full analyzable system: transactions plus the platform set they map
/// onto.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct TransactionSet {
    platforms: PlatformSet,
    transactions: Vec<Transaction>,
    /// Name → index of the *first* transaction with that name, kept in sync
    /// by every mutator so [`TransactionSet::transaction_index`] is O(1)
    /// (online admission resolves every request through it).
    index: HashMap<String, usize>,
}

impl TransactionSet {
    /// Bundles transactions with their platforms, checking that every task's
    /// platform id is in range.
    pub fn new(
        platforms: PlatformSet,
        transactions: Vec<Transaction>,
    ) -> Result<TransactionSet, String> {
        for tx in &transactions {
            for task in tx.tasks() {
                if platforms.get(task.platform).is_none() {
                    return Err(format!(
                        "task `{}` maps to unknown platform {}",
                        task.name, task.platform
                    ));
                }
            }
        }
        Ok(TransactionSet {
            platforms,
            index: build_index(&transactions),
            transactions,
        })
    }

    /// The platforms.
    #[inline]
    pub fn platforms(&self) -> &PlatformSet {
        &self.platforms
    }

    /// The transactions.
    #[inline]
    pub fn transactions(&self) -> &[Transaction] {
        &self.transactions
    }

    /// The task behind a reference.
    #[inline]
    pub fn task(&self, r: TaskRef) -> &Task {
        &self.transactions[r.tx].tasks()[r.idx]
    }

    /// Iterates every task reference in the system.
    pub fn task_refs(&self) -> impl Iterator<Item = TaskRef> + '_ {
        self.transactions
            .iter()
            .enumerate()
            .flat_map(|(i, tx)| (0..tx.len()).map(move |j| TaskRef { tx: i, idx: j }))
    }

    /// Total number of tasks.
    pub fn num_tasks(&self) -> usize {
        self.transactions.iter().map(|t| t.len()).sum()
    }

    /// Demand utilization of each platform: `Σ_{si,j = k} Ci,j / Ti`,
    /// in cycles per time unit. The necessary schedulability condition is
    /// `utilization(k) ≤ α_k` for every platform.
    pub fn platform_utilization(&self) -> Vec<Rational> {
        let mut u = vec![Rational::ZERO; self.platforms.len()];
        for tx in &self.transactions {
            for task in tx.tasks() {
                u[task.platform.0] += task.wcet / tx.period;
            }
        }
        u
    }

    /// Checks the necessary condition `U_k ≤ α_k` on every platform,
    /// returning the ids of overloaded platforms.
    pub fn overloaded_platforms(&self) -> Vec<PlatformId> {
        self.platform_utilization()
            .into_iter()
            .enumerate()
            .filter_map(|(k, u)| {
                let id = PlatformId(k);
                (u > self.platforms[id].alpha()).then_some(id)
            })
            .collect()
    }

    /// Replaces the platform set (design-space exploration): the structure
    /// of the transactions is unchanged.
    pub fn with_platforms(&self, platforms: PlatformSet) -> Result<TransactionSet, String> {
        TransactionSet::new(platforms, self.transactions.clone())
    }

    /// Index of the first transaction with the given name. O(1) via the
    /// maintained name index.
    pub fn transaction_index(&self, name: &str) -> Option<usize> {
        self.index.get(name).copied()
    }

    /// Appends a transaction, validating its platform references against the
    /// set. Returns the new transaction's index. This is the arrival half of
    /// online admission: the set mutates in place instead of being rebuilt.
    pub fn push_transaction(&mut self, tx: Transaction) -> Result<usize, String> {
        for task in tx.tasks() {
            if self.platforms.get(task.platform).is_none() {
                return Err(format!(
                    "task `{}` maps to unknown platform {}",
                    task.name, task.platform
                ));
            }
        }
        let at = self.transactions.len();
        self.index.entry(tx.name.clone()).or_insert(at);
        self.transactions.push(tx);
        Ok(at)
    }

    /// Removes and returns the transaction at `index`; later indices shift
    /// down by one. The departure half of online admission (and of admission
    /// rollback, which undoes an arrival without rebuilding the set).
    pub fn remove_transaction(&mut self, index: usize) -> Result<Transaction, String> {
        if index >= self.transactions.len() {
            return Err(format!(
                "transaction index {index} out of range (set has {})",
                self.transactions.len()
            ));
        }
        let removed = self.transactions.remove(index);
        let was_first = self.index.get(&removed.name) == Some(&index);
        if was_first {
            self.index.remove(&removed.name);
        }
        for slot in self.index.values_mut() {
            if *slot > index {
                *slot -= 1;
            }
        }
        if was_first {
            // Duplicate names are legal in a raw set: promote the next
            // occurrence (rare; only sets built outside admission have dups).
            if let Some(next) = self
                .transactions
                .iter()
                .position(|t| t.name == removed.name)
            {
                self.index.insert(removed.name.clone(), next);
            }
        }
        Ok(removed)
    }

    /// Re-inserts a transaction at `index`, shifting later indices up by
    /// one — the exact inverse of [`TransactionSet::remove_transaction`],
    /// used by the admission undo log to roll a rejected batch back without
    /// snapshotting the whole set.
    pub fn insert_transaction(&mut self, index: usize, tx: Transaction) -> Result<(), String> {
        if index > self.transactions.len() {
            return Err(format!(
                "insert index {index} out of range (set has {})",
                self.transactions.len()
            ));
        }
        for task in tx.tasks() {
            if self.platforms.get(task.platform).is_none() {
                return Err(format!(
                    "task `{}` maps to unknown platform {}",
                    task.name, task.platform
                ));
            }
        }
        for slot in self.index.values_mut() {
            if *slot >= index {
                *slot += 1;
            }
        }
        match self.index.get(&tx.name) {
            Some(&first) if first < index => {}
            _ => {
                self.index.insert(tx.name.clone(), index);
            }
        }
        self.transactions.insert(index, tx);
        Ok(())
    }

    /// Removes the first transaction with the given name.
    pub fn remove_transaction_by_name(&mut self, name: &str) -> Result<Transaction, String> {
        let index = self
            .transaction_index(name)
            .ok_or_else(|| format!("no transaction named `{name}`"))?;
        self.remove_transaction(index)
    }

    /// Replaces the platform at `id` in place — the retune operation of
    /// online admission. Task→platform references are by id, so the
    /// transactions are untouched; only the service parameters change.
    pub fn replace_platform(
        &mut self,
        id: PlatformId,
        platform: hsched_platform::Platform,
    ) -> Result<(), String> {
        if self.platforms.get(id).is_none() {
            return Err(format!("platform {id} out of range"));
        }
        self.platforms.replace(id, platform);
        Ok(())
    }
}

/// First-occurrence name index of a transaction list.
fn build_index(transactions: &[Transaction]) -> HashMap<String, usize> {
    let mut index = HashMap::with_capacity(transactions.len());
    for (i, tx) in transactions.iter().enumerate() {
        index.entry(tx.name.clone()).or_insert(i);
    }
    index
}

#[cfg(test)]
mod tests {
    use super::*;
    use hsched_numeric::rat;
    use hsched_platform::Platform;

    fn one_platform() -> PlatformSet {
        let mut set = PlatformSet::new();
        set.add(Platform::dedicated("cpu"));
        set
    }

    #[test]
    fn transaction_validation() {
        let ok = Transaction::new(
            "t",
            rat(10, 1),
            rat(10, 1),
            vec![Task::new("a", rat(1, 1), rat(1, 2), 1, PlatformId(0))],
        );
        assert!(ok.is_ok());
        assert!(Transaction::new("t", rat(10, 1), rat(10, 1), vec![]).is_err());
        assert!(Transaction::new(
            "t",
            rat(0, 1),
            rat(10, 1),
            vec![Task::new("a", rat(1, 1), rat(1, 2), 1, PlatformId(0))]
        )
        .is_err());
        assert!(Transaction::new(
            "t",
            rat(10, 1),
            rat(10, 1),
            vec![Task::new("a", rat(1, 1), rat(2, 1), 1, PlatformId(0))] // bcet > wcet
        )
        .is_err());
        assert!(Transaction::new(
            "t",
            rat(10, 1),
            rat(10, 1),
            vec![Task::new("a", rat(0, 1), rat(0, 1), 1, PlatformId(0))] // zero wcet
        )
        .is_err());
    }

    #[test]
    fn set_rejects_unknown_platform() {
        let tx = Transaction::new(
            "t",
            rat(10, 1),
            rat(10, 1),
            vec![Task::new("a", rat(1, 1), rat(1, 2), 1, PlatformId(5))],
        )
        .unwrap();
        assert!(TransactionSet::new(one_platform(), vec![tx]).is_err());
    }

    #[test]
    fn utilization_and_overload() {
        let mut platforms = PlatformSet::new();
        let p = platforms.add(Platform::linear("half", rat(1, 2), rat(0, 1), rat(0, 1)).unwrap());
        let light = Transaction::new(
            "light",
            rat(10, 1),
            rat(10, 1),
            vec![Task::new("a", rat(2, 1), rat(1, 1), 1, p)],
        )
        .unwrap();
        let set = TransactionSet::new(platforms.clone(), vec![light.clone()]).unwrap();
        assert_eq!(set.platform_utilization(), vec![rat(1, 5)]);
        assert!(set.overloaded_platforms().is_empty());

        let heavy = Transaction::new(
            "heavy",
            rat(10, 1),
            rat(10, 1),
            vec![Task::new("b", rat(4, 1), rat(4, 1), 2, p)],
        )
        .unwrap();
        let set = TransactionSet::new(platforms, vec![light, heavy]).unwrap();
        assert_eq!(set.platform_utilization(), vec![rat(3, 5)]);
        assert_eq!(set.overloaded_platforms(), vec![p]);
    }

    #[test]
    fn task_refs_cover_all() {
        let mut platforms = PlatformSet::new();
        let p = platforms.add(Platform::dedicated("cpu"));
        let t1 = Transaction::new(
            "t1",
            rat(10, 1),
            rat(10, 1),
            vec![
                Task::new("a", rat(1, 1), rat(1, 1), 1, p),
                Task::new("b", rat(1, 1), rat(1, 1), 1, p),
            ],
        )
        .unwrap();
        let t2 = Transaction::new(
            "t2",
            rat(20, 1),
            rat(20, 1),
            vec![Task::new("c", rat(1, 1), rat(1, 1), 1, p)],
        )
        .unwrap();
        let set = TransactionSet::new(platforms, vec![t1, t2]).unwrap();
        let refs: Vec<TaskRef> = set.task_refs().collect();
        assert_eq!(refs.len(), 3);
        assert_eq!(set.num_tasks(), 3);
        assert_eq!(set.task(refs[2]).name, "c");
        assert_eq!(refs[1].to_string(), "τ1,2");
    }

    #[test]
    fn mutators_add_remove_retune() {
        let mut platforms = PlatformSet::new();
        let p = platforms.add(Platform::dedicated("cpu"));
        let tx = |name: &str| {
            Transaction::new(
                name,
                rat(10, 1),
                rat(10, 1),
                vec![Task::new(format!("{name}_a"), rat(1, 1), rat(1, 1), 1, p)],
            )
            .unwrap()
        };
        let mut set = TransactionSet::new(platforms, vec![tx("first")]).unwrap();

        // push validates platform ids.
        let bad = Transaction::new(
            "bad",
            rat(10, 1),
            rat(10, 1),
            vec![Task::new("b", rat(1, 1), rat(1, 1), 1, PlatformId(9))],
        )
        .unwrap();
        assert!(set.push_transaction(bad).is_err());
        assert_eq!(set.push_transaction(tx("second")).unwrap(), 1);
        assert_eq!(set.transaction_index("second"), Some(1));
        assert_eq!(set.transaction_index("nope"), None);

        // remove shifts later indices and returns the transaction.
        let removed = set.remove_transaction_by_name("first").unwrap();
        assert_eq!(removed.name, "first");
        assert_eq!(set.transaction_index("second"), Some(0));
        assert!(set.remove_transaction(5).is_err());
        assert!(set.remove_transaction_by_name("first").is_err());

        // retune swaps service parameters without touching transactions.
        let before = set.transactions().to_vec();
        set.replace_platform(
            p,
            Platform::linear("cpu", rat(1, 2), rat(1, 1), rat(0, 1)).unwrap(),
        )
        .unwrap();
        assert_eq!(set.platforms()[p].alpha(), rat(1, 2));
        assert_eq!(set.transactions(), &before[..]);
        assert!(set
            .replace_platform(PlatformId(9), Platform::dedicated("x"))
            .is_err());
    }

    #[test]
    fn name_index_tracks_mutations() {
        let mut platforms = PlatformSet::new();
        let p = platforms.add(Platform::dedicated("cpu"));
        let tx = |name: &str| {
            Transaction::new(
                name,
                rat(10, 1),
                rat(10, 1),
                vec![Task::new(format!("{name}_a"), rat(1, 1), rat(1, 1), 1, p)],
            )
            .unwrap()
        };
        let mut set = TransactionSet::new(platforms, vec![tx("a"), tx("b"), tx("c")]).unwrap();
        assert_eq!(set.transaction_index("b"), Some(1));

        // Removal shifts later names down.
        set.remove_transaction_by_name("a").unwrap();
        assert_eq!(set.transaction_index("a"), None);
        assert_eq!(set.transaction_index("b"), Some(0));
        assert_eq!(set.transaction_index("c"), Some(1));

        // insert_transaction is the exact inverse of remove_transaction.
        let removed = set.remove_transaction(0).unwrap();
        set.insert_transaction(0, removed).unwrap();
        assert_eq!(set.transaction_index("b"), Some(0));
        assert_eq!(set.transaction_index("c"), Some(1));
        assert!(set.insert_transaction(9, tx("x")).is_err());
        let bad = Transaction::new(
            "bad",
            rat(10, 1),
            rat(10, 1),
            vec![Task::new("b", rat(1, 1), rat(1, 1), 1, PlatformId(7))],
        )
        .unwrap();
        assert!(set.insert_transaction(0, bad).is_err());

        // Duplicate names keep first-occurrence semantics across removal.
        set.push_transaction(tx("b")).unwrap();
        assert_eq!(set.transaction_index("b"), Some(0));
        set.remove_transaction(0).unwrap();
        assert_eq!(
            set.transaction_index("b"),
            Some(1),
            "next occurrence promoted"
        );
    }

    #[test]
    fn total_wcet() {
        let tx = Transaction::new(
            "t",
            rat(10, 1),
            rat(10, 1),
            vec![
                Task::new("a", rat(1, 1), rat(1, 2), 1, PlatformId(0)),
                Task::message("m", rat(1, 2), rat(1, 4), 1, PlatformId(0)),
            ],
        )
        .unwrap();
        assert_eq!(tx.total_wcet(), rat(3, 2));
        assert_eq!(tx.tasks()[1].kind, TaskKind::Message);
    }
}
