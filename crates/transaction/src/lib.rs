//! Real-time transactions (§2.4): the analyzable form of a component system.
//!
//! A **transaction** Γi is a totally ordered sequence of **tasks**
//! τi,1 … τi,ni released by one periodic (or sporadic) event stream with
//! period `Ti` and end-to-end relative deadline `Di`; task τi,j cannot start
//! before τi,j−1 completes. Each task carries a worst/best-case execution
//! time, a priority, and the abstract platform it is mapped on (the paper's
//! `si,j`).
//!
//! [`flatten`] implements the paper's recursive transformation: every
//! periodic thread of every component instance becomes a transaction whose
//! task list is the thread's body with each synchronous RPC call *inlined* —
//! the callee's realizer thread contributes its tasks (and, transitively, its
//! own calls); cross-node calls additionally contribute request/response
//! message tasks on the network platform. Provided methods that no internal
//! component calls (the system's external service surface, like the paper's
//! `Integrator.read()` invoked by an unspecified client at its MIT) become
//! sporadic transactions at their MIT — that is how the paper's Γ4 arises.
//!
//! ```
//! use hsched_transaction::paper_example;
//!
//! let system = paper_example::transactions();
//! assert_eq!(system.transactions().len(), 4);        // Γ1 … Γ4
//! assert_eq!(system.transactions()[0].tasks().len(), 4); // τ1,1 … τ1,4
//! ```

mod flatten;
mod model;
pub mod paper_example;

pub use flatten::{flatten, flatten_annotated, FlattenError, FlattenOptions};
pub use model::{Task, TaskKind, TaskRef, Transaction, TransactionSet};
