//! Property tests for the §2.4 flattening over randomized component chains.

use hsched_model::{
    Action, ComponentClass, ProvidedMethod, RequiredMethod, SystemBuilder, ThreadSpec,
};
use hsched_numeric::rat;
use hsched_platform::{Platform, PlatformSet};
use hsched_transaction::{flatten, FlattenOptions, TaskKind};
use proptest::prelude::*;

/// A random linear RPC chain: a periodic client calling through `depth`
/// intermediate services, each with `pre/post` tasks around its forwarded
/// call, optionally crossing nodes (which inserts message tasks).
#[derive(Debug, Clone)]
struct Chain {
    depth: usize,
    pre_tasks: Vec<usize>,  // per service: number of tasks before the call
    post_tasks: Vec<usize>, // per service: number after
    remote: Vec<bool>,      // per hop: crosses nodes?
}

fn chain_strategy() -> impl Strategy<Value = Chain> {
    (1usize..=4).prop_flat_map(|depth| {
        (
            proptest::collection::vec(0usize..=2, depth),
            proptest::collection::vec(0usize..=2, depth),
            proptest::collection::vec(any::<bool>(), depth),
        )
            .prop_map(move |(pre_tasks, post_tasks, remote)| Chain {
                depth,
                pre_tasks,
                post_tasks,
                remote,
            })
    })
}

/// Builds the system; returns (system, platforms, expected task count of the
/// client transaction, expected message count).
fn build(chain: &Chain) -> (hsched_model::System, PlatformSet, usize, usize) {
    let mut platforms = PlatformSet::new();
    let net = platforms.add(Platform::network("NET", rat(1, 2), rat(1, 1), rat(0, 1)).unwrap());
    let mut builder = SystemBuilder::new();

    // Leaf service.
    let mut classes = Vec::new();
    let leaf = ComponentClass::new("S0")
        .provides(ProvidedMethod::new("m", rat(50, 1)))
        .thread(ThreadSpec::realizes(
            "R",
            "m",
            1,
            vec![Action::task("leaf", rat(1, 2), rat(1, 4))],
        ));
    classes.push(builder.add_class(leaf));

    // Intermediate services S1..Sdepth-1 call the previous one.
    let mut expected_tasks = 1; // leaf task
    for lvl in 1..chain.depth {
        let mut body = Vec::new();
        for k in 0..chain.pre_tasks[lvl] {
            body.push(Action::task(format!("pre{k}"), rat(1, 2), rat(1, 4)));
        }
        body.push(Action::call("down"));
        for k in 0..chain.post_tasks[lvl] {
            body.push(Action::task(format!("post{k}"), rat(1, 2), rat(1, 4)));
        }
        expected_tasks += chain.pre_tasks[lvl] + chain.post_tasks[lvl];
        let class = ComponentClass::new(format!("S{lvl}"))
            .provides(ProvidedMethod::new("m", rat(50, 1)))
            .requires(RequiredMethod::derived("down"))
            .thread(ThreadSpec::realizes("R", "m", 1, body));
        classes.push(builder.add_class(class));
    }

    // Client calls the top service.
    let client_class = ComponentClass::new("Client")
        .requires(RequiredMethod::derived("top"))
        .thread(ThreadSpec::periodic(
            "P",
            rat(100, 1),
            2,
            vec![Action::call("top")],
        ));
    let client_idx = builder.add_class(client_class);

    // Instantiate: each service on its own platform; node changes when the
    // hop is remote.
    let mut instances = Vec::new();
    let mut node = 0usize;
    for (lvl, &class) in classes.iter().enumerate().take(chain.depth) {
        let p = platforms
            .add(Platform::linear(format!("P{lvl}"), rat(1, 2), rat(0, 1), rat(0, 1)).unwrap());
        instances.push(builder.instantiate(format!("I{lvl}"), class, p, node));
        if chain.remote[lvl] {
            node += 1;
        }
    }
    let client_platform =
        platforms.add(Platform::linear("PC", rat(1, 2), rat(0, 1), rat(0, 1)).unwrap());
    let client = builder.instantiate("C", client_idx, client_platform, node);

    // Bindings: client → S_{depth-1} → … → S0. A hop is remote when the two
    // instances ended up on different nodes.
    let link = |a: usize, b: usize| {
        (a != b).then(|| hsched_model::RpcLink {
            network: net,
            request_wcet: rat(1, 4),
            request_bcet: rat(1, 8),
            response_wcet: rat(1, 4),
            response_bcet: rat(1, 8),
            priority: 1,
        })
    };
    let mut messages = 0usize;
    let top = instances[chain.depth - 1];
    let client_node = node;
    let top_node = node_of(chain, chain.depth - 1);
    match link(client_node, top_node) {
        Some(l) => {
            messages += 2;
            builder.bind_remote(client, "top", top, "m", l);
        }
        None => {
            builder.bind(client, "top", top, "m");
        }
    }
    for lvl in (1..chain.depth).rev() {
        let from_node = node_of(chain, lvl);
        let to_node = node_of(chain, lvl - 1);
        match link(from_node, to_node) {
            Some(l) => {
                messages += 2;
                builder.bind_remote(instances[lvl], "down", instances[lvl - 1], "m", l);
            }
            None => {
                builder.bind(instances[lvl], "down", instances[lvl - 1], "m");
            }
        }
    }
    (builder.build(), platforms, expected_tasks, messages)
}

/// Node index instance `lvl` was placed on (mirror of the loop in `build`).
fn node_of(chain: &Chain, lvl: usize) -> usize {
    chain.remote[..lvl].iter().filter(|&&r| r).count()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn flatten_counts_and_order(chain in chain_strategy()) {
        let (system, platforms, expected_tasks, expected_messages) = build(&chain);
        prop_assert!(system.validate().is_ok());
        let set = flatten(&system, &platforms, FlattenOptions { external_stimuli: false })
            .expect("flattens");
        // Exactly one transaction: the client's periodic thread.
        prop_assert_eq!(set.transactions().len(), 1);
        let tx = &set.transactions()[0];
        let messages = tx
            .tasks()
            .iter()
            .filter(|t| t.kind == TaskKind::Message)
            .count();
        let computations = tx.len() - messages;
        prop_assert_eq!(computations, expected_tasks, "computation task count");
        prop_assert_eq!(messages, expected_messages, "message task count");
        // Requests and responses come in balanced pairs, requests first.
        let mut balance: i64 = 0;
        for t in tx.tasks() {
            if t.kind == TaskKind::Message {
                if t.name.ends_with(".request") {
                    balance += 1;
                } else {
                    prop_assert!(t.name.ends_with(".response"));
                    balance -= 1;
                }
                prop_assert!(balance >= 0, "response before its request");
            }
        }
        prop_assert_eq!(balance, 0, "unbalanced message pairs");
        // The leaf task is present exactly once and sits between the deepest
        // request/response pair.
        let leaf_count = tx.tasks().iter().filter(|t| t.name.ends_with(".leaf")).count();
        prop_assert_eq!(leaf_count, 1);
    }

    #[test]
    fn external_stimuli_adds_only_unbound_services(chain in chain_strategy()) {
        let (system, platforms, _, _) = build(&chain);
        let without = flatten(&system, &platforms, FlattenOptions { external_stimuli: false })
            .unwrap();
        let with = flatten(&system, &platforms, FlattenOptions::default()).unwrap();
        // Every service in the chain is bound by its upper neighbour except
        // none — the top service is called by the client, so *no* provided
        // method is unbound and the two flattenings agree.
        prop_assert_eq!(without.transactions().len(), with.transactions().len());
    }
}
