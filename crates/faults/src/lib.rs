//! hsched-faults: deterministic, seeded fault injection for the journal
//! and wire stack.
//!
//! The production I/O of the system funnels through three seams — journal
//! append/fsync, frame read/write, and connection accept/dial — and each
//! seam carries one cheap tap: a call to [`hit`] naming its [`Site`].
//! With no plan installed the tap is a single `SeqCst` load of a static
//! flag that predicts perfectly false — default builds pay nothing
//! measurable. With a plan installed (programmatically via [`install`],
//! or through the `HSCHED_FAULTS` environment variable) each tap draws
//! from a seeded splitmix64 stream and fires with the site's configured
//! per-mille probability, bounded by an optional per-site budget.
//!
//! Like `hsched-check`'s replayable schedules, a plan is fully described
//! by its spec string ([`FaultPlan::spec`]): the same spec produces the
//! same decision stream for the same sequence of taps, so a chaos failure
//! is reported as one line that reproduces it bit-for-bit.
//!
//! Spec grammar (also the `HSCHED_FAULTS` value):
//!
//! ```text
//! <seed>:<site>=<per-mille>[*<budget>][,<site>=<per-mille>[*<budget>]…]
//! ```
//!
//! e.g. `7:journal.fsync=1000*1,frame.drop=25` — seed 7, the first fsync
//! fails (rate 1000‰, budget 1), and 2.5% of frame writes drop the
//! connection, forever.
//!
//! What each site *means* — wedging semantics, repair behaviour, retry
//! classification — is owned by the seam that hosts the tap; this crate
//! only decides *whether* the next operation at a site is faulted, and
//! counts what it decided ([`FaultPlan::injected`] feeds the
//! `net.faults.*` counters).

#![warn(missing_docs)]

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, Once};
use std::time::Duration;

/// Environment variable holding the process-wide fault plan spec.
pub const ENV_VAR: &str = "HSCHED_FAULTS";

/// How long an injected `journal.delay` / `frame.stall` pauses the
/// faulted operation. Long enough to shuffle interleavings, short enough
/// that chaos suites stay fast.
pub const INJECTED_DELAY: Duration = Duration::from_millis(2);

/// An injection site: one named place in the stack where a tap interposes
/// on real I/O. The effect column is implemented by the seam, not here.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Site {
    /// Journal append writes a partial record and leaves the torn bytes
    /// on disk (power-cut mid-write); the writer wedges and recovery
    /// repairs the tail.
    JournalTorn,
    /// Journal append detects a short write and truncates back to the
    /// record boundary (clean tail); the writer wedges.
    JournalShort,
    /// Journal append fails before writing any byte (no space left on
    /// device); the writer wedges.
    JournalEnospc,
    /// The group-commit `fsync` reports an I/O error, poisoning the
    /// journal exactly like a real failure.
    JournalFsync,
    /// Journal append sleeps [`INJECTED_DELAY`] before writing.
    JournalDelay,
    /// Frame write puts a partial frame on the wire then fails — the
    /// peer sees a torn frame, the writer loses the connection.
    FramePartial,
    /// Frame read/write fails without touching the wire — a dropped
    /// connection.
    FrameDrop,
    /// Frame read/write stalls [`INJECTED_DELAY`] then proceeds.
    FrameStall,
    /// An accepted connection is dropped before its handler spawns.
    ConnAccept,
    /// An outbound dial fails before the TCP connect.
    ConnDial,
}

impl Site {
    /// Every site, in spec order.
    pub const ALL: [Site; 10] = [
        Site::JournalTorn,
        Site::JournalShort,
        Site::JournalEnospc,
        Site::JournalFsync,
        Site::JournalDelay,
        Site::FramePartial,
        Site::FrameDrop,
        Site::FrameStall,
        Site::ConnAccept,
        Site::ConnDial,
    ];

    /// The site's stable spec name (`journal.torn`, `frame.drop`, …).
    pub fn name(self) -> &'static str {
        match self {
            Site::JournalTorn => "journal.torn",
            Site::JournalShort => "journal.short",
            Site::JournalEnospc => "journal.enospc",
            Site::JournalFsync => "journal.fsync",
            Site::JournalDelay => "journal.delay",
            Site::FramePartial => "frame.partial",
            Site::FrameDrop => "frame.drop",
            Site::FrameStall => "frame.stall",
            Site::ConnAccept => "conn.accept",
            Site::ConnDial => "conn.dial",
        }
    }

    /// Parses a spec name back into its site.
    pub fn parse(name: &str) -> Option<Site> {
        Site::ALL.into_iter().find(|s| s.name() == name)
    }

    fn index(self) -> usize {
        Site::ALL.iter().position(|s| *s == self).expect("in ALL")
    }
}

/// One site's injection rule.
#[derive(Debug, Clone, Copy)]
struct Rule {
    /// Firing probability per tap, in per-mille (1000 = always).
    per_mille: u16,
    /// Cap on total firings at this site (`None` = unbounded).
    budget: Option<u64>,
}

/// Mutable plan state: the PRNG cursor and per-site firing counts, under
/// one lock so a decision and its accounting are atomic (and so the
/// decision stream is a function of the tap sequence alone).
#[derive(Debug)]
struct PlanState {
    rng: u64,
    injected: [u64; Site::ALL.len()],
}

/// A seeded fault-injection plan: per-site rates and budgets plus the
/// deterministic decision stream. Install process-wide with [`install`],
/// or query a free-standing plan directly with [`FaultPlan::should`].
#[derive(Debug)]
pub struct FaultPlan {
    seed: u64,
    rules: [Option<Rule>; Site::ALL.len()],
    state: Mutex<PlanState>,
}

/// splitmix64: tiny, dependency-free, and exactly reproducible — the same
/// generator discipline the model checker uses for replayable schedules.
fn splitmix64(cursor: &mut u64) -> u64 {
    *cursor = cursor.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *cursor;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl FaultPlan {
    /// An empty plan (no site fires) over `seed`.
    pub fn new(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            rules: [None; Site::ALL.len()],
            state: Mutex::new(PlanState {
                rng: seed,
                injected: [0; Site::ALL.len()],
            }),
        }
    }

    /// Arms `site` at `per_mille` ‰ per tap (clamped to 1000), unbounded.
    pub fn with(self, site: Site, per_mille: u16) -> FaultPlan {
        self.with_rule(site, per_mille, None)
    }

    /// Arms `site` at `per_mille` ‰ per tap, firing at most `budget`
    /// times over the plan's lifetime.
    pub fn with_budget(self, site: Site, per_mille: u16, budget: u64) -> FaultPlan {
        self.with_rule(site, per_mille, Some(budget))
    }

    fn with_rule(mut self, site: Site, per_mille: u16, budget: Option<u64>) -> FaultPlan {
        self.rules[site.index()] = Some(Rule {
            per_mille: per_mille.min(1000),
            budget,
        });
        self
    }

    /// Parses a spec string (see the module docs for the grammar).
    pub fn parse(spec: &str) -> Result<FaultPlan, String> {
        let (seed_text, rules_text) = spec
            .split_once(':')
            .ok_or_else(|| format!("fault spec `{spec}` missing `seed:` prefix"))?;
        let seed = parse_u64(seed_text.trim())
            .ok_or_else(|| format!("bad fault seed `{}`", seed_text.trim()))?;
        let mut plan = FaultPlan::new(seed);
        for entry in rules_text.split(',') {
            let entry = entry.trim();
            if entry.is_empty() {
                continue;
            }
            let (name, rate_text) = entry
                .split_once('=')
                .ok_or_else(|| format!("fault entry `{entry}` missing `=rate`"))?;
            let site = Site::parse(name.trim())
                .ok_or_else(|| format!("unknown fault site `{}`", name.trim()))?;
            let (rate_text, budget) = match rate_text.split_once('*') {
                Some((rate, budget)) => (
                    rate,
                    Some(
                        parse_u64(budget.trim())
                            .ok_or_else(|| format!("bad fault budget `{}`", budget.trim()))?,
                    ),
                ),
                None => (rate_text, None),
            };
            let per_mille: u16 = rate_text
                .trim()
                .parse()
                .ok()
                .filter(|r| *r <= 1000)
                .ok_or_else(|| format!("bad fault rate `{}` (0-1000 ‰)", rate_text.trim()))?;
            plan = plan.with_rule(site, per_mille, budget);
        }
        Ok(plan)
    }

    /// The plan's seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Renders the plan back to its spec string — the one-line reproducer
    /// chaos suites print on failure.
    pub fn spec(&self) -> String {
        let mut out = format!("{}:", self.seed);
        let mut first = true;
        for site in Site::ALL {
            if let Some(rule) = &self.rules[site.index()] {
                if !first {
                    out.push(',');
                }
                first = false;
                out.push_str(site.name());
                out.push('=');
                out.push_str(&rule.per_mille.to_string());
                if let Some(budget) = rule.budget {
                    out.push('*');
                    out.push_str(&budget.to_string());
                }
            }
        }
        out
    }

    /// One tap: decides (deterministically, consuming one PRNG draw if
    /// the site is armed) whether the next operation at `site` is
    /// faulted, and counts a firing.
    pub fn should(&self, site: Site) -> bool {
        let Some(rule) = &self.rules[site.index()] else {
            return false;
        };
        let mut state = self.state.lock().expect("fault plan state poisoned");
        let draw = splitmix64(&mut state.rng) % 1000;
        if draw >= u64::from(rule.per_mille) {
            return false;
        }
        if let Some(budget) = rule.budget {
            if state.injected[site.index()] >= budget {
                return false;
            }
        }
        state.injected[site.index()] += 1;
        true
    }

    /// Firings so far at `site`.
    pub fn injected(&self, site: Site) -> u64 {
        self.state
            .lock()
            .expect("fault plan state poisoned")
            .injected[site.index()]
    }

    /// Firings so far across every site.
    pub fn total_injected(&self) -> u64 {
        let state = self.state.lock().expect("fault plan state poisoned");
        state.injected.iter().sum()
    }
}

fn parse_u64(text: &str) -> Option<u64> {
    match text.strip_prefix("0x") {
        Some(hex) => u64::from_str_radix(hex, 16).ok(),
        None => text.parse().ok(),
    }
}

// ------------------------------------------------------------- process plan

/// Fast off-switch: `false` means no plan is installed and every tap
/// returns immediately after this one load.
static ACTIVE: AtomicBool = AtomicBool::new(false);
static PLAN: Mutex<Option<Arc<FaultPlan>>> = Mutex::new(None);
static ENV_ONCE: Once = Once::new();

/// Installs `plan` as the process-wide plan (replacing any previous one)
/// and returns a handle for count assertions.
pub fn install(plan: FaultPlan) -> Arc<FaultPlan> {
    let plan = Arc::new(plan);
    *PLAN.lock().expect("fault plan registry poisoned") = Some(plan.clone());
    ACTIVE.store(true, Ordering::SeqCst);
    plan
}

/// Removes the process-wide plan; every tap goes back to the one-load
/// fast path.
pub fn clear() {
    ACTIVE.store(false, Ordering::SeqCst);
    *PLAN.lock().expect("fault plan registry poisoned") = None;
}

/// The installed plan, if any (after a one-time `HSCHED_FAULTS` check).
pub fn active() -> Option<Arc<FaultPlan>> {
    init_from_env();
    if !ACTIVE.load(Ordering::SeqCst) {
        return None;
    }
    PLAN.lock().expect("fault plan registry poisoned").clone()
}

/// The tap: `true` when the next operation at `site` must be faulted.
/// With no plan installed this is one atomic load.
pub fn hit(site: Site) -> bool {
    init_from_env();
    if !ACTIVE.load(Ordering::SeqCst) {
        return false;
    }
    let plan = PLAN.lock().expect("fault plan registry poisoned").clone();
    plan.is_some_and(|p| p.should(site))
}

/// One-time `HSCHED_FAULTS` pickup (first tap wins; a malformed spec is
/// reported and ignored rather than silently arming nothing *and*
/// silently arming something wrong).
pub fn init_from_env() {
    ENV_ONCE.call_once(|| {
        let Ok(spec) = std::env::var(ENV_VAR) else {
            return;
        };
        if spec.trim().is_empty() {
            return;
        }
        match FaultPlan::parse(&spec) {
            Ok(plan) => {
                install(plan);
            }
            Err(e) => eprintln!("{ENV_VAR} ignored: {e}"),
        }
    });
}

/// The `io::Error` an injected fault surfaces as — always prefixed
/// `injected fault:` so logs and smoke scripts can tell injections from
/// real failures.
pub fn injected_io_error(what: &str) -> std::io::Error {
    std::io::Error::other(format!("injected fault: {what}"))
}

/// Sleeps the injected-delay interval (the `journal.delay` /
/// `frame.stall` effect).
pub fn stall() {
    std::thread::sleep(INJECTED_DELAY);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_round_trips() {
        let plan =
            FaultPlan::new(7)
                .with(Site::FrameDrop, 25)
                .with_budget(Site::JournalFsync, 1000, 1);
        let spec = plan.spec();
        assert_eq!(spec, "7:journal.fsync=1000*1,frame.drop=25");
        let parsed = FaultPlan::parse(&spec).expect("parse");
        assert_eq!(parsed.spec(), spec);
        assert_eq!(parsed.seed(), 7);
        assert_eq!(
            FaultPlan::parse("0x10:conn.dial=1000").expect("hex").seed(),
            16
        );
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(FaultPlan::parse("no-colon").is_err());
        assert!(FaultPlan::parse("x:frame.drop=1").is_err());
        assert!(FaultPlan::parse("1:frame.warp=1").is_err());
        assert!(FaultPlan::parse("1:frame.drop=1001").is_err());
        assert!(FaultPlan::parse("1:frame.drop=10*x").is_err());
        assert!(FaultPlan::parse("1:frame.drop").is_err());
    }

    #[test]
    fn decision_stream_is_deterministic() {
        let make = || FaultPlan::parse("42:frame.drop=300,journal.delay=500").expect("parse");
        let (a, b) = (make(), make());
        let taps = [
            Site::FrameDrop,
            Site::JournalDelay,
            Site::FrameDrop,
            Site::FrameDrop,
            Site::JournalDelay,
            Site::ConnDial, // unarmed: never fires, consumes no draw
        ];
        for _ in 0..200 {
            for site in taps {
                assert_eq!(a.should(site), b.should(site));
            }
        }
        assert_eq!(a.total_injected(), b.total_injected());
        assert!(
            a.total_injected() > 0,
            "rates this high must fire in 1200 taps"
        );
        assert_eq!(a.injected(Site::ConnDial), 0);
    }

    #[test]
    fn budget_caps_firings() {
        let plan = FaultPlan::new(3).with_budget(Site::JournalFsync, 1000, 2);
        let fired = (0..50).filter(|_| plan.should(Site::JournalFsync)).count();
        assert_eq!(fired, 2);
        assert_eq!(plan.injected(Site::JournalFsync), 2);
    }

    #[test]
    fn every_site_name_round_trips() {
        for site in Site::ALL {
            assert_eq!(Site::parse(site.name()), Some(site));
        }
        assert_eq!(Site::parse("journal"), None);
    }

    /// Global install/clear semantics in one test (the registry is
    /// process-wide; sibling tests must not race it).
    #[test]
    fn process_plan_install_hit_clear() {
        clear();
        assert!(!hit(Site::FrameDrop), "no plan: taps are inert");
        assert!(active().is_none());
        let handle = install(FaultPlan::new(9).with(Site::FrameDrop, 1000));
        assert!(hit(Site::FrameDrop), "rate 1000 always fires");
        assert_eq!(handle.injected(Site::FrameDrop), 1);
        assert!(!hit(Site::ConnDial), "unarmed site stays inert");
        assert!(active().is_some());
        clear();
        assert!(!hit(Site::FrameDrop));
        assert_eq!(
            handle.injected(Site::FrameDrop),
            1,
            "clearing detaches the plan without zeroing its counts"
        );
    }
}
