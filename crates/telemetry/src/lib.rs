//! Always-on telemetry primitives for the hsched stack.
//!
//! Every layer of the service — engine phase timers, stripe contention
//! counters, journal accounting, RTA cache hit rates — records into these
//! types on its hot paths, so the design goals are fixed by that use:
//!
//! * **Never a lock, never a syscall.** [`Counter`] and [`Histogram`] are
//!   plain relaxed atomics. Recording is a handful of `fetch_add`s; reading
//!   ([`Histogram::snapshot`]) is a racy-but-consistent-enough sweep that
//!   never blocks a writer. The per-record cost is tens of nanoseconds,
//!   which is what lets the service keep telemetry on unconditionally.
//! * **Bounded memory.** A histogram is 67 atomics regardless of how many
//!   values it absorbs: values land in log₂ buckets (bucket *k* covers
//!   `[2^(k-1), 2^k)`), which is plenty of resolution for latency
//!   distributions spanning nanoseconds to seconds.
//! * **Mergeable.** [`MetricsSnapshot`] is a named bag of counter values
//!   and [`HistogramSnapshot`]s with a commutative [`MetricsSnapshot::merge`],
//!   so per-shard or per-layer snapshots fold into one service-wide view
//!   without coordination.
//!
//! Quantiles ([`HistogramSnapshot::quantile`]) are upper-bound estimates:
//! the reported value is the ceiling of the bucket holding the requested
//! rank, clamped to the exact observed maximum. For a single recorded
//! value every quantile is exact.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::collections::BTreeMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Number of histogram buckets: one for zero, one per power of two up to
/// `2^63`, and a final bucket for everything at or above `2^63`.
pub const BUCKETS: usize = 65;

/// The bucket a value lands in: `0` for zero, otherwise
/// `floor(log2(value)) + 1`, so bucket `k ≥ 1` covers `[2^(k-1), 2^k)`
/// (the last bucket, 64, covers `[2^63, u64::MAX]`).
pub fn bucket_index(value: u64) -> usize {
    if value == 0 {
        0
    } else {
        64 - value.leading_zeros() as usize
    }
}

/// The largest value bucket `index` can hold (`0` for bucket 0,
/// `2^index - 1` in general, [`u64::MAX`] for the last bucket).
pub fn bucket_ceiling(index: usize) -> u64 {
    match index {
        0 => 0,
        64.. => u64::MAX,
        k => (1u64 << k) - 1,
    }
}

/// A monotone event counter: relaxed atomic increments, safe to share
/// across any number of recording threads.
#[derive(Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A counter at zero.
    pub const fn new() -> Counter {
        Counter(AtomicU64::new(0))
    }

    /// Adds one.
    pub fn incr(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

impl fmt::Debug for Counter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Counter({})", self.get())
    }
}

/// A log₂-bucketed value distribution (typically latencies in
/// nanoseconds): lock-free recording into [`BUCKETS`] relaxed atomics plus
/// an exact running sum and maximum.
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    sum: AtomicU64,
    max: AtomicU64,
}

impl Histogram {
    /// An empty histogram.
    pub const fn new() -> Histogram {
        Histogram {
            buckets: [const { AtomicU64::new(0) }; BUCKETS],
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Records one value.
    pub fn record(&self, value: u64) {
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Records the time elapsed since `start`, in nanoseconds (saturating
    /// at [`u64::MAX`] — ~584 years).
    pub fn record_since(&self, start: Instant) {
        self.record(elapsed_ns(start));
    }

    /// A point-in-time copy of the distribution. Concurrent recorders may
    /// land between the field reads — each bucket is exact, the total is
    /// within a few in-flight records of the truth, which is all a
    /// monitoring read needs.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = [0u64; BUCKETS];
        let mut count = 0u64;
        for (slot, bucket) in buckets.iter_mut().zip(&self.buckets) {
            *slot = bucket.load(Ordering::Relaxed);
            count += *slot;
        }
        HistogramSnapshot {
            count,
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
            buckets,
        }
    }
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram::new()
    }
}

impl fmt::Debug for Histogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let snap = self.snapshot();
        write!(f, "Histogram(count={}, max={})", snap.count, snap.max)
    }
}

/// Nanoseconds since `start`, saturating at [`u64::MAX`].
pub fn elapsed_ns(start: Instant) -> u64 {
    u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

/// An immutable copy of a [`Histogram`]: bucket counts, exact sum and
/// maximum, and quantile summaries. Snapshots merge commutatively.
#[derive(Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    count: u64,
    sum: u64,
    max: u64,
    buckets: [u64; BUCKETS],
}

impl HistogramSnapshot {
    /// A snapshot of nothing.
    pub fn empty() -> HistogramSnapshot {
        HistogramSnapshot {
            count: 0,
            sum: 0,
            max: 0,
            buckets: [0; BUCKETS],
        }
    }

    /// Reassembles a snapshot from its parts — the inverse of reading
    /// `sum()`/`max()`/`bucket(i)`, used to reconstruct histograms shipped
    /// over a wire (`hsched stats --remote`). `counts` holds the per-bucket
    /// counts starting at bucket 0; missing trailing buckets read as zero,
    /// extras beyond [`BUCKETS`] are ignored. The total count is the bucket
    /// sum, exactly as recording would have left it.
    pub fn from_parts(sum: u64, max: u64, counts: &[u64]) -> HistogramSnapshot {
        let mut snap = HistogramSnapshot::empty();
        for (bucket, &n) in snap.buckets.iter_mut().zip(counts.iter()) {
            *bucket = n;
            snap.count += n;
        }
        snap.sum = sum;
        snap.max = max;
        snap
    }

    /// Values recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all recorded values (wrapping on `u64` overflow — far
    /// beyond any realistic latency total).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Exact maximum recorded value (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// `true` when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Arithmetic mean of the recorded values (0 when empty).
    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count).unwrap_or(0)
    }

    /// Count in bucket `index` (see [`bucket_index`]).
    pub fn bucket(&self, index: usize) -> u64 {
        self.buckets[index]
    }

    /// Upper-bound estimate of the `q`-quantile (`0.0 ..= 1.0`): the
    /// ceiling of the bucket holding the value of that rank, clamped to
    /// the exact observed maximum. Returns 0 for an empty snapshot.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (index, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return bucket_ceiling(index).min(self.max);
            }
        }
        self.max
    }

    /// Median upper bound (see [`HistogramSnapshot::quantile`]).
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 95th-percentile upper bound.
    pub fn p95(&self) -> u64 {
        self.quantile(0.95)
    }

    /// 99th-percentile upper bound.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// Folds `other` into this snapshot (bucket-wise sum; max of maxima).
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        self.count += other.count;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
        for (mine, theirs) in self.buckets.iter_mut().zip(&other.buckets) {
            *mine += theirs;
        }
    }
}

impl fmt::Debug for HistogramSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("HistogramSnapshot")
            .field("count", &self.count)
            .field("mean", &self.mean())
            .field("p50", &self.p50())
            .field("p95", &self.p95())
            .field("p99", &self.p99())
            .field("max", &self.max)
            .finish()
    }
}

/// A point-in-time, mergeable view over a set of named metrics: counter
/// values and histogram snapshots keyed by dotted names (e.g.
/// `engine.phase.reserve_ns`). Layers produce their own snapshots and the
/// service [`MetricsSnapshot::merge`]s them into one report.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    counters: BTreeMap<String, u64>,
    histograms: BTreeMap<String, HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// An empty snapshot.
    pub fn new() -> MetricsSnapshot {
        MetricsSnapshot::default()
    }

    /// Records a counter value under `name` (added to any existing value,
    /// so repeated inserts behave like a merge).
    pub fn put_counter(&mut self, name: &str, value: u64) {
        *self.counters.entry(name.to_string()).or_insert(0) += value;
    }

    /// Records a histogram snapshot under `name` (merged into any existing
    /// snapshot).
    pub fn put_histogram(&mut self, name: &str, snapshot: HistogramSnapshot) {
        self.histograms
            .entry(name.to_string())
            .or_insert_with(HistogramSnapshot::empty)
            .merge(&snapshot);
    }

    /// The counter under `name`, or 0 when absent.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// The histogram under `name`, when present.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.get(name)
    }

    /// All counters, in name order.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// All histograms, in name order.
    pub fn histograms(&self) -> impl Iterator<Item = (&str, &HistogramSnapshot)> {
        self.histograms.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Folds `other` into this snapshot: counters add, histograms merge.
    /// Commutative and associative, so any merge order yields the same
    /// totals.
    pub fn merge(&mut self, other: &MetricsSnapshot) {
        for (name, value) in &other.counters {
            *self.counters.entry(name.clone()).or_insert(0) += value;
        }
        for (name, snapshot) in &other.histograms {
            self.histograms
                .entry(name.clone())
                .or_insert_with(HistogramSnapshot::empty)
                .merge(snapshot);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_zero_one_and_max() {
        // The three edges: zero has its own bucket, one starts bucket 1,
        // u64::MAX lands in the final catch-all bucket.
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(u64::MAX), 64);
        assert_eq!(bucket_ceiling(0), 0);
        assert_eq!(bucket_ceiling(1), 1);
        assert_eq!(bucket_ceiling(64), u64::MAX);

        let h = Histogram::new();
        h.record(0);
        h.record(1);
        h.record(u64::MAX);
        let s = h.snapshot();
        assert_eq!(s.bucket(0), 1);
        assert_eq!(s.bucket(1), 1);
        assert_eq!(s.bucket(64), 1);
        assert_eq!(s.count(), 3);
        assert_eq!(s.max(), u64::MAX);
        // The running sum is a wrapping fetch_add: 0 + 1 + u64::MAX wraps to 0.
        assert_eq!(s.sum(), 0u64.wrapping_add(1).wrapping_add(u64::MAX));
    }

    #[test]
    fn bucket_boundaries_exact_powers_of_two() {
        // 2^k opens bucket k+1; 2^k - 1 closes bucket k.
        for k in 0..63u32 {
            let v = 1u64 << k;
            assert_eq!(bucket_index(v), k as usize + 1, "2^{k}");
            if v > 1 {
                assert_eq!(bucket_index(v - 1), k as usize, "2^{k} - 1");
            }
            assert_eq!(bucket_ceiling(k as usize + 1), {
                if k as usize + 1 >= 64 {
                    u64::MAX
                } else {
                    (1u64 << (k + 1)) - 1
                }
            });
        }
        assert_eq!(bucket_index(1u64 << 63), 64);
    }

    #[test]
    fn single_value_quantiles_are_exact() {
        for v in [0u64, 1, 2, 1023, 1024, u64::MAX] {
            let h = Histogram::new();
            h.record(v);
            let s = h.snapshot();
            assert_eq!(s.p50(), v, "p50 of single {v}");
            assert_eq!(s.p95(), v, "p95 of single {v}");
            assert_eq!(s.p99(), v, "p99 of single {v}");
            assert_eq!(s.max(), v);
            assert_eq!(s.mean(), v);
        }
    }

    #[test]
    fn quantiles_walk_buckets_in_order() {
        let h = Histogram::new();
        // 90 small values, 10 large: p50 must sit in the small bucket,
        // p99 in the large one.
        for _ in 0..90 {
            h.record(100); // bucket 7, ceiling 127
        }
        for _ in 0..10 {
            h.record(1_000_000); // bucket 20
        }
        let s = h.snapshot();
        assert_eq!(s.count(), 100);
        assert_eq!(s.p50(), 127);
        assert_eq!(s.p99(), 1_000_000); // clamped to the exact max
        assert_eq!(s.max(), 1_000_000);
    }

    #[test]
    fn empty_histogram_reports_zeroes() {
        let s = Histogram::new().snapshot();
        assert!(s.is_empty());
        assert_eq!(s.p50(), 0);
        assert_eq!(s.p99(), 0);
        assert_eq!(s.mean(), 0);
        assert_eq!(s.max(), 0);
    }

    #[test]
    fn multithreaded_counters_lose_no_updates() {
        const THREADS: usize = 8;
        const PER_THREAD: u64 = 100_000;
        let counter = Counter::new();
        let histogram = Histogram::new();
        std::thread::scope(|scope| {
            for t in 0..THREADS {
                let counter = &counter;
                let histogram = &histogram;
                scope.spawn(move || {
                    for i in 0..PER_THREAD {
                        counter.incr();
                        histogram.record((t as u64) * PER_THREAD + i % 1024);
                    }
                });
            }
        });
        assert_eq!(counter.get(), THREADS as u64 * PER_THREAD);
        assert_eq!(histogram.snapshot().count(), THREADS as u64 * PER_THREAD);
    }

    #[test]
    fn snapshot_merge_preserves_totals() {
        let a = Histogram::new();
        let b = Histogram::new();
        for i in 0..1000u64 {
            a.record(i);
            b.record(i * 1000);
        }
        let mut merged = a.snapshot();
        merged.merge(&b.snapshot());
        assert_eq!(merged.count(), 2000);
        assert_eq!(merged.sum(), a.snapshot().sum() + b.snapshot().sum());
        assert_eq!(merged.max(), 999_000);

        let mut left = MetricsSnapshot::new();
        left.put_counter("x", 3);
        left.put_histogram("h", a.snapshot());
        let mut right = MetricsSnapshot::new();
        right.put_counter("x", 4);
        right.put_counter("y", 1);
        right.put_histogram("h", b.snapshot());
        let mut lr = left.clone();
        lr.merge(&right);
        let mut rl = right.clone();
        rl.merge(&left);
        assert_eq!(lr, rl, "merge is commutative");
        assert_eq!(lr.counter("x"), 7);
        assert_eq!(lr.counter("y"), 1);
        assert_eq!(lr.histogram("h").unwrap().count(), 2000);
    }
}
