//! Offline API-subset stub of the `proptest` crate.
//!
//! Implements the call-site surface this workspace uses — the `proptest!`
//! macro, `prop_assert!`/`prop_assert_eq!`/`prop_assume!`, integer-range,
//! tuple and `collection::vec` strategies, and the `prop_map` /
//! `prop_flat_map` / `prop_filter_map` combinators — over a deterministic
//! SplitMix64 generator seeded from the test name.
//!
//! Differences from real proptest, by design:
//! - **No shrinking.** A failing case reports its case index and the
//!   deterministic per-test seed; reruns reproduce it exactly.
//! - `prop_assert*` panics immediately instead of threading a `Result`.
//!
//! Call sites stay byte-for-byte compatible with proptest 1.x, so the real
//! crate can be swapped in via the root manifest. See `vendor/README.md`.

use std::ops::{Range, RangeInclusive};

/// Deterministic generator driving every strategy (SplitMix64).
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn from_seed(state: u64) -> Self {
        TestRng { state }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn next_u128(&mut self) -> u128 {
        (u128::from(self.next_u64()) << 64) | u128::from(self.next_u64())
    }

    /// Uniform draw from `[0, bound)`; `bound` must be nonzero.
    fn below(&mut self, bound: u128) -> u128 {
        self.next_u128() % bound
    }
}

/// How many values a filtering strategy may reject before the run aborts.
const MAX_FILTER_RETRIES: u32 = 10_000;

/// A source of random values of one type.
///
/// The real trait produces shrinkable value *trees*; this stub produces the
/// values directly and performs no shrinking.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F>(self, fun: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, fun }
    }

    fn prop_flat_map<S, F>(self, fun: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, fun }
    }

    fn prop_filter_map<O, F>(self, whence: &'static str, fun: F) -> FilterMap<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> Option<O>,
    {
        FilterMap {
            inner: self,
            whence,
            fun,
        }
    }
}

/// Output of [`Strategy::prop_map`].
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    inner: S,
    fun: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.fun)(self.inner.generate(rng))
    }
}

/// Output of [`Strategy::prop_flat_map`].
#[derive(Clone, Debug)]
pub struct FlatMap<S, F> {
    inner: S,
    fun: F,
}

impl<S, T, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    T: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T::Value;

    fn generate(&self, rng: &mut TestRng) -> T::Value {
        (self.fun)(self.inner.generate(rng)).generate(rng)
    }
}

/// Output of [`Strategy::prop_filter_map`].
#[derive(Clone, Debug)]
pub struct FilterMap<S, F> {
    inner: S,
    whence: &'static str,
    fun: F,
}

impl<S, O, F> Strategy for FilterMap<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> Option<O>,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        for _ in 0..MAX_FILTER_RETRIES {
            if let Some(v) = (self.fun)(self.inner.generate(rng)) {
                return v;
            }
        }
        panic!("proptest stub: prop_filter_map({:?}) rejected {MAX_FILTER_RETRIES} candidates in a row", self.whence);
    }
}

/// Integer-range strategies (`lo..hi`, `lo..=hi`).
trait UniformInt: Copy {
    fn sample_inclusive(rng: &mut TestRng, lo: Self, hi: Self) -> Self;
    fn dec(self) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty => $u:ty),* $(,)?) => {$(
        impl UniformInt for $t {
            fn sample_inclusive(rng: &mut TestRng, lo: Self, hi: Self) -> Self {
                // Interval width as same-size unsigned; wraps to 0 only for
                // the full domain, where any raw draw is valid.
                let span = (hi.wrapping_sub(lo) as $u as u128).wrapping_add(1);
                if span == 0 {
                    return rng.next_u128() as $t;
                }
                lo.wrapping_add(rng.below(span) as $u as $t)
            }

            fn dec(self) -> Self {
                self.wrapping_sub(1)
            }
        }
    )*};
}

impl_uniform_int! {
    i8 => u8, i16 => u16, i32 => u32, i64 => u64, i128 => u128, isize => usize,
    u8 => u8, u16 => u16, u32 => u32, u64 => u64, u128 => u128, usize => usize,
}

impl<T: UniformInt + PartialOrd> Strategy for Range<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        assert!(self.start < self.end, "proptest stub: empty range strategy");
        T::sample_inclusive(rng, self.start, self.end.dec())
    }
}

impl<T: UniformInt + PartialOrd> Strategy for RangeInclusive<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "proptest stub: empty range strategy");
        T::sample_inclusive(rng, lo, hi)
    }
}

/// `any::<T>()` — the canonical strategy for the whole domain of `T`.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(std::marker::PhantomData)
}

#[derive(Clone, Copy, Debug)]
pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

pub trait Arbitrary {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),* $(,)?) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u128() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(i8, i16, i32, i64, i128, isize, u8, u16, u32, u64, u128, usize);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A 0)
    (A 0, B 1)
    (A 0, B 1, C 2)
    (A 0, B 1, C 2, D 3)
    (A 0, B 1, C 2, D 3, E 4)
    (A 0, B 1, C 2, D 3, E 4, F 5)
    (A 0, B 1, C 2, D 3, E 4, F 5, G 6)
    (A 0, B 1, C 2, D 3, E 4, F 5, G 6, H 7)
}

pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// Element-count bounds for [`vec`]: an exact count or a (half-)open
    /// range, mirroring proptest's `SizeRange` conversions.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // inclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "proptest stub: empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "proptest stub: empty size range");
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// Strategy for `Vec<T>` with element counts drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = (self.size.lo..=self.size.hi).generate(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Per-block runner configuration (`#![proptest_config(...)]`).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of *accepted* (non-`prop_assume`-rejected) cases to run.
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Marker returned (via `Err`) by `prop_assume!` to skip the current case.
#[derive(Clone, Copy, Debug)]
pub struct TestCaseSkip;

/// FNV-1a, used to derive a stable per-test seed from the test's name.
fn fnv1a(name: &str) -> u64 {
    let mut hash = 0xCBF2_9CE4_8422_2325u64;
    for b in name.bytes() {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

/// Prints reproduction info when a case panics, without requiring `Debug`
/// on the generated values.
struct FailureReporter<'a> {
    name: &'a str,
    case: u32,
    seed: u64,
}

impl Drop for FailureReporter<'_> {
    fn drop(&mut self) {
        if std::thread::panicking() {
            eprintln!(
                "proptest stub: '{}' failed at case {} (deterministic seed {:#018x}; reruns reproduce it — no shrinking)",
                self.name, self.case, self.seed
            );
        }
    }
}

/// Drives one `proptest!`-generated test: runs `config.cases` accepted cases
/// against a name-seeded deterministic generator.
pub fn run_proptest<F>(config: &ProptestConfig, name: &str, mut case: F)
where
    F: FnMut(&mut TestRng) -> Result<(), TestCaseSkip>,
{
    let seed = fnv1a(name);
    let mut rng = TestRng::from_seed(seed);
    let mut accepted = 0u32;
    let mut skipped = 0u32;
    let mut case_idx = 0u32;
    while accepted < config.cases {
        let reporter = FailureReporter {
            name,
            case: case_idx,
            seed,
        };
        let outcome = case(&mut rng);
        drop(reporter);
        match outcome {
            Ok(()) => accepted += 1,
            Err(TestCaseSkip) => {
                skipped += 1;
                assert!(
                    skipped <= config.cases.saturating_mul(20).max(1000),
                    "proptest stub: '{name}' rejected {skipped} cases via prop_assume — strategy too narrow"
                );
            }
        }
        case_idx += 1;
    }
}

/// The `proptest!` block macro: an optional `#![proptest_config(...)]`
/// followed by `#[test] fn name(pat in strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($config:expr) $($(#[$meta:meta])* fn $name:ident($($arg:pat in $strategy:expr),+ $(,)?) $body:block)*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            $crate::run_proptest(&config, stringify!($name), |rng| {
                $(let $arg = $crate::Strategy::generate(&$strategy, rng);)+
                $body
                Ok(())
            });
        }
    )*};
}

/// Boolean property assertion; panics with the optional formatted message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Equality property assertion; panics with the optional formatted message.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => { assert_eq!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)+) => { assert_eq!($left, $right, $($fmt)+) };
}

/// Skips the current case (without failing) when the precondition is false.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return Err($crate::TestCaseSkip);
        }
    };
}

pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assume, proptest, Arbitrary, ProptestConfig,
        Strategy,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::TestRng;

    #[test]
    fn ranges_tuples_and_vec_stay_in_bounds() {
        let mut rng = TestRng::from_seed(1);
        let strategy = (
            1i128..=10,
            0usize..3,
            super::collection::vec(0u32..5, 2..=4),
        );
        for _ in 0..500 {
            let (a, b, v) = Strategy::generate(&strategy, &mut rng);
            assert!((1..=10).contains(&a));
            assert!(b < 3);
            assert!((2..=4).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 5));
        }
    }

    #[test]
    fn filter_map_and_flat_map_compose() {
        let mut rng = TestRng::from_seed(2);
        let even = (0i64..100).prop_filter_map("even", |x| (x % 2 == 0).then_some(x));
        let pair = (1usize..=3).prop_flat_map(|n| super::collection::vec(0i32..10, n));
        for _ in 0..200 {
            assert_eq!(Strategy::generate(&even, &mut rng) % 2, 0);
            let v = Strategy::generate(&pair, &mut rng);
            assert!((1..=3).contains(&v.len()));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn macro_end_to_end(a in 0i64..50, flag in any::<bool>()) {
            prop_assume!(a != 13);
            prop_assert!(a < 50, "a out of range: {a}");
            let doubled = if flag { a * 2 } else { a };
            prop_assert_eq!(doubled % 2 == 0 || !flag, true, "doubling parity broke");
        }
    }
}
