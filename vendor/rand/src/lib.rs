//! Offline API-subset stub of the `rand` crate.
//!
//! Implements exactly the surface this workspace uses — deterministic
//! `StdRng::seed_from_u64` plus `Rng::gen_range` over integer ranges — with
//! the same call-site syntax as rand 0.8, so swapping in the real crate is a
//! one-line manifest change. See `vendor/README.md` for the policy.

use std::ops::{Range, RangeInclusive};

/// Core entropy source: everything derives from `next_u64`.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;
}

/// User-facing sampling helpers, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from an integer range (`lo..hi` or `lo..=hi`).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seeding. The real trait requires `type Seed`/`from_seed`; this workspace
/// only ever seeds from a `u64`, so only that entry point exists.
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic SplitMix64 generator standing in for rand's `StdRng`.
    ///
    /// Not cryptographic — but the workspace uses `StdRng` only for
    /// reproducible workload generation and simulator jitter, where the
    /// requirements are determinism and reasonable equidistribution.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            StdRng { state }
        }
    }
}

/// Types that can be sampled uniformly from a closed interval.
pub trait SampleUniform: Copy + PartialOrd {
    fn sample_inclusive<G: RngCore + ?Sized>(rng: &mut G, lo: Self, hi: Self) -> Self;

    /// Predecessor (turns an exclusive upper bound inclusive).
    fn prev(self) -> Self;
}

/// Range shapes accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample_single<G: RngCore + ?Sized>(self, rng: &mut G) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<G: RngCore + ?Sized>(self, rng: &mut G) -> T {
        assert!(self.start < self.end, "gen_range called with empty range");
        T::sample_inclusive(rng, self.start, self.end.prev())
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<G: RngCore + ?Sized>(self, rng: &mut G) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "gen_range called with empty range");
        T::sample_inclusive(rng, lo, hi)
    }
}

fn draw_u128<G: RngCore + ?Sized>(rng: &mut G) -> u128 {
    (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
}

macro_rules! impl_uniform_int {
    ($($t:ty => $u:ty),* $(,)?) => {$(
        impl SampleUniform for $t {
            fn sample_inclusive<G: RngCore + ?Sized>(rng: &mut G, lo: Self, hi: Self) -> Self {
                // Width of [lo, hi] as an unsigned value of the same size;
                // wraps to 0 exactly when the interval covers the whole
                // domain, in which case any raw draw is a valid sample.
                let span = (hi.wrapping_sub(lo) as $u as u128).wrapping_add(1);
                if span == 0 {
                    return draw_u128(rng) as $t;
                }
                // Plain modulo reduction: the bias is ≤ span/2^128, far below
                // anything observable at the workspace's sample counts.
                let offset = draw_u128(rng) % span;
                lo.wrapping_add(offset as $u as $t)
            }

            fn prev(self) -> Self {
                self.wrapping_sub(1)
            }
        }
    )*};
}

impl_uniform_int! {
    i8 => u8, i16 => u16, i32 => u32, i64 => u64, i128 => u128, isize => usize,
    u8 => u8, u16 => u16, u32 => u32, u64 => u64, u128 => u128, usize => usize,
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_and_in_range() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            let x: i128 = a.gen_range(-5i128..=9);
            assert!((-5..=9).contains(&x));
            assert_eq!(x, b.gen_range(-5i128..=9));
        }
    }

    #[test]
    fn exclusive_range_excludes_end() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: usize = rng.gen_range(0..3);
            assert!(x < 3);
        }
    }

    #[test]
    fn covers_full_span() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 10];
        for _ in 0..500 {
            seen[rng.gen_range(0usize..10)] = true;
        }
        assert!(
            seen.iter().all(|&s| s),
            "10-value range not covered in 500 draws"
        );
    }
}
