//! Offline API-subset stub of the `criterion` crate.
//!
//! Implements the benching surface this workspace uses — `Criterion`,
//! benchmark groups, `Bencher::iter`, `BenchmarkId`, `black_box`, and the
//! `criterion_group!`/`criterion_main!` macros — with a simple wall-clock
//! mean-per-iteration measurement and a plain-text report. No statistics,
//! plots, or baselines; call sites stay byte-for-byte compatible with
//! criterion 0.5 so the real crate can be swapped in via the root manifest.
//! See `vendor/README.md` for the policy.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Target wall-clock time per measured benchmark (after warm-up).
const TARGET_MEASURE_TIME: Duration = Duration::from_millis(200);
const WARMUP_TIME: Duration = Duration::from_millis(50);

/// Identifies one benchmark within a group, e.g. `group/parameter`.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{parameter}", function_name.into()),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(id: &str) -> Self {
        BenchmarkId { id: id.to_owned() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        BenchmarkId { id }
    }
}

/// Runs one benchmark routine repeatedly and records the mean iteration time.
#[derive(Debug, Default)]
pub struct Bencher {
    mean_ns: f64,
    iters: u64,
}

impl Bencher {
    /// Times `routine`: brief warm-up, then batches until the measurement
    /// budget is spent; reports the overall mean time per iteration.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let warmup_end = Instant::now() + WARMUP_TIME;
        let mut batch = 1u64;
        while Instant::now() < warmup_end {
            for _ in 0..batch {
                black_box(routine());
            }
            batch = (batch * 2).min(1 << 20);
        }

        let mut total = Duration::ZERO;
        let mut iters = 0u64;
        // Batch size chosen so each timed chunk is long enough for the clock.
        while total < TARGET_MEASURE_TIME {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            total += start.elapsed();
            iters += batch;
        }
        self.iters = iters;
        self.mean_ns = total.as_nanos() as f64 / iters as f64;
    }
}

/// Entry point mirroring `criterion::Criterion`.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        run_one(id, f);
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
        }
    }
}

/// A named group of related benchmarks (`group/bench` report lines).
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for compatibility; the stub sizes runs by wall-clock budget.
    pub fn sample_size(&mut self, _samples: usize) -> &mut Self {
        self
    }

    /// Accepted for compatibility; the stub's budget is fixed.
    pub fn measurement_time(&mut self, _time: Duration) -> &mut Self {
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: F,
    ) -> &mut Self {
        let id = id.into();
        run_one(&format!("{}/{}", self.name, id.id), f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(&format!("{}/{}", self.name, id.id), |b| f(b, input));
        self
    }

    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(id: &str, mut f: F) {
    let mut bencher = Bencher::default();
    f(&mut bencher);
    let unit_scaled = if bencher.mean_ns >= 1e6 {
        format!("{:>12.3} ms/iter", bencher.mean_ns / 1e6)
    } else if bencher.mean_ns >= 1e3 {
        format!("{:>12.3} µs/iter", bencher.mean_ns / 1e3)
    } else {
        format!("{:>12.1} ns/iter", bencher.mean_ns)
    };
    println!("bench {id:<48} {unit_scaled}   ({} iters)", bencher.iters);
}

/// Defines a runner function that applies each target to one `Criterion`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Defines `main` running every group in order.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut b = Bencher::default();
        b.iter(|| black_box(7u64).wrapping_mul(3));
        assert!(b.iters > 0);
        assert!(b.mean_ns >= 0.0);
    }

    #[test]
    fn group_api_compiles_and_runs() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("stub");
        group.sample_size(10);
        group.bench_with_input(BenchmarkId::from_parameter(4), &4u64, |b, &n| {
            b.iter(|| black_box(n) * 2)
        });
        group.finish();
    }
}
