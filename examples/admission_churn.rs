//! Churn-heavy admission demo: a clustered 30-transaction system served by
//! an [`AdmissionController`] under 150 batches of arrivals, departures,
//! and platform retunes. Prints the admission log summary and verifies at
//! the end that the incrementally maintained state equals a from-scratch
//! offline analysis (exits non-zero otherwise — CI runs this).
//!
//! ```sh
//! cargo run --release --example admission_churn
//! ```

use hsched::admission::gen::{random_scenario, ChurnGen, ScenarioSpec};
use hsched::prelude::*;

fn main() {
    let spec = ScenarioSpec {
        clusters: 6,
        platforms_per_cluster: 2,
        transactions: 30,
        max_tasks_per_tx: 3,
        seed: 4, // a schedulable draw (see gen's budget guarantees)
        ..ScenarioSpec::default()
    };
    let set = random_scenario(&spec);
    println!(
        "scenario: {} transactions over {} platforms in {} clusters",
        set.transactions().len(),
        set.platforms().len(),
        spec.clusters
    );

    let mut controller =
        AdmissionController::new(set, AnalysisConfig::default(), AdmissionPolicy::default())
            .expect("seed analysis");
    println!(
        "seeded: schedulable = {}, epoch 0 analyzed everything once",
        controller.schedulable()
    );

    let mut churn = ChurnGen::new(&spec, 2024);
    let mut admitted = 0u32;
    let mut rejected = 0u32;
    let started = std::time::Instant::now();
    for step in 0..150 {
        let batch = churn.next_batch(controller.current_set(), 3);
        let outcome = controller.commit(&batch);
        if outcome.verdict.admitted() {
            admitted += 1;
        } else {
            rejected += 1;
        }
        if step < 5 || step % 50 == 49 {
            println!("  {outcome}");
        }
    }
    let elapsed = started.elapsed();

    let stats = controller.stats();
    let live = controller.current_set().transactions().len();
    println!(
        "\nafter {} epochs in {:.1} ms: {admitted} admitted, {rejected} rejected, {live} live transactions",
        stats.epochs,
        elapsed.as_secs_f64() * 1e3
    );
    println!(
        "incremental work: analyzed {} transaction-fixpoints, reused {} cached ({:.1}% saved), {} warm epochs",
        stats.transactions_analyzed,
        stats.analyses_avoided,
        100.0 * stats.analyses_avoided as f64
            / (stats.transactions_analyzed + stats.analyses_avoided).max(1) as f64,
        stats.warm_epochs
    );

    // The equivalence invariant the property tests enforce, demonstrated
    // end-to-end: cached incremental state == offline from-scratch oracle.
    let oracle = analyze_with(controller.current_set(), &AnalysisConfig::default())
        .expect("oracle analysis");
    let cached = controller.report();
    assert_eq!(cached.tasks, oracle.tasks, "incremental state drifted!");
    assert_eq!(cached.verdicts, oracle.verdicts, "verdicts drifted!");
    println!("\nincremental state verified against from-scratch analysis ✓");
    assert!(controller.schedulable(), "live system must be schedulable");
}
