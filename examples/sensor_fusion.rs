//! Sensor fusion from a `.hsc` specification: the full tool flow.
//!
//! Parses the paper's Figures 1–2 written in the `hsched-spec` language,
//! validates the architecture, flattens it to transactions (§2.4), analyzes
//! it (§3), simulates it, and renders an ASCII Gantt chart of the first
//! 100 ms.
//!
//! Run with: `cargo run --example sensor_fusion`

use hsched::prelude::*;
use hsched::sim::{render_gantt, ExecutionModel};

const SPEC: &str = r#"
// Figure 1: the sensor-reading component class.
class SensorReading {
    provided read() mit 50;
    thread Thread1 periodic period 15 priority 2 {
        task acquire wcet 1 bcet 0.25;
    }
    thread Thread2 realizes read priority 1 {
        task serve_read wcet 1 bcet 0.8;
    }
}

// Figure 2: the integrator.
class SensorIntegration {
    provided read() mit 70;
    required readSensor1();
    required readSensor2();
    thread Thread1 realizes read priority 1 {
        task serve_read wcet 7 bcet 5;
    }
    thread Thread2 periodic period 50 priority 2 {
        task init wcet 1 bcet 0.8;
        call readSensor1;
        call readSensor2;
        task compute wcet 1 bcet 0.8;
    }
}

// Table 2: the abstract computing platforms.
platform Pi1 cpu alpha 0.4 delta 1 beta 1;
platform Pi2 cpu alpha 0.4 delta 1 beta 1;
platform Pi3 cpu alpha 0.2 delta 2 beta 1;

// §2.2.1: the integration.
instance Sensor1 : SensorReading on Pi1 node 0;
instance Sensor2 : SensorReading on Pi2 node 0;
instance Integrator : SensorIntegration on Pi3 node 0;

bind Integrator.readSensor1 -> Sensor1.read;
bind Integrator.readSensor2 -> Sensor2.read;
"#;

fn main() {
    let (system, platforms) = parse_and_validate(SPEC).expect("spec parses");
    println!(
        "parsed {} classes, {} instances, {} bindings",
        system.classes.len(),
        system.instances.len(),
        system.bindings.len()
    );

    let set = flatten(&system, &platforms, FlattenOptions::default()).expect("flattens");
    println!("\n== Transactions (§2.4 flattening) ==");
    for (i, tx) in set.transactions().iter().enumerate() {
        println!(
            "  Γ{} {:<22} T = {:<4} D = {:<4} tasks:",
            i + 1,
            tx.name,
            tx.period.to_string(),
            tx.deadline.to_string()
        );
        for (j, t) in tx.tasks().iter().enumerate() {
            println!(
                "     τ{},{} {:<32} C = {:<4} Cbest = {:<5} p = {} on {}",
                i + 1,
                j + 1,
                t.name,
                t.wcet.to_string(),
                t.bcet.to_string(),
                t.priority,
                t.platform
            );
        }
    }

    let report = analyze(&set);
    println!("\n== Schedulability ==");
    println!("{report}");

    // Simulate with randomized execution times and record a trace.
    let mut config = SimConfig::randomized(rat(100, 1), 7);
    config.execution = ExecutionModel::Random;
    config.record_trace = true;
    let result = simulate(&set, &config);
    println!("== First 100 ms, randomized execution (seed 7) ==");
    print!(
        "{}",
        render_gantt(&result.trace, platforms.len(), rat(0, 1), rat(100, 1), 100)
    );
}
