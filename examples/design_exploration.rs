//! Design-space exploration: the paper's §5 future work, implemented.
//!
//! Starting from the paper's provisioning (Σα = 1.0 across Π1–Π3), this
//! example:
//! 1. finds the minimal rate each platform needs individually,
//! 2. runs the greedy Σα minimizer across all platforms,
//! 3. sweeps the (α, Δ) Pareto frontier for the integrator's platform, and
//! 4. synthesizes concrete periodic-server parameters (Q, P) for the
//!    optimized operating points.
//!
//! Run with: `cargo run --example design_exploration`

use hsched::design::{
    max_delta, min_alpha, minimize_bandwidth, pareto_sweep, sensitivity_report, synthesize_server,
    DesignConfig,
};
use hsched::prelude::*;
use hsched::transaction::paper_example;

fn main() {
    let set = paper_example::transactions();
    let config = DesignConfig::default();

    println!("== Individual platform slack ==");
    println!("  platform      provisioned α   minimal α    max Δ at current α");
    for k in 0..set.platforms().len() {
        let id = PlatformId(k);
        let provisioned = set.platforms()[id].alpha();
        let minimal = min_alpha(&set, id, &config).unwrap();
        let delta_room = max_delta(&set, id, rat(50, 1), &config).unwrap();
        println!(
            "  {:<12}  {:<14}  {:<11}  {}",
            set.platforms()[id].name(),
            provisioned.to_string(),
            minimal.to_string(),
            delta_room
        );
    }

    println!("\n== Greedy Σα minimization ==");
    let plan = minimize_bandwidth(&set, &config).unwrap();
    println!(
        "  total bandwidth: {} -> {} ({:.1}% saved)",
        plan.before,
        plan.after,
        (plan.before - plan.after).to_f64() / plan.before.to_f64() * 100.0
    );
    for (k, alpha) in plan.alphas.iter().enumerate() {
        println!("    Π{}: α = {}", k + 1, alpha);
    }
    let trimmed = set.with_platforms(plan.platforms.clone()).unwrap();
    assert!(analyze(&trimmed).schedulable());
    println!("  re-verified: trimmed system is schedulable");

    println!("\n== Per-task WCET headroom (most critical first) ==");
    for slack in sensitivity_report(&set, rat(16, 1), &config) {
        let label = match slack.max_scale {
            Some(x) if x >= rat(16, 1) => ">= 16x".to_string(),
            Some(x) => format!("{:.2}x", x.to_f64()),
            None => "unschedulable".to_string(),
        };
        println!("  {} {:<16} {label}", slack.task, slack.name);
    }

    println!("\n== (α, Δ) Pareto frontier for Π3 (Integrator) ==");
    let alphas: Vec<Rational> = (3..=10).map(|k| rat(k, 20)).collect(); // 0.15 … 0.5
    let frontier = pareto_sweep(
        &set,
        PlatformId(2),
        &alphas,
        rat(50, 1),
        &DesignConfig {
            threads: 0, // all cores
            ..DesignConfig::default()
        },
    );
    println!("  α        max tolerable Δ      server (Q, P)");
    for point in &frontier {
        match point.max_delta {
            Some(d) => {
                let server = synthesize_server(point.alpha, d);
                let server_str = match server {
                    Some(s) => format!("Q = {}, P = {}", s.budget(), s.period()),
                    None => "dedicated CPU".to_string(),
                };
                println!(
                    "  {:<8} {:<20} {server_str}",
                    point.alpha.to_string(),
                    d.to_string()
                );
            }
            None => println!("  {:<8} infeasible", point.alpha.to_string()),
        }
    }
}
