//! Distributed control over a CAN-like network: RPC across nodes.
//!
//! A controller node periodically reads a remote sensor and commands a
//! remote actuator. Both calls cross the network, so the §2.4 flattening
//! inserts request/response *message tasks* on a network platform — the
//! paper's "the network is similar to a computational node" (§2.2.1).
//!
//! The example shows:
//! * remote bindings with message costs,
//! * message tasks appearing inside the control transaction,
//! * end-to-end analysis including network contention,
//! * how much network bandwidth the design actually needs
//!   (`hsched-design`).
//!
//! Run with: `cargo run --example distributed_control`

use hsched::design::{min_alpha, DesignConfig};
use hsched::prelude::*;

fn main() {
    // ---- Platforms: three CPU reservations + one CAN share. ------------
    let mut platforms = PlatformSet::new();
    let p_ctrl =
        platforms.add(Platform::linear("CtrlCPU", rat(1, 2), rat(1, 1), rat(0, 1)).unwrap());
    let p_sense =
        platforms.add(Platform::linear("SenseCPU", rat(2, 5), rat(1, 1), rat(0, 1)).unwrap());
    let p_act = platforms.add(Platform::linear("ActCPU", rat(2, 5), rat(1, 1), rat(0, 1)).unwrap());
    let p_can = platforms.add(Platform::network("CAN", rat(1, 2), rat(1, 1), rat(0, 1)).unwrap());

    // ---- Component classes. ---------------------------------------------
    let sensor = ComponentClass::new("RemoteSensor")
        .provides(ProvidedMethod::new("sample", rat(20, 1)))
        .thread(ThreadSpec::realizes(
            "Serve",
            "sample",
            2,
            vec![Action::task("adc_read", rat(1, 1), rat(1, 2))],
        ));
    let actuator = ComponentClass::new("RemoteActuator")
        .provides(ProvidedMethod::new("command", rat(20, 1)))
        .thread(ThreadSpec::realizes(
            "Serve",
            "command",
            2,
            vec![Action::task("apply", rat(1, 2), rat(1, 4))],
        ));
    let controller = ComponentClass::new("Controller")
        .requires(RequiredMethod::derived("sample"))
        .requires(RequiredMethod::derived("command"))
        .thread(ThreadSpec::periodic(
            "Loop",
            rat(30, 1),
            3,
            vec![
                Action::call("sample"),
                Action::task("control_law", rat(2, 1), rat(1, 1)),
                Action::call("command"),
            ],
        ))
        .thread(ThreadSpec::periodic(
            "Housekeeping",
            rat(100, 1),
            1,
            vec![Action::task("log", rat(3, 1), rat(1, 1))],
        ));

    // ---- Architecture: controller on node 0, devices on nodes 1 and 2. --
    let mut b = SystemBuilder::new();
    let c_sensor = b.add_class(sensor);
    let c_act = b.add_class(actuator);
    let c_ctrl = b.add_class(controller);
    let i_sensor = b.instantiate("FrontSensor", c_sensor, p_sense, 1);
    let i_act = b.instantiate("Valve", c_act, p_act, 2);
    let i_ctrl = b.instantiate("MainLoop", c_ctrl, p_ctrl, 0);
    let can = |prio: u32| RpcLink {
        network: p_can,
        request_wcet: rat(1, 2),
        request_bcet: rat(1, 4),
        response_wcet: rat(1, 2),
        response_bcet: rat(1, 4),
        priority: prio,
    };
    b.bind_remote(i_ctrl, "sample", i_sensor, "sample", can(2));
    b.bind_remote(i_ctrl, "command", i_act, "command", can(1));
    let system = b.build();

    let report = system.validate();
    assert!(report.is_ok(), "validation failed: {:?}", report.errors);

    // ---- Flatten and inspect the control transaction. -------------------
    let set = flatten(&system, &platforms, FlattenOptions::default()).expect("flattens");
    println!("== Control-loop transaction (messages inlined) ==");
    let (loop_idx, loop_tx) = set
        .transactions()
        .iter()
        .enumerate()
        .find(|(_, t)| t.name == "MainLoop.Loop")
        .expect("control transaction exists");
    for (j, t) in loop_tx.tasks().iter().enumerate() {
        println!(
            "  τ{},{} {:<28} C = {:<4} on {} ({:?})",
            loop_idx + 1,
            j + 1,
            t.name,
            t.wcet.to_string(),
            set.platforms()[t.platform].name(),
            t.kind
        );
    }

    // ---- Analyze. --------------------------------------------------------
    let analysis = analyze(&set);
    println!("\n== Analysis ==");
    println!("{analysis}");
    assert!(analysis.schedulable(), "design should be schedulable");

    // ---- Simulate and compare. -------------------------------------------
    let sim = simulate(&set, &SimConfig::worst_case(rat(4000, 1)));
    let bound = analysis.response(loop_idx, loop_tx.len() - 1);
    let observed = sim
        .task_stats(loop_idx, loop_tx.len() - 1)
        .max_response
        .unwrap();
    println!("control loop end-to-end: bound = {bound}, observed = {observed}");
    assert!(observed <= bound);

    // ---- How little CAN bandwidth would do? ------------------------------
    let needed = min_alpha(&set, p_can, &DesignConfig::default()).unwrap();
    println!(
        "\nCAN share provisioned at α = {}, minimum schedulable α ≈ {} ({}% slack)",
        set.platforms()[p_can].alpha(),
        needed,
        ((set.platforms()[p_can].alpha() - needed) / set.platforms()[p_can].alpha() * rat(100, 1))
            .to_f64()
            .round()
    );
}
