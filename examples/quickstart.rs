//! Quickstart: analyze the paper's sensor-fusion example (§2.2 / §4).
//!
//! Builds the transactions of Figure 5 with the parameters of Tables 1–2,
//! runs the holistic analysis, prints the iteration trace in the layout of
//! Table 3, and cross-checks the bounds against the simulator.
//!
//! Run with: `cargo run --example quickstart`

use hsched::prelude::*;
use hsched::transaction::paper_example;

fn main() {
    let system = paper_example::transactions();

    println!("== Platforms (Table 2) ==");
    for (id, p) in system.platforms().iter() {
        println!("  {id}: {p}");
    }

    println!("\n== Analysis (§3.2 holistic iteration) ==");
    let report = analyze(&system);
    println!("{report}");

    println!("== Iteration trace for Γ1 (the paper's Table 3) ==");
    print!("{}", report.trace_table(0));
    println!(
        "\n(The paper's Table 3 prints R(3)1,4 = 39; replaying its equations\n\
         gives 31 — both below the deadline of 50. See EXPERIMENTS.md.)"
    );

    println!("\n== Simulation cross-check ==");
    let sim = simulate(&system, &SimConfig::worst_case(rat(5000, 1)));
    println!("  task    analysis-bound   observed-max   slack");
    for (i, tx) in system.transactions().iter().enumerate() {
        for j in 0..tx.len() {
            let bound = report.response(i, j);
            let observed = sim
                .task_stats(i, j)
                .max_response
                .expect("every task completes within the horizon");
            assert!(observed <= bound, "simulation exceeded the analytic bound");
            println!(
                "  τ{},{}    {:<14}   {:<12}   {}",
                i + 1,
                j + 1,
                bound.to_string(),
                observed.to_string(),
                bound - observed
            );
        }
    }
    println!(
        "\nall observed responses within analytic bounds; {} deadline misses",
        (0..system.transactions().len())
            .map(|i| sim.transaction_stats(i).deadline_misses)
            .sum::<u64>()
    );
}
