//! ARINC-653-style partitions: three avionics functions time-share one CPU
//! through a static TDMA major frame.
//!
//! Each partition is an abstract computing platform backed by a
//! [`TdmaSupply`]: the flight-control partition owns two slots per frame
//! (splitting a reservation shortens its worst-case blackout), the others
//! one each. The example analyzes the system twice — through the paper's
//! linear (α, Δ, β) abstraction and by inverting the exact TDMA supply
//! staircase — quantifying the abstraction's pessimism that §2.3 of the
//! paper concedes, and then validates both against simulation.
//!
//! Run with: `cargo run --example avionics_partitions`

use hsched::analysis::{analyze_with, AnalysisConfig, ServiceTimeMode};
use hsched::platform::{PlatformKind, ServiceModel};
use hsched::prelude::*;
use hsched::supply::TdmaSupply;

fn main() {
    // Major frame of 20 ms:
    //   [0, 4)  flight control     (slot 1 of 2)
    //   [4, 8)  navigation
    //   [10,14) flight control     (slot 2 of 2)
    //   [14,17) cabin/telemetry
    let frame = rat(20, 1);
    let fc_slots = TdmaSupply::new(frame, vec![(rat(0, 1), rat(4, 1)), (rat(10, 1), rat(4, 1))])
        .expect("valid slots");
    let nav_slots = TdmaSupply::new(frame, vec![(rat(4, 1), rat(4, 1))]).expect("valid slots");
    let cab_slots = TdmaSupply::new(frame, vec![(rat(14, 1), rat(3, 1))]).expect("valid slots");

    let mut platforms = PlatformSet::new();
    let p_fc = platforms.add(Platform::new(
        "FlightCtl",
        PlatformKind::Cpu,
        ServiceModel::Tdma(fc_slots),
    ));
    let p_nav = platforms.add(Platform::new(
        "Nav",
        PlatformKind::Cpu,
        ServiceModel::Tdma(nav_slots),
    ));
    let p_cab = platforms.add(Platform::new(
        "Cabin",
        PlatformKind::Cpu,
        ServiceModel::Tdma(cab_slots),
    ));

    println!("== Partition supply abstractions ==");
    for (id, p) in platforms.iter() {
        println!("  {id} {p}");
    }

    // Workload: control loop queries nav over a partition-local RPC;
    // telemetry runs independently.
    let nav_service = ComponentClass::new("NavService")
        .provides(ProvidedMethod::new("position", rat(40, 1)))
        .thread(ThreadSpec::realizes(
            "Serve",
            "position",
            2,
            vec![Action::task("kalman", rat(2, 1), rat(1, 1))],
        ));
    let flight = ComponentClass::new("FlightControl")
        .requires(RequiredMethod::derived("position"))
        .thread(ThreadSpec::periodic(
            "Loop",
            rat(40, 1),
            3,
            vec![
                Action::task("sense", rat(1, 1), rat(1, 2)),
                Action::call("position"),
                Action::task("actuate", rat(2, 1), rat(1, 1)),
            ],
        ));
    let cabin = ComponentClass::new("Cabin").thread(ThreadSpec::periodic(
        "Telemetry",
        rat(100, 1),
        1,
        vec![Action::task("pack_and_send", rat(5, 1), rat(2, 1))],
    ));

    let mut b = SystemBuilder::new();
    let c_nav = b.add_class(nav_service);
    let c_fc = b.add_class(flight);
    let c_cab = b.add_class(cabin);
    let i_nav = b.instantiate("NAV", c_nav, p_nav, 0);
    let i_fc = b.instantiate("FC", c_fc, p_fc, 0);
    b.instantiate("CAB", c_cab, p_cab, 0);
    b.bind(i_fc, "position", i_nav, "position");
    let system = b.build();
    assert!(system.validate().is_ok());

    let set = flatten(&system, &platforms, FlattenOptions::default()).expect("flattens");

    // Analyze under both service models.
    let linear = analyze_with(&set, &AnalysisConfig::default()).expect("linear analysis");
    let exact = analyze_with(
        &set,
        &AnalysisConfig {
            service_mode: ServiceTimeMode::ExactCurve,
            ..AnalysisConfig::default()
        },
    )
    .expect("exact analysis");

    println!("\n== Linear abstraction vs exact TDMA staircase ==");
    println!("  task   R_linear   R_exact   pessimism");
    for r in set.task_refs() {
        let rl = linear.response(r.tx, r.idx);
        let re = exact.response(r.tx, r.idx);
        assert!(re <= rl, "staircase inversion must refine the linear bound");
        println!(
            "  {r}   {:<9} {:<8} {:+.1}%",
            rl.to_string(),
            re.to_string(),
            (rl / re - rat(1, 1)).to_f64() * 100.0
        );
    }
    println!(
        "\nverdicts: linear says {}, exact says {}",
        if linear.schedulable() {
            "schedulable"
        } else {
            "NOT schedulable"
        },
        if exact.schedulable() {
            "schedulable"
        } else {
            "NOT schedulable"
        },
    );

    // Simulate the real TDMA mechanism: both bounds must hold.
    let sim = simulate(&set, &SimConfig::worst_case(rat(4000, 1)));
    println!("\n== Simulation (TDMA slots executed exactly) ==");
    for r in set.task_refs() {
        let observed = sim.task_stats(r.tx, r.idx).max_response.unwrap();
        assert!(observed <= exact.response(r.tx, r.idx));
        println!(
            "  {r} observed {:<8} ≤ exact bound {}",
            observed.to_string(),
            exact.response(r.tx, r.idx)
        );
    }
    for i in 0..set.transactions().len() {
        assert_eq!(sim.transaction_stats(i).deadline_misses, 0);
    }
    println!("\nall bounds hold; no deadline misses");
}
