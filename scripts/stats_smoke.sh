#!/usr/bin/env bash
# Smoke test for the engine telemetry surface: `hsched admit --stats
# --json` and `hsched stats` against the demo request script. The JSON
# leg is round-tripped through python's parser, so a malformed telemetry
# block (the one part of the envelope built from runtime-varying metric
# maps) fails loudly. CI runs this on every push.
set -euo pipefail
cd "$(dirname "$0")/.."

SPEC=scripts/admit_demo.hsc
SCRIPT=scripts/admit_demo.req

json=$(cargo run --release --quiet --locked -p hsched-cli --bin hsched -- \
  admit "$SPEC" "$SCRIPT" --stats --json)
echo "$json" | grep -q '"telemetry":{'
echo "$json" | grep -q '"engine.epochs_settled":4'
echo "$json" | grep -q '"engine.phase.analyze_ns":{'
echo "$json" | grep -q '"analysis.rta_cache.foreign_hits"'

# Round-trip: the whole envelope must be valid JSON and the telemetry
# block must carry coherent figures.
echo "$json" | python3 -c '
import json, sys
doc = json.load(sys.stdin)
assert doc["command"] == "admit", doc["command"]
t = doc["telemetry"]
epochs = t["counters"]["engine.epochs_settled"]
assert epochs == 4, epochs
for phase in ("reserve", "route", "checkout", "analyze", "settle"):
    h = t["histograms"]["engine.phase.%s_ns" % phase]
    assert h["count"] == epochs, (phase, h)
    assert h["p50"] <= h["p95"] <= h["p99"] <= h["max"], (phase, h)
print("telemetry round-trip: OK")
'

out=$(cargo run --release --quiet --locked -p hsched-cli --bin hsched -- \
  stats "$SPEC" "$SCRIPT")
echo "$out"
echo "$out" | grep -q "4 epoch(s) committed (3 admitted, 1 rejected)"
echo "$out" | grep -q "engine.phase.settle_ns"
echo "$out" | grep -q "admission.cone.transactions"

echo "stats smoke: OK"
