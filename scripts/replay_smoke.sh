#!/usr/bin/env bash
# Crash-recovery smoke test for the journaled admission engine:
# admit (writing the write-ahead journal) → "kill" (the admit process is
# gone; tear the journal tail like a mid-write crash would) → replay →
# verify the rebuilt engine is byte-identical via the state digest.
# CI runs this on every push.
set -euo pipefail
cd "$(dirname "$0")/.."

SPEC=scripts/admit_demo.hsc
SCRIPT=scripts/admit_demo.req
JOURNAL=$(mktemp -t hsched-replay-smoke.XXXXXX.journal)
trap 'rm -f "$JOURNAL"' EXIT

run() { cargo run --release --quiet --locked -p hsched-cli --bin hsched -- "$@"; }

# 1. Admit with a journal attached; capture the engine's state digest.
out=$(run admit "$SPEC" "$SCRIPT" --journal "$JOURNAL")
echo "$out"
echo "$out" | grep -q "epoch 1: admitted"
echo "$out" | grep -q "epoch 2: rejected (overload on Pi3)"
echo "$out" | grep -q "epoch 4: admitted"
digest=$(echo "$out" | grep -o 'state digest [0-9a-f]\{16\}' | awk '{print $3}')
test -n "$digest"

# 2. The admit process has exited ("crashed"). Replay must rebuild the
#    byte-identical engine: same digest, all 4 epochs.
replayed=$(run replay "$SPEC" "$JOURNAL")
echo "$replayed"
echo "$replayed" | grep -q "replayed 4 epoch(s)"
echo "$replayed" | grep -q "state digest $digest"

# 3. Crash tolerance: tear the journal mid-record (as a crash during the
#    final append would) — replay repairs the tail and rebuilds the state
#    as of the last complete record.
printf 'epoch 5 1\nadd torn' >> "$JOURNAL"
torn=$(run replay "$SPEC" "$JOURNAL")
echo "$torn" | grep -q "replayed 4 epoch(s)"
echo "$torn" | grep -q "state digest $digest"

# 4. JSON surfaces ride the same versioned envelope (schema v2).
json=$(run replay "$SPEC" "$JOURNAL" --json)
echo "$json" | grep -q '"v":2,"command":"replay"'
echo "$json" | grep -q "\"digest\":\"$digest\""

# 5. Compaction: fold the journal's history into a snapshot block. The
#    digest must survive, and a subsequent replay resumes from the
#    snapshot with zero tail epochs.
compacted=$(run compact "$SPEC" "$JOURNAL")
echo "$compacted"
echo "$compacted" | grep -q "compacted 4 epoch(s) into a snapshot"
echo "$compacted" | grep -q "state digest $digest"
resumed=$(run replay "$SPEC" "$JOURNAL")
echo "$resumed" | grep -q "replayed 0 epoch(s)"
echo "$resumed" | grep -q "resumed from snapshot at epoch 4"
echo "$resumed" | grep -q "state digest $digest"

# 6. Compact → crash → replay: a record torn after the snapshot is
#    repaired; the engine rebuilds from snapshot + surviving tail.
printf 'epoch 5 1\nadd torn' >> "$JOURNAL"
torn=$(run replay "$SPEC" "$JOURNAL")
echo "$torn" | grep -q "replayed 0 epoch(s)"
echo "$torn" | grep -q "resumed from snapshot at epoch 4"
echo "$torn" | grep -q "state digest $digest"

echo "replay smoke: OK"
