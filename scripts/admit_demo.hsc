// The paper's §2 system (Tables 1-2): seed state for the admission demo.
class SensorReading {
    provided read() mit 50;
    thread Thread1 periodic period 15 priority 2 { task acquire wcet 1 bcet 0.25; }
    thread Thread2 realizes read priority 1 { task serve_read wcet 1 bcet 0.8; }
}
class SensorIntegration {
    provided read() mit 70;
    required readSensor1();
    required readSensor2();
    thread Thread1 realizes read priority 1 { task serve_read wcet 7 bcet 5; }
    thread Thread2 periodic period 50 priority 2 {
        task init wcet 1 bcet 0.8;
        call readSensor1;
        call readSensor2;
        task compute wcet 1 bcet 0.8;
    }
}
platform Pi1 cpu alpha 0.4 delta 1 beta 1;
platform Pi2 cpu alpha 0.4 delta 1 beta 1;
platform Pi3 cpu alpha 0.2 delta 2 beta 1;
instance Sensor1 : SensorReading on Pi1 node 0;
instance Sensor2 : SensorReading on Pi2 node 0;
instance Integrator : SensorIntegration on Pi3 node 0;
bind Integrator.readSensor1 -> Sensor1.read;
bind Integrator.readSensor2 -> Sensor2.read;
