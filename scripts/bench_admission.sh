#!/usr/bin/env bash
# Scripted perf run for the admission subsystem: regenerates
# BENCH_admission.json (incremental vs from-scratch churn timings and the
# speedup). The binary asserts speedup > 1, so this doubles as a perf
# regression gate. CI runs it on every push; commit the refreshed JSON when
# the numbers move materially.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo run --release --quiet --locked -p hsched-bench --bin admission_perf BENCH_admission.json
