#!/usr/bin/env bash
# Concurrency-hygiene lint, run in CI next to fmt/clippy:
#
#   1. Engine sources must name their sync primitives through the
#      facade (`crates/engine/src/sync.rs`) — any other engine source
#      mentioning `std::sync` bypasses the model checker's shims and
#      silently removes that primitive from `--cfg hsched_model`
#      coverage.
#
#   2. `Ordering::Relaxed` is reserved for the telemetry crate (pure
#      monotonic counters, snapshot skew is documented there). Anywhere
#      else a relaxed op is either a publication bug in waiting or an
#      undocumented contract — use an explicit stronger ordering, and
#      let the model suite's happens-before checker earn the weakening.
#
# `--self-test` copies the tree, seeds one violation of each rule, and
# asserts the lint catches both — so a silently broken grep cannot pass
# CI while letting real violations through.

set -euo pipefail

root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"

check_tree() {
    local tree="$1"
    local status=0
    local hits

    hits=$(grep -rn 'std::sync' "$tree/crates/engine/src" --include='*.rs' \
        | grep -v 'src/sync\.rs:' || true)
    if [[ -n "$hits" ]]; then
        echo "error: engine sources must use the crate::sync facade, not std::sync directly:" >&2
        echo "$hits" >&2
        status=1
    fi

    hits=$(grep -rn 'Ordering::Relaxed' "$tree/crates" --include='*.rs' \
        | grep '/src/' | grep -v '/crates/telemetry/' || true)
    if [[ -n "$hits" ]]; then
        echo "error: Ordering::Relaxed outside crates/telemetry (document the contract or use Acquire/Release/SeqCst):" >&2
        echo "$hits" >&2
        status=1
    fi

    return "$status"
}

self_test() {
    local scratch
    scratch="$(mktemp -d)"
    # shellcheck disable=SC2064 — expand now: $scratch is function-local.
    trap "rm -rf '$scratch'" EXIT

    mkdir -p "$scratch/crates"
    cp -r "$root/crates/engine" "$scratch/crates/engine"
    cp -r "$root/crates/telemetry" "$scratch/crates/telemetry"
    mkdir -p "$scratch/crates/numeric/src"

    # The clean copy must pass before seeding anything.
    if ! check_tree "$scratch" >/dev/null 2>&1; then
        echo "self-test: lint reports violations on a clean tree" >&2
        return 1
    fi

    # Seed rule-1 and rule-2 violations.
    echo 'use std::sync::Mutex; // seeded violation' >>"$scratch/crates/engine/src/service.rs"
    echo 'fn seeded() -> u32 { X.load(core::sync::atomic::Ordering::Relaxed); 0 } // Ordering::Relaxed' \
        >>"$scratch/crates/numeric/src/lib.rs"

    local out
    if out=$(check_tree "$scratch" 2>&1); then
        echo "self-test: lint passed a tree with seeded violations" >&2
        return 1
    fi
    if ! grep -q 'crate::sync facade' <<<"$out"; then
        echo "self-test: seeded std::sync violation not reported" >&2
        echo "$out" >&2
        return 1
    fi
    if ! grep -q 'Ordering::Relaxed outside' <<<"$out"; then
        echo "self-test: seeded Relaxed violation not reported" >&2
        echo "$out" >&2
        return 1
    fi
    echo "lint_concurrency self-test: ok (both seeded violations caught)"
}

if [[ "${1:-}" == "--self-test" ]]; then
    self_test
else
    check_tree "$root"
    echo "lint_concurrency: ok"
fi
