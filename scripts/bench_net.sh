#!/usr/bin/env bash
# Scripted perf run for the socket front end: regenerates BENCH_net.json
# (8 loopback TCP clients driving journaled toggle epochs through
# `hsched_net::Client`, per-epoch-synced lockstep vs pipelined group
# commit, with a live follower tailing the replication stream for the
# lag histogram and a digest cross-check). The binary asserts pipelining
# clearly beats lockstep, so this doubles as a perf regression gate. CI
# runs it on every push; commit the refreshed JSON when the numbers move
# materially.
set -euo pipefail
cd "$(dirname "$0")/.."

# Run metadata for the JSON's "meta" block (the binary takes no VCS or
# clock dependency of its own).
export HSCHED_BENCH_COMMIT="$(git rev-parse --short HEAD 2>/dev/null || echo unknown)"
export HSCHED_BENCH_DATE="$(date -u +%Y-%m-%d)"

cargo run --release --quiet --locked -p hsched-bench --bin net_perf BENCH_net.json
