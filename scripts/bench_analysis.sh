#!/usr/bin/env bash
# Scripted perf run for the analysis layer: regenerates BENCH_analysis.json
# (cold fixpoint with/without the RTA hot-path cache, and the
# cone-restricted downward warm start after a removal vs a cold
# re-analysis). The binary asserts both speedups > 1 and that every warm
# leg is bit-identical to its cold counterpart, so this doubles as a
# perf + exactness regression gate. CI runs it on every push; commit the
# refreshed JSON when the numbers move materially.
set -euo pipefail
cd "$(dirname "$0")/.."

# Run metadata for the JSON's "meta" block (the binary takes no VCS or
# clock dependency of its own).
export HSCHED_BENCH_COMMIT="$(git rev-parse --short HEAD 2>/dev/null || echo unknown)"
export HSCHED_BENCH_DATE="$(date -u +%Y-%m-%d)"

cargo run --release --quiet --locked -p hsched-bench --bin analysis_perf BENCH_analysis.json
