#!/usr/bin/env bash
# Scripted perf run for the sharded admission engine: regenerates
# BENCH_router.json (single-controller vs sharded-router epoch timings on
# the 3072-transaction / 384-island churn workload). The binary asserts
# sharded > single in both measured regimes, so this doubles as a perf
# regression gate. CI runs it on every push; commit the refreshed JSON
# when the numbers move materially.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo run --release --quiet --locked -p hsched-bench --bin router_perf BENCH_router.json
