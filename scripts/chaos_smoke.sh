#!/usr/bin/env bash
# End-to-end chaos smoke test for the fault-injection stack
# (`HSCHED_FAULTS`), client retry/backoff, and standby promotion.
#
# Phase A drives seeded journal faults through the real binaries:
#   A1  a torn journal append kills a local admit run mid-script; replay
#       repairs the torn tail and recovers every completed epoch.
#   A2  an injected fsync failure wedges a serving primary: the first
#       durability claim fails loudly, every later one stays failed
#       (sticky poison — no epoch may claim durability after a lost
#       sync), and the journal still replays after the crash.
#
# Phase B runs the takeover story: a retrying client lands a whole
# script through client-side frame tears and drops, the primary is then
# SIGKILLed, and the standby (`follow --promote-on-loss`) declares the
# primary lost, replays its mirror into a serving primary (digest
# cross-checked), and serves fresh epochs until drained.
#
# Every fault plan is seeded: re-running this script reproduces the
# exact same injection decisions. CI runs this on every push.
set -euo pipefail
cd "$(dirname "$0")/.."

SPEC=scripts/admit_demo.hsc
SCRIPT=scripts/admit_demo.req
WORK=$(mktemp -d -t hsched-chaos-smoke.XXXXXX)
SERVE_PID=""
FOLLOW_PID=""
cleanup() {
    [ -n "$SERVE_PID" ] && kill -9 "$SERVE_PID" 2>/dev/null || true
    [ -n "$FOLLOW_PID" ] && kill -9 "$FOLLOW_PID" 2>/dev/null || true
    rm -rf "$WORK"
}
trap cleanup EXIT

# Background roles must be the binary itself, not `cargo run` — killing a
# cargo wrapper with SIGKILL would orphan the server it spawned.
cargo build --release --quiet --locked -p hsched-cli
BIN=target/release/hsched

wait_for() { # wait_for DESCRIPTION COMMAND...
    local what=$1
    shift
    for _ in $(seq 1 200); do
        if "$@"; then return 0; fi
        sleep 0.05
    done
    echo "chaos smoke: timed out waiting for $what" >&2
    return 1
}

file_size() { wc -c <"$1" 2>/dev/null || echo 0; }

mirror_caught_up() {
    local p m
    p=$(file_size "$WORK/primary.journal")
    m=$(file_size "$WORK/mirror.journal")
    [ "$p" -gt 0 ] && [ "$p" -eq "$m" ]
}

addrs_ready() { [ -s "$1" ] && grep -q '^service ' "$1"; }

# ------------------------------------------------- A1: torn journal append
# Seed 7 with `journal.torn=300*1` deterministically tears the 4th
# append: epochs 1-3 land, epoch 4 leaves half a record on disk and the
# admit run fails loudly, naming the injection.

if out=$(env HSCHED_FAULTS="7:journal.torn=300*1" \
    "$BIN" admit "$SPEC" "$SCRIPT" --journal "$WORK/torn.journal" 2>&1); then
    echo "chaos smoke: torn-append admit unexpectedly succeeded" >&2
    echo "$out"
    exit 1
fi
echo "$out" | grep -q "injected fault: torn journal append"

# Replay (no faults) repairs the tear and recovers the acked prefix.
# Replaying *repairs the file in place*, so the JSON leg runs on a copy
# of the still-torn journal.
cp "$WORK/torn.journal" "$WORK/torn.copy"
out=$("$BIN" replay "$SPEC" "$WORK/torn.journal")
echo "$out" | grep -q "replayed 3 epoch(s)"
echo "$out" | grep -q "torn-tail byte(s) repaired"
json=$("$BIN" replay "$SPEC" "$WORK/torn.copy" --json)
echo "$json" | grep -q '"repaired_bytes":[1-9]'
echo "chaos smoke: A1 torn-append leg OK"

# --------------------------------------------------- A2: fsync wedge, sticky
# `journal.fsync=1000*1` fails the first group commit of this serve life.
# The client's first durable submit must fail with the injected error,
# and the *second* must keep failing: after a lost sync the journal is
# poisoned — no later epoch may claim durability.

env HSCHED_FAULTS="5:journal.fsync=1000*1" \
    "$BIN" serve "$SPEC" --addr 127.0.0.1:0 --journal "$WORK/wedge.journal" \
    --addr-file "$WORK/addrs-wedge" >"$WORK/serve-wedge.out" 2>&1 &
SERVE_PID=$!
wait_for "wedged serve to bind" addrs_ready "$WORK/addrs-wedge"
ADDR=$(awk '$1 == "service" { print $2 }' "$WORK/addrs-wedge")

if out=$("$BIN" admit "$SPEC" "$SCRIPT" --remote "$ADDR" 2>&1); then
    echo "chaos smoke: submit over a wedged journal claimed durability" >&2
    echo "$out"
    exit 1
fi
echo "$out" | grep -q "injected fault"
if out=$("$BIN" admit "$SPEC" "$SCRIPT" --remote "$ADDR" 2>&1); then
    echo "chaos smoke: the fsync poison did not stick" >&2
    echo "$out"
    exit 1
fi
echo "$out" | grep -qi "journal"

kill -9 "$SERVE_PID"
wait "$SERVE_PID" 2>/dev/null || true
SERVE_PID=""
# The crashed journal still replays: unacked tail records are recovered
# or repaired, never fatal.
"$BIN" replay "$SPEC" "$WORK/wedge.journal" | grep -q "state digest"
echo "chaos smoke: A2 fsync-wedge leg OK"

# ------------------------------ B: retrying client + loss-triggered promotion

"$BIN" serve "$SPEC" --addr 127.0.0.1:0 --repl 127.0.0.1:0 \
    --journal "$WORK/primary.journal" --heartbeat-ms 50 \
    --addr-file "$WORK/addrs" >"$WORK/serve.out" 2>&1 &
SERVE_PID=$!
wait_for "serve to bind" addrs_ready "$WORK/addrs"
SERVICE_ADDR=$(awk '$1 == "service" { print $2 }' "$WORK/addrs")
REPL_ADDR=$(awk '$1 == "repl" { print $2 }' "$WORK/addrs")

"$BIN" follow "$SPEC" --from "$REPL_ADDR" --journal "$WORK/mirror.journal" \
    --promote-on-loss --max-reconnects 2 \
    --addr 127.0.0.1:0 --addr-file "$WORK/addrs-promoted" \
    >"$WORK/follow.out" 2>&1 &
FOLLOW_PID=$!

# The client's own frames tear and drop (seeded, budgeted); the retry
# loop with idempotency tickets must land every epoch exactly once.
out=$(env HSCHED_FAULTS="11:frame.partial=150*3,frame.drop=150*3" \
    "$BIN" admit "$SPEC" "$SCRIPT" --remote "$SERVICE_ADDR" --retry 8)
echo "$out"
echo "$out" | grep -q "epoch 1: admitted"
echo "$out" | grep -q "epoch 2: rejected (overload on Pi3)"
echo "$out" | grep -q "retried "
echo "$out" | grep -q "remote engine: epoch 4"
digest=$(echo "$out" | grep -o 'state digest [0-9a-f]\{16\}' | awk '{print $3}')
test -n "$digest"

wait_for "mirror to catch up" mirror_caught_up
cp "$WORK/mirror.journal" "$WORK/mirror.copy"

# SIGKILL the primary. The standby burns through --max-reconnects failed
# sessions, declares the primary lost, and promotes its mirror into a
# serving primary (replayed state cross-checked against the live
# standby's epoch + digest).
kill -9 "$SERVE_PID"
wait "$SERVE_PID" 2>/dev/null || true
SERVE_PID=""
wait_for "standby to promote" addrs_ready "$WORK/addrs-promoted"
grep -q "primary lost (2 session(s) without progress); promoting" "$WORK/follow.out"
grep -q "promoted at epoch 4" "$WORK/follow.out"
PROMOTED_ADDR=$(awk '$1 == "service" { print $2 }' "$WORK/addrs-promoted")

# The mirrored bytes replay to exactly the state the client last saw.
"$BIN" replay "$SPEC" "$WORK/mirror.copy" | grep -q "state digest $digest"

# The promoted standby is a live primary: serves telemetry and commits
# fresh epochs into the inherited journal.
"$BIN" stats --remote "$PROMOTED_ADDR" | grep -q "engine.epochs_settled"
cat >"$WORK/more.req" <<'EOF'
add hotfix period 80 deadline 160 task patch wcet 0.5 bcet 0.25 prio 1 on Pi1
commit
remove hotfix
EOF
out2=$("$BIN" admit "$SPEC" "$WORK/more.req" --remote "$PROMOTED_ADDR" --retry 4)
echo "$out2"
echo "$out2" | grep -q "epoch 5: admitted"
echo "$out2" | grep -q "epoch 6: admitted"

# Graceful drain on SIGTERM, exactly like a born-primary `hsched serve`.
kill "$FOLLOW_PID"
wait "$FOLLOW_PID"
FOLLOW_PID=""
cat "$WORK/follow.out"
grep -q "promoted: drained; durable through epoch 6; state digest" "$WORK/follow.out"
digest2=$(grep -o 'state digest [0-9a-f]\{16\}' "$WORK/follow.out" | tail -1 | awk '{print $3}')
"$BIN" replay "$SPEC" "$WORK/mirror.journal" | grep -q "state digest $digest2"
echo "chaos smoke: B promotion leg OK"

echo "chaos smoke: OK"
