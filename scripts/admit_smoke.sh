#!/usr/bin/env bash
# Smoke test for the `hsched admit` subcommand: drive the demo request
# script against the paper system, in both human and JSON output modes,
# and grep for the expected verdicts. CI runs this on every push.
set -euo pipefail
cd "$(dirname "$0")/.."

SPEC=scripts/admit_demo.hsc
SCRIPT=scripts/admit_demo.req

out=$(cargo run --release --quiet --locked -p hsched-cli --bin hsched -- admit "$SPEC" "$SCRIPT")
echo "$out"
echo "$out" | grep -q "epoch 1: admitted"
echo "$out" | grep -q "epoch 2: rejected (overload on Pi3)"
echo "$out" | grep -q "epoch 3: admitted"
echo "$out" | grep -q "epoch 4: admitted"
echo "$out" | grep -q "admitted 3 / rejected 1"

json=$(cargo run --release --quiet --locked -p hsched-cli --bin hsched -- admit "$SPEC" "$SCRIPT" --json)
echo "$json" | grep -q '"verdict":"admitted"'
echo "$json" | grep -q '"reason":"overload"'
echo "$json" | grep -q '"schedulable":true'

echo "admit smoke: OK"
