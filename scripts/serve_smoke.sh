#!/usr/bin/env bash
# End-to-end smoke test for the socket front end and journal-streaming
# replication: a journaled primary (`hsched serve`) with a warm standby
# (`hsched follow`) tailing its replication port, driven by a remote
# pipelined client (`hsched admit --remote --async`). The primary is then
# killed with SIGKILL — the standby must exit holding the byte-identical
# state (same digest as replaying either journal). A second life resumes
# the primary from its journal and the standby from its mirror offset
# (nothing is re-streamed), commits more epochs, and drains gracefully on
# SIGTERM. CI runs this on every push.
set -euo pipefail
cd "$(dirname "$0")/.."

SPEC=scripts/admit_demo.hsc
SCRIPT=scripts/admit_demo.req
WORK=$(mktemp -d -t hsched-serve-smoke.XXXXXX)
SERVE_PID=""
FOLLOW_PID=""
cleanup() {
    [ -n "$SERVE_PID" ] && kill -9 "$SERVE_PID" 2>/dev/null || true
    [ -n "$FOLLOW_PID" ] && kill -9 "$FOLLOW_PID" 2>/dev/null || true
    rm -rf "$WORK"
}
trap cleanup EXIT

# Background roles must be the binary itself, not `cargo run` — killing a
# cargo wrapper with SIGKILL would orphan the server it spawned.
cargo build --release --quiet --locked -p hsched-cli
BIN=target/release/hsched

wait_for() { # wait_for DESCRIPTION COMMAND...
    local what=$1
    shift
    for _ in $(seq 1 200); do
        if "$@"; then return 0; fi
        sleep 0.05
    done
    echo "serve smoke: timed out waiting for $what" >&2
    return 1
}

file_size() { wc -c <"$1" 2>/dev/null || echo 0; }

mirror_caught_up() {
    local p m
    p=$(file_size "$WORK/primary.journal")
    m=$(file_size "$WORK/mirror.journal")
    [ "$p" -gt 0 ] && [ "$p" -eq "$m" ]
}

addrs_ready() { [ -s "$1" ] && grep -q '^repl ' "$1"; }

# ---------------------------------------------------------------- life 1

"$BIN" serve "$SPEC" --addr 127.0.0.1:0 --repl 127.0.0.1:0 \
    --journal "$WORK/primary.journal" --heartbeat-ms 50 \
    --addr-file "$WORK/addrs" >"$WORK/serve1.out" 2>&1 &
SERVE_PID=$!
wait_for "serve to bind" addrs_ready "$WORK/addrs"
SERVICE_ADDR=$(awk '$1 == "service" { print $2 }' "$WORK/addrs")
REPL_ADDR=$(awk '$1 == "repl" { print $2 }' "$WORK/addrs")

"$BIN" follow "$SPEC" --from "$REPL_ADDR" --journal "$WORK/mirror.journal" \
    --exit-on-disconnect >"$WORK/follow1.out" 2>&1 &
FOLLOW_PID=$!

# Pipelined remote admission: the demo script's 4 epochs over the wire.
out=$("$BIN" admit "$SPEC" "$SCRIPT" --remote "$SERVICE_ADDR" --async)
echo "$out"
echo "$out" | grep -q "epoch 1: admitted"
echo "$out" | grep -q "epoch 2: rejected (overload on Pi3)"
echo "$out" | grep -q "durable through epoch 4"
digest=$(echo "$out" | grep -o 'state digest [0-9a-f]\{16\}' | awk '{print $3}')
test -n "$digest"

# The standby mirrors the journal byte-for-byte.
wait_for "mirror to catch up" mirror_caught_up
SIZE1=$(file_size "$WORK/primary.journal")

# The wire counters confirm the stream carried exactly the journal.
stats=$("$BIN" stats --remote "$SERVICE_ADDR")
echo "$stats" | grep -q 'net.repl.lag_records'
streamed=$(echo "$stats" | awk '$1 == "net.repl.bytes_streamed" { print $2 }')
[ "$streamed" -eq "$SIZE1" ]

# SIGKILL the primary: no drain, no goodbye. The standby must notice the
# disconnect and exit already holding the byte-identical state.
kill -9 "$SERVE_PID"
wait "$SERVE_PID" 2>/dev/null || true
SERVE_PID=""
wait "$FOLLOW_PID"
FOLLOW_PID=""
cat "$WORK/follow1.out"
grep -q "standby: epoch 4 digest $digest (primary disconnected" "$WORK/follow1.out"

# Both journals replay to the same engine the client saw.
run() { cargo run --release --quiet --locked -p hsched-cli --bin hsched -- "$@"; }
run replay "$SPEC" "$WORK/primary.journal" | grep -q "state digest $digest"
run replay "$SPEC" "$WORK/mirror.journal" | grep -q "state digest $digest"

# ---------------------------------------------------------------- life 2
# Resume: the primary replays its own journal, the standby resumes from
# its mirror offset — only the new epochs travel on the wire.

cat >"$WORK/more.req" <<'EOF'
add hotfix period 80 deadline 160 task patch wcet 0.5 bcet 0.25 prio 1 on Pi1
commit
remove hotfix
EOF

"$BIN" serve "$SPEC" --addr 127.0.0.1:0 --repl 127.0.0.1:0 \
    --journal "$WORK/primary.journal" --heartbeat-ms 50 \
    --addr-file "$WORK/addrs2" >"$WORK/serve2.out" 2>&1 &
SERVE_PID=$!
wait_for "resumed serve to bind" addrs_ready "$WORK/addrs2"
grep -q "resumed epoch 4 from journal" "$WORK/serve2.out"
SERVICE_ADDR=$(awk '$1 == "service" { print $2 }' "$WORK/addrs2")
REPL_ADDR=$(awk '$1 == "repl" { print $2 }' "$WORK/addrs2")

"$BIN" follow "$SPEC" --from "$REPL_ADDR" --journal "$WORK/mirror.journal" \
    --exit-on-disconnect >"$WORK/follow2.out" 2>&1 &
FOLLOW_PID=$!

out2=$("$BIN" admit "$SPEC" "$WORK/more.req" --remote "$SERVICE_ADDR" --async)
echo "$out2"
echo "$out2" | grep -q "epoch 5: admitted"
echo "$out2" | grep -q "epoch 6: admitted"
digest2=$(echo "$out2" | grep -o 'state digest [0-9a-f]\{16\}' | awk '{print $3}')

wait_for "mirror to catch up after resume" mirror_caught_up
SIZE2=$(file_size "$WORK/primary.journal")

# Resume-from-offset proof: this serve's stream counter covers only the
# delta past the mirror's resume offset, not a re-stream of history.
stats2=$("$BIN" stats --remote "$SERVICE_ADDR")
streamed2=$(echo "$stats2" | awk '$1 == "net.repl.bytes_streamed" { print $2 }')
[ "$streamed2" -eq $((SIZE2 - SIZE1)) ]

# Graceful drain on SIGTERM: in-flight epochs settle, one final group
# commit, and the standby sees an orderly disconnect.
kill "$SERVE_PID"
wait "$SERVE_PID"
SERVE_PID=""
wait "$FOLLOW_PID"
FOLLOW_PID=""
cat "$WORK/serve2.out"
grep -q "serve: drained; durable through epoch 6; state digest $digest2" "$WORK/serve2.out"
grep -q "standby: epoch 6 digest $digest2 (primary disconnected" "$WORK/follow2.out"
run replay "$SPEC" "$WORK/mirror.journal" | grep -q "state digest $digest2"

echo "serve smoke: OK"
