#!/usr/bin/env bash
# Scripted perf run for the concurrent admission service: regenerates
# BENCH_service.json (8 concurrent clients through SchedService::submit
# vs the same journaled epoch stream through the serial AdmissionRouter
# front end, on the 3072-transaction / 384-cluster churn workload's
# smallest disjoint islands). The binary asserts the concurrent service
# clearly beats the serial front end, so this doubles as a perf
# regression gate. CI runs it on every push; commit the refreshed JSON
# when the numbers move materially.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo run --release --quiet --locked -p hsched-bench --bin service_perf BENCH_service.json
