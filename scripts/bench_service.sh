#!/usr/bin/env bash
# Scripted perf run for the concurrent admission service: regenerates
# BENCH_service.json (8 concurrent clients through SchedService::submit
# vs the same journaled epoch stream through the serial AdmissionRouter
# front end, on the 3072-transaction / 384-cluster churn workload's
# smallest disjoint islands). The binary asserts the concurrent service
# clearly beats the serial front end, so this doubles as a perf
# regression gate. CI runs it on every push; commit the refreshed JSON
# when the numbers move materially.
set -euo pipefail
cd "$(dirname "$0")/.."

# Run metadata for the JSON's "meta" block (the binary takes no VCS or
# clock dependency of its own).
export HSCHED_BENCH_COMMIT="$(git rev-parse --short HEAD 2>/dev/null || echo unknown)"
export HSCHED_BENCH_DATE="$(date -u +%Y-%m-%d)"

cargo run --release --quiet --locked -p hsched-bench --bin service_perf BENCH_service.json
