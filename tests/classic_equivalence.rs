//! Regression against the classical special case: on a dedicated
//! `(1, 0, 0)` platform with independent single-task transactions, the
//! paper's general machinery must coincide with an independently written
//! textbook response-time analysis, across randomized task sets.

use hsched::analysis::classic::{response_times, ClassicTask};
use hsched::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random_classic_set(rng: &mut StdRng, n: usize) -> Vec<ClassicTask> {
    // Keep total utilization ≤ ~0.8 so the classic recurrence is valid.
    let mut tasks = Vec::with_capacity(n);
    let mut remaining = rat(4, 5);
    for i in 0..n {
        let period = rat([20, 30, 40, 50, 60, 100][rng.gen_range(0..6)], 1);
        let u = (remaining * rat(rng.gen_range(10..=40), 100)).max(rat(1, 100));
        remaining = (remaining - u).max(rat(0, 1));
        let wcet = (u * period).max(rat(1, 10));
        tasks.push(ClassicTask {
            wcet,
            period,
            priority: (n - i) as u32, // distinct priorities
        });
    }
    tasks
}

fn as_transaction_set(tasks: &[ClassicTask]) -> TransactionSet {
    let mut platforms = PlatformSet::new();
    let cpu = platforms.add(Platform::dedicated("cpu"));
    let txs = tasks
        .iter()
        .enumerate()
        .map(|(i, t)| {
            Transaction::new(
                format!("t{i}"),
                t.period,
                t.period * rat(4, 1), // slack so divergence bails late
                vec![Task::new(format!("c{i}"), t.wcet, t.wcet, t.priority, cpu)],
            )
            .unwrap()
        })
        .collect();
    TransactionSet::new(platforms, txs).unwrap()
}

#[test]
fn general_analysis_equals_classic_rta_randomized() {
    let mut rng = StdRng::seed_from_u64(2024);
    for round in 0..25 {
        let n = rng.gen_range(2..=6);
        let tasks = random_classic_set(&mut rng, n);
        let oracle = response_times(&tasks);
        let set = as_transaction_set(&tasks);
        let report = analyze(&set);
        for (i, expected) in oracle.iter().enumerate() {
            let expected = expected.expect("U ≤ 0.8 keeps every level convergent");
            assert_eq!(
                report.response(i, 0),
                expected,
                "round {round}, task {i}: general {} vs classic {expected}",
                report.response(i, 0),
            );
        }
    }
}

#[test]
fn simulation_matches_classic_critical_instant() {
    // With synchronous release and worst-case execution, the simulator's
    // very first busy period realizes the classical critical instant, so
    // observed max == classic response for every task.
    let mut rng = StdRng::seed_from_u64(7);
    for _ in 0..10 {
        let n = rng.gen_range(2..=4);
        let tasks = random_classic_set(&mut rng, n);
        let oracle = response_times(&tasks);
        let set = as_transaction_set(&tasks);
        let horizon = rat(3000, 1);
        let sim = simulate(&set, &SimConfig::worst_case(horizon));
        for (i, expected) in oracle.iter().enumerate() {
            let expected = expected.unwrap();
            let observed = sim.task_stats(i, 0).max_response.unwrap();
            assert_eq!(
                observed, expected,
                "task {i}: simulated critical instant must equal classic RTA"
            );
        }
    }
}
