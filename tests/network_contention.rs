//! Network contention: two independent control loops sharing one network
//! platform. Their RPC messages interfere exactly like tasks on a CPU
//! (§2.2.1: "the network is similar to a computational node"), and the
//! analysis must account for it.

use hsched::prelude::*;

/// Two clients on separate nodes/CPUs calling one server over a shared
/// network. Returns (set, index of loop A, index of loop B).
fn shared_network_system(msg_wcet: Rational) -> (TransactionSet, usize, usize) {
    let mut platforms = PlatformSet::new();
    let p_a = platforms.add(Platform::linear("CpuA", rat(1, 2), rat(0, 1), rat(0, 1)).unwrap());
    let p_b = platforms.add(Platform::linear("CpuB", rat(1, 2), rat(0, 1), rat(0, 1)).unwrap());
    let p_srv = platforms.add(Platform::linear("SrvCpu", rat(1, 2), rat(0, 1), rat(0, 1)).unwrap());
    let net = platforms.add(Platform::network("BUS", rat(1, 2), rat(0, 1), rat(0, 1)).unwrap());

    let server = ComponentClass::new("Server")
        .provides(ProvidedMethod::new("query", rat(10, 1)))
        .thread(ThreadSpec::realizes(
            "Serve",
            "query",
            1,
            vec![Action::task("lookup", rat(1, 1), rat(1, 2))],
        ));
    let client = ComponentClass::new("Client")
        .requires(RequiredMethod::derived("query"))
        .thread(ThreadSpec::periodic(
            "Loop",
            rat(40, 1),
            1,
            vec![
                Action::call("query"),
                Action::task("use", rat(1, 1), rat(1, 2)),
            ],
        ));

    let mut b = SystemBuilder::new();
    let c_server = b.add_class(server);
    let c_client = b.add_class(client);
    let i_srv = b.instantiate("SRV", c_server, p_srv, 0);
    let i_a = b.instantiate("A", c_client, p_a, 1);
    let i_b = b.instantiate("B", c_client, p_b, 2);
    let link = |prio| RpcLink {
        network: net,
        request_wcet: msg_wcet,
        request_bcet: msg_wcet / rat(2, 1),
        response_wcet: msg_wcet,
        response_bcet: msg_wcet / rat(2, 1),
        priority: prio,
    };
    b.bind_remote(i_a, "query", i_srv, "query", link(2));
    b.bind_remote(i_b, "query", i_srv, "query", link(1));
    let system = b.build();
    assert!(system.validate().is_ok());

    let set = flatten(&system, &platforms, FlattenOptions::default()).unwrap();
    let a = set
        .transactions()
        .iter()
        .position(|t| t.name == "A.Loop")
        .unwrap();
    let b_idx = set
        .transactions()
        .iter()
        .position(|t| t.name == "B.Loop")
        .unwrap();
    (set, a, b_idx)
}

#[test]
fn message_interference_appears_in_bounds() {
    // With tiny messages the loops barely interact; with fat messages the
    // lower-priority client's end-to-end response must grow by at least the
    // added interference on the bus.
    let (thin_set, a, b) = shared_network_system(rat(1, 10));
    let (fat_set, _, _) = shared_network_system(rat(2, 1));
    let thin = analyze(&thin_set);
    let fat = analyze(&fat_set);
    assert!(thin.schedulable());
    assert!(fat.schedulable());
    let thin_b = thin.response(b, thin_set.transactions()[b].len() - 1);
    let fat_b = fat.response(b, fat_set.transactions()[b].len() - 1);
    assert!(
        fat_b > thin_b + rat(4, 1),
        "fat messages should visibly delay the low-priority loop: {thin_b} -> {fat_b}"
    );
    // The high-priority client suffers too (its own messages got bigger)
    // but stays ahead of the low-priority one.
    let fat_a = fat.response(a, fat_set.transactions()[a].len() - 1);
    assert!(fat_a <= fat_b, "bus priority inverted: {fat_a} > {fat_b}");
}

#[test]
fn bus_priorities_differentiate_clients() {
    let (set, a, b) = shared_network_system(rat(1, 1));
    let report = analyze(&set);
    let r_a = report.response(a, set.transactions()[a].len() - 1);
    let r_b = report.response(b, set.transactions()[b].len() - 1);
    // A's messages preempt B's on the bus; the server CPU treats both the
    // same (equal priorities), so the difference comes from the network.
    assert!(r_a < r_b, "high bus priority must help: {r_a} !< {r_b}");
}

#[test]
fn simulation_respects_network_bounds() {
    let (set, _, _) = shared_network_system(rat(1, 1));
    let report = analyze(&set);
    assert!(report.schedulable());
    for seed in [0u64, 5] {
        let sim = simulate(&set, &SimConfig::randomized(rat(2000, 1), seed));
        for r in set.task_refs() {
            if let Some(observed) = sim.task_stats(r.tx, r.idx).max_response {
                assert!(
                    observed <= report.response(r.tx, r.idx),
                    "seed {seed}: {r} observed {observed} above bound"
                );
            }
        }
    }
    let worst = simulate(&set, &SimConfig::worst_case(rat(2000, 1)));
    for r in set.task_refs() {
        let observed = worst.task_stats(r.tx, r.idx).max_response.unwrap();
        assert!(observed <= report.response(r.tx, r.idx));
    }
}

#[test]
fn server_cpu_contention_from_two_clients() {
    // Both realizer executions land on the server CPU; the MIT of `query`
    // (10) admits both 40 ms clients. Tighten the server and the system
    // must eventually fail — the verdict reacts to CPU contention, not just
    // the network.
    let (set, _, _) = shared_network_system(rat(1, 1));
    let report = analyze(&set);
    assert!(report.schedulable());

    // Starve the server CPU: α = 0.05 cannot host two 1-cycle lookups plus
    // deadlines.
    let mut platforms = set.platforms().clone();
    let (srv_id, srv) = platforms
        .by_name("SrvCpu")
        .map(|(i, p)| (i, p.clone()))
        .unwrap();
    let starved = srv.with_model(hsched::platform::ServiceModel::Linear(
        hsched::supply::BoundedDelay::new(rat(1, 20), rat(0, 1), rat(0, 1)).unwrap(),
    ));
    platforms.replace(srv_id, starved);
    let weak = set.with_platforms(platforms).unwrap();
    let weak_report = analyze(&weak);
    assert!(
        !weak_report.schedulable(),
        "a starved server CPU must break the design"
    );
}
