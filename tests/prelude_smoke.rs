//! Facade smoke test: `hsched::prelude::*` alone must expose enough surface
//! to run the paper's worked example end-to-end — build/flatten via the
//! re-exported model types, analyze, simulate, and round-trip a spec. This
//! guards the `hsched` facade wiring itself (re-exports and prelude), not
//! the inner crates, which have their own suites.

use hsched::prelude::*;

/// The §2.2/§4 worked example through analysis and the simulation oracle,
/// using only names the prelude provides.
#[test]
fn prelude_runs_paper_example_end_to_end() {
    let system = hsched::transaction::paper_example::transactions();

    let report = analyze(&system);
    assert!(report.schedulable(), "paper example must be schedulable");

    let sim = simulate(&system, &SimConfig::worst_case(rat(5000, 1)));
    for (i, tx) in system.transactions().iter().enumerate() {
        for j in 0..tx.len() {
            if let Some(observed) = sim.task_stats(i, j).max_response {
                assert!(
                    observed <= report.response(i, j),
                    "observed response exceeds analytic bound at τ{},{}",
                    i + 1,
                    j + 1
                );
            }
        }
    }
}

/// A two-component client/worker system built purely from prelude names.
fn tiny_system() -> (hsched::model::System, PlatformSet) {
    let mut platforms = PlatformSet::new();
    let cpu = platforms.add(Platform::linear("CPU", rat(1, 2), rat(1, 1), rat(0, 1)).unwrap());

    let mut builder = SystemBuilder::new();
    let worker = builder.add_class(
        ComponentClass::new("Worker")
            .provides(ProvidedMethod::new("work", rat(20, 1)))
            .thread(ThreadSpec::realizes(
                "R",
                "work",
                1,
                vec![Action::task("step", rat(1, 1), rat(1, 2))],
            )),
    );
    let client = builder.add_class(
        ComponentClass::new("Client")
            .requires(RequiredMethod::derived("next"))
            .thread(ThreadSpec::periodic(
                "P",
                rat(20, 1),
                2,
                vec![Action::call("next")],
            )),
    );
    let worker_inst = builder.instantiate("W", worker, cpu, 0);
    let client_inst = builder.instantiate("C", client, cpu, 0);
    builder.bind(client_inst, "next", worker_inst, "work");
    (builder.build(), platforms)
}

/// A system built from scratch through the prelude's model/platform/
/// transaction re-exports, flattened and analyzed with the explicit-config
/// entry point.
#[test]
fn prelude_builds_flattens_and_analyzes_from_scratch() {
    let (system, platforms) = tiny_system();
    assert!(system.validate().is_ok());

    let set = flatten(&system, &platforms, FlattenOptions::default()).unwrap();
    assert_eq!(set.transactions().len(), 1);

    let report = analyze_with(&set, &AnalysisConfig::default()).unwrap();
    assert!(report.schedulable(), "tiny system must be schedulable");
}

/// The spec-language entry points re-exported by the prelude round-trip the
/// tiny system through printed `.hsc` source.
#[test]
fn prelude_spec_entry_points_round_trip() {
    let (system, platforms) = tiny_system();
    let source = hsched::spec::to_source(&system, &platforms);
    let (reparsed, reparsed_platforms) = parse_str(&source).expect("printer output reparses");
    assert_eq!(system, reparsed);
    assert_eq!(platforms, reparsed_platforms);
    assert!(parse_and_validate(&source).is_ok());
}
