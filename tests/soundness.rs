//! Cross-crate soundness properties: the analysis upper-bounds the
//! simulator on randomized systems, the exact analysis refines the
//! approximate one, and the exact-staircase mode refines the linear mode.

use hsched::analysis::{analyze, analyze_with, AnalysisConfig, ServiceTimeMode};
use hsched::prelude::*;
use hsched_bench::{random_system, WorkloadSpec};

fn workload(seed: u64) -> TransactionSet {
    random_system(&WorkloadSpec {
        platforms: 3,
        transactions: 4,
        max_tasks_per_tx: 3,
        load_fraction: rat(2, 5),
        priority_levels: 5,
        seed,
    })
}

#[test]
fn analysis_bounds_simulation_on_random_systems() {
    let mut exercised = 0;
    for seed in 0..8 {
        let set = workload(seed);
        let report = analyze(&set);
        if !report.schedulable() {
            continue;
        }
        exercised += 1;
        for sim_config in [
            SimConfig::worst_case(rat(1500, 1)),
            SimConfig::randomized(rat(1500, 1), seed + 100),
        ] {
            let sim = simulate(&set, &sim_config);
            for r in set.task_refs() {
                if let Some(observed) = sim.task_stats(r.tx, r.idx).max_response {
                    let bound = report.response(r.tx, r.idx);
                    assert!(
                        observed <= bound,
                        "seed {seed}: {r} observed {observed} > bound {bound}"
                    );
                }
            }
        }
    }
    assert!(
        exercised >= 3,
        "generator produced too few schedulable sets"
    );
}

#[test]
fn exact_refines_approximate_on_random_systems() {
    for seed in 0..8 {
        let set = workload(seed);
        let approx = analyze_with(&set, &AnalysisConfig::default()).unwrap();
        let Ok(exact) = analyze_with(&set, &AnalysisConfig::exact(100_000)) else {
            continue;
        };
        for r in set.task_refs() {
            assert!(
                exact.response(r.tx, r.idx) <= approx.response(r.tx, r.idx),
                "seed {seed}: exact above approximate at {r}"
            );
        }
    }
}

#[test]
fn exact_curve_refines_linear_on_server_platforms() {
    // Rebuild each workload with platforms realized as periodic servers so
    // the two service modes genuinely differ.
    use hsched::platform::{Platform, PlatformSet, ServiceModel};
    use hsched::supply::PeriodicServer;
    for seed in 0..6 {
        let set = workload(seed);
        let mut realized = PlatformSet::new();
        for (_, p) in set.platforms().iter() {
            let model =
                match PeriodicServer::from_linear_params(p.alpha(), p.delta().max(rat(1, 1))) {
                    Some(server) => ServiceModel::Server(server),
                    None => ServiceModel::Linear(p.linear_model()),
                };
            realized.add(Platform::new(p.name(), p.kind(), model));
        }
        let set = set.with_platforms(realized).unwrap();
        let linear = analyze_with(&set, &AnalysisConfig::default()).unwrap();
        let exact = analyze_with(
            &set,
            &AnalysisConfig {
                service_mode: ServiceTimeMode::ExactCurve,
                ..AnalysisConfig::default()
            },
        )
        .unwrap();
        for r in set.task_refs() {
            assert!(
                exact.response(r.tx, r.idx) <= linear.response(r.tx, r.idx),
                "seed {seed}: staircase inversion above linear bound at {r}"
            );
        }
    }
}

#[test]
fn response_times_monotone_in_platform_rate() {
    // Speeding up a platform must never worsen any response time.
    use hsched::platform::ServiceModel;
    use hsched::supply::BoundedDelay;
    for seed in 0..6 {
        let set = workload(seed);
        let base = analyze(&set);
        if base.diverged {
            continue;
        }
        for k in 0..set.platforms().len() {
            let id = PlatformId(k);
            let p = &set.platforms()[id];
            let faster_alpha = (p.alpha() * rat(3, 2)).min(rat(1, 1));
            let faster = BoundedDelay::new(faster_alpha, p.delta(), p.beta()).unwrap();
            let mut platforms = set.platforms().clone();
            let replacement = platforms[id].with_model(ServiceModel::Linear(faster));
            platforms.replace(id, replacement);
            let boosted_set = set.with_platforms(platforms).unwrap();
            let boosted = analyze(&boosted_set);
            for r in set.task_refs() {
                assert!(
                    boosted.response(r.tx, r.idx) <= base.response(r.tx, r.idx),
                    "seed {seed}: speeding Π{} worsened {r}",
                    k + 1
                );
            }
        }
    }
}

#[test]
fn deadline_misses_only_when_analysis_predicts_risk() {
    // Contrapositive check on the verdict: for systems the analysis calls
    // schedulable, no simulation regime may produce a miss.
    for seed in 0..10 {
        let set = workload(seed);
        let report = analyze(&set);
        if !report.schedulable() {
            continue;
        }
        for sim_seed in [1u64, 99] {
            let sim = simulate(&set, &SimConfig::randomized(rat(1000, 1), sim_seed));
            for i in 0..set.transactions().len() {
                assert_eq!(
                    sim.transaction_stats(i).deadline_misses,
                    0,
                    "seed {seed}/{sim_seed}: miss in a provably schedulable system"
                );
            }
        }
    }
}
