//! End-to-end reproduction of the paper's §4 evaluation: Tables 1–3 and the
//! Figure 5 structure, through both system construction paths (direct
//! transaction construction and component flattening).

use hsched::analysis::{best_case_offsets, ServiceTimeMode};
use hsched::model::{sensor_integration_class, sensor_reading_class};
use hsched::platform::paper_platforms;
use hsched::prelude::*;
use hsched::transaction::paper_example;

#[test]
fn table1_phi_min_derivation() {
    let set = paper_example::transactions();
    let (offsets, _) = best_case_offsets(&set, ServiceTimeMode::LinearBounds);
    assert_eq!(
        offsets[0],
        vec![rat(0, 1), rat(3, 1), rat(4, 1), rat(5, 1)],
        "Table 1's φmin column"
    );
}

#[test]
fn table2_platforms() {
    let (set, ids) = paper_platforms();
    let expect = [
        (rat(2, 5), rat(1, 1), rat(1, 1)),
        (rat(2, 5), rat(1, 1), rat(1, 1)),
        (rat(1, 5), rat(2, 1), rat(1, 1)),
    ];
    for (id, (alpha, delta, beta)) in ids.into_iter().zip(expect) {
        assert_eq!(set[id].alpha(), alpha);
        assert_eq!(set[id].delta(), delta);
        assert_eq!(set[id].beta(), beta);
    }
}

#[test]
fn table3_full_trace() {
    let report = analyze(&paper_example::transactions());
    assert!(report.converged);
    assert_eq!(report.iterations(), 4);
    let expect: [([i128; 4], [i128; 4]); 4] = [
        ([0, 0, 0, 0], [12, 9, 10, 12]),
        ([0, 9, 5, 5], [12, 18, 15, 17]),
        ([0, 9, 14, 10], [12, 18, 24, 22]),
        // The paper's final column prints R1,4 = 39; Eq. (16) gives 31.
        ([0, 9, 14, 19], [12, 18, 24, 31]),
    ];
    for (k, (jitters, responses)) in expect.iter().enumerate() {
        for j in 0..4 {
            assert_eq!(report.trace[k].jitters[0][j], rat(jitters[j], 1));
            assert_eq!(report.trace[k].responses[0][j], rat(responses[j], 1));
        }
    }
}

#[test]
fn section4_verdict_schedulable() {
    let report = analyze(&paper_example::transactions());
    assert!(report.schedulable());
    for v in &report.verdicts {
        assert!(v.schedulable, "{} must meet its deadline", v.name);
        assert!(v.end_to_end <= v.deadline);
    }
}

#[test]
fn figure5_structure_from_components() {
    // Build the §2.2 system from the Figure 1/2 classes and flatten it.
    let (platforms, [p1, p2, p3]) = paper_platforms();
    let mut b = SystemBuilder::new();
    let reading = b.add_class(sensor_reading_class());
    let integration = b.add_class(sensor_integration_class());
    let s1 = b.instantiate("Sensor1", reading, p1, 0);
    let s2 = b.instantiate("Sensor2", reading, p2, 0);
    let it = b.instantiate("Integrator", integration, p3, 0);
    b.bind(it, "readSensor1", s1, "read");
    b.bind(it, "readSensor2", s2, "read");
    let system = b.build();
    assert!(system.validate().is_ok());

    let set = flatten(&system, &platforms, FlattenOptions::default()).unwrap();
    assert_eq!(set.transactions().len(), 4);
    let gamma1 = set
        .transactions()
        .iter()
        .find(|t| t.name == "Integrator.Thread2")
        .unwrap();
    let route: Vec<usize> = gamma1.tasks().iter().map(|t| t.platform.0).collect();
    assert_eq!(route, [2, 0, 1, 2], "Π3 → Π1 → Π2 → Π3 as in Figure 5");
}

#[test]
fn flattened_system_analysis_matches_hand_built() {
    // The flattened system inherits thread priorities (τ1,4 gets 2 instead
    // of Table 1's 3); for this example the fixpoint responses coincide —
    // the offsets already separate the two Integrator tasks.
    let (platforms, [p1, p2, p3]) = paper_platforms();
    let mut b = SystemBuilder::new();
    let reading = b.add_class(sensor_reading_class());
    let integration = b.add_class(sensor_integration_class());
    let s1 = b.instantiate("Sensor1", reading, p1, 0);
    let s2 = b.instantiate("Sensor2", reading, p2, 0);
    let it = b.instantiate("Integrator", integration, p3, 0);
    b.bind(it, "readSensor1", s1, "read");
    b.bind(it, "readSensor2", s2, "read");
    let flattened = flatten(&b.build(), &platforms, FlattenOptions::default()).unwrap();
    let from_components = analyze(&flattened);
    let from_table1 = analyze(&paper_example::transactions());

    // Match transactions by name.
    let find = |report: &SchedulabilityReport, name: &str| -> Time {
        report
            .verdicts
            .iter()
            .find(|v| v.name.contains(name))
            .map(|v| v.end_to_end)
            .unwrap()
    };
    for name in ["Integrator.Thread2", "Sensor1.Thread1", "Integrator.read"] {
        assert_eq!(
            find(&from_components, name),
            find(&from_table1, name),
            "end-to-end response of {name}"
        );
    }
}

#[test]
fn simulation_never_exceeds_bounds_across_seeds() {
    let set = paper_example::transactions();
    let report = analyze(&set);
    for seed in 0..5 {
        let sim = simulate(&set, &SimConfig::randomized(rat(2500, 1), seed));
        for r in set.task_refs() {
            if let Some(observed) = sim.task_stats(r.tx, r.idx).max_response {
                assert!(
                    observed <= report.response(r.tx, r.idx),
                    "seed {seed}: {r} observed {observed} above bound"
                );
            }
        }
        for i in 0..set.transactions().len() {
            assert_eq!(sim.transaction_stats(i).deadline_misses, 0);
        }
    }
}

#[test]
fn worst_case_synchronous_simulation_within_bounds() {
    let set = paper_example::transactions();
    let report = analyze(&set);
    let sim = simulate(&set, &SimConfig::worst_case(rat(7000, 1)));
    for r in set.task_refs() {
        let observed = sim.task_stats(r.tx, r.idx).max_response.unwrap();
        assert!(observed <= report.response(r.tx, r.idx));
    }
}
