//! The complete tool flow on a fresh scenario: specification text →
//! parse → validate → flatten → analyze → optimize → realize servers →
//! simulate, with every stage's output feeding the next.

use hsched::design::{minimize_bandwidth, synthesize_server, DesignConfig};
use hsched::prelude::*;
use hsched::spec::to_source;

const SPEC: &str = r#"
// A pipeline: camera frames are preprocessed locally, then classified by a
// remote inference service; results drive a local alarm.
class Camera {
    required classify();
    thread Grab periodic period 40 priority 3 {
        task capture wcet 2 bcet 1;
        task preprocess wcet 3 bcet 1.5;
        call classify;
        task alarm wcet 1 bcet 0.5;
    }
    thread Diag periodic period 200 priority 1 {
        task selftest wcet 4 bcet 2;
    }
}

class Inference {
    provided classify() mit 40;
    thread Serve realizes classify priority 2 {
        task infer wcet 4 bcet 2;
    }
}

platform CamCPU cpu alpha 0.5 delta 1 beta 0;
platform GpuSlice cpu alpha 0.6 delta 2 beta 1;
platform Eth network alpha 0.5 delta 1 beta 0;

instance Cam : Camera on CamCPU node 0;
instance Gpu : Inference on GpuSlice node 1;

bind Cam.classify -> Gpu.classify via Eth priority 4
    request wcet 1 bcet 0.5 response wcet 0.5 bcet 0.25;
"#;

#[test]
fn spec_to_simulation_pipeline() {
    // Parse + validate.
    let (system, platforms) = parse_and_validate(SPEC).expect("spec is valid");
    assert_eq!(system.classes.len(), 2);
    assert_eq!(system.instances.len(), 2);

    // Flatten: the Grab transaction must interleave messages and the remote
    // inference task.
    let set = flatten(&system, &platforms, FlattenOptions::default()).expect("flattens");
    let grab = set
        .transactions()
        .iter()
        .find(|t| t.name == "Cam.Grab")
        .expect("Grab transaction");
    let names: Vec<&str> = grab.tasks().iter().map(|t| t.name.as_str()).collect();
    assert_eq!(
        names,
        [
            "Cam.Grab.capture",
            "Cam.Grab.preprocess",
            "Cam.classify.request",
            "Gpu.Serve.infer",
            "Cam.classify.response",
            "Cam.Grab.alarm"
        ]
    );

    // Analyze.
    let report = analyze(&set);
    assert!(report.schedulable(), "design should hold:\n{report}");

    // Optimize: shrink bandwidth, re-verify, synthesize concrete servers.
    let plan = minimize_bandwidth(&set, &DesignConfig::default()).expect("feasible");
    assert!(plan.after <= plan.before);
    let trimmed = set.with_platforms(plan.platforms.clone()).unwrap();
    assert!(analyze(&trimmed).schedulable());
    for (id, p) in plan.platforms.iter() {
        if p.alpha() < rat(1, 1) && p.delta().is_positive() {
            let server = synthesize_server(p.alpha(), p.delta()).expect("synthesizable");
            assert_eq!(server.utilization(), p.alpha(), "platform {id}");
        }
    }

    // Simulate the trimmed design: still no misses, bounds still hold.
    let trimmed_report = analyze(&trimmed);
    let sim = simulate(&trimmed, &SimConfig::worst_case(rat(2000, 1)));
    for r in trimmed.task_refs() {
        if let Some(observed) = sim.task_stats(r.tx, r.idx).max_response {
            assert!(observed <= trimmed_report.response(r.tx, r.idx));
        }
    }
    for i in 0..trimmed.transactions().len() {
        assert_eq!(sim.transaction_stats(i).deadline_misses, 0);
    }
}

#[test]
fn spec_round_trips_through_printer() {
    let (system, platforms) = parse_str(SPEC).unwrap();
    let printed = to_source(&system, &platforms);
    let (system2, platforms2) = parse_str(&printed).unwrap();
    assert_eq!(system, system2);
    assert_eq!(platforms, platforms2);
}

#[test]
fn mit_contract_violation_caught_at_validation() {
    // The Grab thread calls classify every 40; tighten the MIT promise to
    // 60 and validation must object.
    let broken = SPEC.replace("provided classify() mit 40;", "provided classify() mit 60;");
    let err = parse_and_validate(&broken).unwrap_err();
    assert!(err.message.contains("MIT"), "got: {}", err.message);
}

#[test]
fn edf_simulation_of_flattened_system() {
    use hsched::sim::LocalPolicy;
    let (system, platforms) = parse_and_validate(SPEC).unwrap();
    let set = flatten(&system, &platforms, FlattenOptions::default()).unwrap();
    let mut config = SimConfig::worst_case(rat(2000, 1));
    config.policy = LocalPolicy::EarliestDeadlineFirst;
    let sim = simulate(&set, &config);
    // EDF is a different dispatching order; the run must still complete
    // work and (here) meet deadlines.
    for i in 0..set.transactions().len() {
        assert!(sim.transaction_stats(i).completions > 0);
        assert_eq!(sim.transaction_stats(i).deadline_misses, 0);
    }
}
